#include "common/file_io.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/fault_injector.h"

namespace frappe::common {

namespace {

// Data writes go out in bounded chunks so an injected short write can stop
// partway through a large buffer, like a real torn write would.
constexpr size_t kWriteChunk = 1 << 20;

Status ErrnoStatus(int err, const std::string& what) {
  std::string msg = what + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::Internal(msg);
}

std::string Site(std::string_view prefix, const char* suffix) {
  return std::string(prefix) + suffix;
}

// True when the injector fires for `<prefix><suffix>`. The AnyArmed probe
// keeps the disarmed path free of string construction.
bool Fires(std::string_view prefix, const char* suffix) {
  FaultInjector& inj = FaultInjector::Global();
  return inj.AnyArmed() && inj.ShouldFail(Site(prefix, suffix));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path, std::string_view fault_prefix) {
  size_t written = 0;
  while (written < size) {
    size_t chunk = std::min(kWriteChunk, size - written);
    if (Fires(fault_prefix, ".write_enospc")) {
      return Status::ResourceExhausted("injected ENOSPC writing " + path +
                                       " after " + std::to_string(written) +
                                       " bytes");
    }
    if (Fires(fault_prefix, ".write_short")) {
      // Emit half the chunk, then fail — the file is left torn.
      size_t half = chunk / 2;
      if (half > 0) {
        ssize_t ignored = ::write(fd, data + written, half);
        (void)ignored;
      }
      return Status::Internal("injected short write to " + path + " after " +
                              std::to_string(written + chunk / 2) + " bytes");
    }
    ssize_t n = ::write(fd, data + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(errno, "write failed: " + path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string TempPathFor(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

Status ReadFile(const std::string& path, std::string* out,
                std::string_view fault_prefix) {
  if (Fires(fault_prefix, ".read")) {
    return Status::Internal("injected read failure: " + path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus(errno, "cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoStatus(errno, "cannot stat " + path);
    ::close(fd);
    return s;
  }
  out->clear();
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    ssize_t n = ::read(fd, out->data() + off, out->size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = ErrnoStatus(errno, "read failed: " + path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;  // file shrank under us; keep what we got
    off += static_cast<size_t>(n);
  }
  out->resize(off);
  ::close(fd);
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, std::string_view data,
                        std::string_view fault_prefix) {
  if (Fires(fault_prefix, ".open")) {
    return Status::Internal("injected open failure: " + path);
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus(errno, "cannot open for write: " + path);
  Status s = WriteAll(fd, data.data(), data.size(), path, fault_prefix);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (Fires(fault_prefix, ".fsync")) {
    ::close(fd);
    return Status::Internal("injected fsync failure: " + path);
  }
  if (::fsync(fd) != 0) {
    Status es = ErrnoStatus(errno, "fsync failed: " + path);
    ::close(fd);
    return es;
  }
  if (::close(fd) != 0) {
    return ErrnoStatus(errno, "close failed: " + path);
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path, std::string_view fault_prefix) {
  if (Fires(fault_prefix, ".dirsync")) {
    return Status::Internal("injected directory fsync failure: " + path);
  }
  std::string dir = ParentDir(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus(errno, "cannot open directory " + dir);
  if (::fsync(fd) != 0) {
    Status s = ErrnoStatus(errno, "fsync failed on directory " + dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to,
                  std::string_view fault_prefix) {
  if (Fires(fault_prefix, ".rename")) {
    return Status::Internal("injected rename failure: " + from + " -> " + to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus(errno, "rename failed: " + from + " -> " + to);
  }
  return SyncParentDir(to, fault_prefix);
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus(errno, "unlink failed: " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data,
                       std::string_view fault_prefix) {
  std::string tmp = TempPathFor(path);
  Status s = WriteFileDurable(tmp, data, fault_prefix);
  if (!s.ok()) {
    RemoveFileIfExists(tmp);
    return s;
  }
  if (Fires(fault_prefix, ".crash_rename")) {
    // Simulated crash: no cleanup, no rename — exactly the debris a real
    // crash would leave. `path` still holds the previous complete file.
    return Status::Internal("injected crash before rename: " + path +
                            " (temp left at " + tmp + ")");
  }
  s = RenameFile(tmp, path, fault_prefix);
  if (!s.ok()) {
    RemoveFileIfExists(tmp);
    return s;
  }
  return Status::OK();
}

}  // namespace frappe::common
