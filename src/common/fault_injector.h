#ifndef FRAPPE_COMMON_FAULT_INJECTOR_H_
#define FRAPPE_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace frappe::common {

// Deterministic fault injection for durability testing, modeled on
// LevelDB's fault-injection Env / RocksDB's sync points. A *site* is a
// named failure point in library code (`snapshot.fsync`,
// `snapshot.write_enospc`); call sites ask `ShouldFail(site)` and translate
// `true` into that site's failure mode (short write, ENOSPC, fsync error,
// simulated crash, ...).
//
// Arming is programmatic (Arm/Disarm/Reset — the test API) or via the
// FRAPPE_FAULT environment variable, parsed once at first Global() use:
//
//   FRAPPE_FAULT="snapshot.fsync:1"        fail the first fsync
//   FRAPPE_FAULT="snapshot.write_short:3"  fail the 3rd data write
//   FRAPPE_FAULT="a:1,b:2"                 several sites at once
//   FRAPPE_FAULT="snapshot.rename"         countdown defaults to 1
//
// The countdown n means the n-th ShouldFail call at that site fires. A site
// fires `times` consecutive calls starting there (default 1; times < 0 =
// every call from the countdown on).
//
// The disarmed fast path is one relaxed atomic load and no allocation, so
// the hooks stay compiled into release builds.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Process-wide instance; reads FRAPPE_FAULT on first use (a malformed
  // spec is reported to stderr and ignored).
  static FaultInjector& Global();

  // Arms `site` so the `countdown`-th ShouldFail call fires (1 = the next
  // call), and the following `times - 1` calls fire too (times < 0 = keep
  // firing forever). Re-arming a site replaces its state.
  void Arm(std::string_view site, uint64_t countdown = 1, int64_t times = 1);
  void Disarm(std::string_view site);
  // Disarms every site and forgets all hit/fire counts.
  void Reset();

  // Parses a FRAPPE_FAULT-style spec ("site[:n][,site[:n]]...") and arms
  // each entry. Returns InvalidArgument on malformed input (no sites armed
  // in that case).
  Status Parse(std::string_view spec);

  // True if the fault at `site` fires now; call sites decide what failing
  // means. Counts a hit when the site is armed.
  bool ShouldFail(std::string_view site);

  // ShouldFail calls observed at `site` while it was armed.
  uint64_t HitCount(std::string_view site) const;
  // Times `site` actually fired.
  uint64_t FireCount(std::string_view site) const;

  // Cheap "anything armed?" probe for hot paths that want to skip even the
  // site-name construction.
  bool AnyArmed() const { return active_.load(std::memory_order_relaxed); }

  // Names of currently armed sites (diagnostics).
  std::vector<std::string> ArmedSites() const;

 private:
  struct Site {
    uint64_t remaining_skip = 0;  // hits to swallow before firing
    int64_t times = 1;            // fires left; < 0 = unlimited
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
  std::atomic<bool> active_{false};
};

}  // namespace frappe::common

#endif  // FRAPPE_COMMON_FAULT_INJECTOR_H_
