#ifndef FRAPPE_COMMON_THREAD_POOL_H_
#define FRAPPE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace frappe {

// Fixed-size worker pool for fork/join data parallelism. No work stealing,
// no futures: the one primitive is RunLanes, which fans a callable out over
// N lanes and blocks until every lane returns. That is all the
// level-synchronous analytics kernels need, and it keeps the pool simple
// enough to reason about under TSan.
//
// Lane 0 always runs on the calling thread, so `RunLanes(1, fn)` is a plain
// inline call with no queueing, locking or signalling — the `threads=1`
// configuration of every parallel engine is bit-for-bit the sequential
// code path.
//
// RunLanes must not be called re-entrantly from inside a lane (a lane
// scheduled on a worker would then block waiting for workers that are all
// busy). The analytics kernels never nest.
class ThreadPool {
 public:
  // Spawns `workers` background threads (0 is valid: every lane then runs
  // inline on the caller).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  // Invokes fn(lane) for every lane in [0, lanes). Lane 0 runs on the
  // calling thread; the rest are queued to the workers (if lanes exceeds
  // worker_count() + 1 the surplus lanes simply queue up and run as workers
  // free up). Returns when every lane has finished. Exceptions must not
  // escape fn.
  void RunLanes(size_t lanes, const std::function<void(size_t)>& fn);

  // Process-wide pool, sized once from the FRAPPE_THREADS environment
  // variable (falling back to std::thread::hardware_concurrency). Holds
  // ResolveThreads(0) - 1 workers, so `RunLanes(ResolveThreads(0), fn)`
  // saturates the machine without oversubscribing.
  static ThreadPool& Shared();

  // Resolves a requested thread count: a positive request is returned as
  // is; 0 means "use the environment": FRAPPE_THREADS when set to a
  // positive integer, else hardware_concurrency, never less than 1.
  static size_t ResolveThreads(size_t requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace frappe

#endif  // FRAPPE_COMMON_THREAD_POOL_H_
