#ifndef FRAPPE_COMMON_CRC32C_H_
#define FRAPPE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace frappe::common {

// CRC32C (Castagnoli polynomial, the checksum RocksDB/LevelDB/ext4 use for
// block integrity). Hardware-accelerated via SSE4.2 when the CPU has it
// (detected once at runtime); slice-by-8 table fallback otherwise, so the
// result is identical everywhere.
//
// Crc32c("123456789") == 0xE3069283 (the standard check value).
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

// Streaming form: extends a previously returned (finalized) CRC as if the
// two buffers had been checksummed in one call:
//   Crc32cExtend(Crc32c(a), b) == Crc32c(a + b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace frappe::common

#endif  // FRAPPE_COMMON_CRC32C_H_
