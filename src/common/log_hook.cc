#include "common/log_hook.h"

#include <atomic>
#include <cstdio>

namespace frappe::common {
namespace {

void DefaultHandler(int severity, const char* component,
                    const char* message) {
  const char* level = severity >= kLogError  ? "error"
                      : severity == kLogWarn ? "warn"
                      : severity == kLogInfo ? "info"
                                             : "debug";
  std::fprintf(stderr, "level=%s component=%s msg=\"%s\"\n", level, component,
               message);
}

std::atomic<LogHandler> g_handler{&DefaultHandler};

}  // namespace

void SetLogHandler(LogHandler handler) {
  g_handler.store(handler != nullptr ? handler : &DefaultHandler,
                  std::memory_order_release);
}

void LogMessage(int severity, const char* component,
                const std::string& message) {
  g_handler.load(std::memory_order_acquire)(severity, component,
                                            message.c_str());
}

}  // namespace frappe::common
