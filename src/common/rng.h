#ifndef FRAPPE_COMMON_RNG_H_
#define FRAPPE_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace frappe {

// Deterministic, seedable PRNG (SplitMix64). Used by the synthetic kernel
// generator and property tests so every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Discrete power-law sample in [1, max]: P(k) proportional to k^-alpha.
  // Sampled via inverse-CDF of the continuous Pareto approximation, which is
  // accurate enough to calibrate Figure 7's hub-heavy degree distribution.
  uint64_t PowerLaw(double alpha, uint64_t max) {
    assert(alpha > 1.0 && max >= 1);
    double u = NextDouble();
    double exp = 1.0 - alpha;
    double max_term = std::pow(static_cast<double>(max), exp);
    double value = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / exp);
    uint64_t k = static_cast<uint64_t>(value);
    if (k < 1) k = 1;
    if (k > max) k = max;
    return k;
  }

 private:
  uint64_t state_;
};

}  // namespace frappe

#endif  // FRAPPE_COMMON_RNG_H_
