#ifndef FRAPPE_COMMON_STATUS_H_
#define FRAPPE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace frappe {

// Error categories used across the library. Mirrors the usual embedded-DB
// status vocabulary (OK / NotFound / InvalidArgument / ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,  // step budget or deadline exceeded
  kDeadlineExceeded,
  kCorruption,  // malformed snapshot / serialized data
  kUnimplemented,
  kInternal,
  kParseError,  // FQL or C-source syntax error
  kCancelled,   // cooperative cancellation (operator kill switch)
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// Value-type status carrying a code and a message. Cheap to copy when OK
// (no allocation); follows the Arrow/RocksDB convention of returning Status
// from every fallible operation instead of throwing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T>: either a value or an error Status. Lightweight analogue of
// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression, RocksDB/Arrow style.
#define FRAPPE_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::frappe::Status _frappe_status = (expr);   \
    if (!_frappe_status.ok()) return _frappe_status; \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// assigns the value to `lhs` (which must be a declaration or lvalue).
#define FRAPPE_ASSIGN_OR_RETURN(lhs, expr)              \
  FRAPPE_ASSIGN_OR_RETURN_IMPL(                         \
      FRAPPE_CONCAT_(_frappe_result_, __LINE__), lhs, expr)

#define FRAPPE_CONCAT_INNER_(a, b) a##b
#define FRAPPE_CONCAT_(a, b) FRAPPE_CONCAT_INNER_(a, b)

#define FRAPPE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace frappe

#endif  // FRAPPE_COMMON_STATUS_H_
