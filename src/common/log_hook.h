#ifndef FRAPPE_COMMON_LOG_HOOK_H_
#define FRAPPE_COMMON_LOG_HOOK_H_

#include <string>

namespace frappe::common {

// Indirection that lets the common layer emit diagnostics without linking
// against the obs logging subsystem (obs depends on common, not the other
// way around). By default messages go to stderr in the structured
// "level=... component=... msg=..." shape; obs/log.cc installs a handler
// at static-init time that routes them through the full logging pipeline
// (threshold, sinks, in-memory ring).
//
// Severity values match obs::LogLevel numerically: 0=debug, 1=info,
// 2=warn, 3=error.

inline constexpr int kLogDebug = 0;
inline constexpr int kLogInfo = 1;
inline constexpr int kLogWarn = 2;
inline constexpr int kLogError = 3;

using LogHandler = void (*)(int severity, const char* component,
                            const char* message);

// Replaces the process-wide handler; nullptr restores the stderr default.
void SetLogHandler(LogHandler handler);

// Emits one message through the installed handler.
void LogMessage(int severity, const char* component,
                const std::string& message);

}  // namespace frappe::common

#endif  // FRAPPE_COMMON_LOG_HOOK_H_
