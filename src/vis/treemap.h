#ifndef FRAPPE_VIS_TREEMAP_H_
#define FRAPPE_VIS_TREEMAP_H_

#include <vector>

namespace frappe::vis {

struct Rect {
  double x = 0, y = 0, w = 0, h = 0;

  double area() const { return w * h; }
  bool Contains(double px, double py) const {
    return px >= x && px <= x + w && py >= y && py <= y + h;
  }
  bool Overlaps(const Rect& other) const {
    return x < other.x + other.w && other.x < x + w && y < other.y + other.h &&
           other.y < y + h;
  }
};

// Squarified treemap layout (Bruls, Huizing, van Wijk 2000): partitions
// `bounds` into one rectangle per weight, areas proportional to weights,
// preferring near-square aspect ratios. Zero/negative weights receive
// empty rectangles. Output is parallel to `weights`.
std::vector<Rect> SquarifiedLayout(const Rect& bounds,
                                   const std::vector<double>& weights);

}  // namespace frappe::vis

#endif  // FRAPPE_VIS_TREEMAP_H_
