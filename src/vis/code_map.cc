#include "vis/code_map.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <unordered_set>

namespace frappe::vis {

using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;

namespace {

// Region weight: functions by their connectivity, files/dirs by content.
double FunctionWeight(const graph::GraphView& view, NodeId node) {
  return 1.0 + std::sqrt(static_cast<double>(view.Degree(node)));
}

double SumChildren(const MapRegion& region) {
  double total = 0;
  for (const MapRegion& child : region.children) total += child.weight;
  return total;
}

void LayoutRegion(MapRegion* region) {
  if (region->children.empty()) return;
  // Inset children slightly so region borders stay visible.
  Rect inner = region->rect;
  double inset = std::min({inner.w * 0.02, inner.h * 0.02, 2.0});
  inner.x += inset;
  inner.y += inset;
  inner.w = std::max(inner.w - 2 * inset, 0.0);
  inner.h = std::max(inner.h - 2 * inset, 0.0);
  std::vector<double> weights;
  weights.reserve(region->children.size());
  for (const MapRegion& child : region->children) {
    weights.push_back(child.weight);
  }
  std::vector<Rect> rects = SquarifiedLayout(inner, weights);
  for (size_t i = 0; i < region->children.size(); ++i) {
    region->children[i].rect = rects[i];
    LayoutRegion(&region->children[i]);
  }
}

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        *out += "&quot;";
        break;
      default:
        *out += c;
    }
  }
}

const char* FillFor(NodeKind kind, bool highlighted) {
  if (highlighted) return "#e4572e";
  switch (kind) {
    case NodeKind::kDirectory:
      return "#dfe7ef";
    case NodeKind::kFile:
      return "#c7d4e2";
    case NodeKind::kFunction:
      return "#a9bdd3";
    default:
      return "#b8c8da";
  }
}

}  // namespace

CodeMap CodeMap::Build(const graph::GraphView& view,
                       const model::Schema& schema, double width,
                       double height) {
  CodeMap map;
  map.root_.name = "/";
  map.root_.rect = Rect{0, 0, width, height};

  graph::TypeId dir_type = schema.node_type(NodeKind::kDirectory);
  graph::TypeId file_type = schema.node_type(NodeKind::kFile);
  graph::TypeId fn_type = schema.node_type(NodeKind::kFunction);
  graph::TypeId dir_contains = schema.edge_type(EdgeKind::kDirContains);
  graph::TypeId file_contains = schema.edge_type(EdgeKind::kFileContains);
  graph::KeyId name_key = schema.key(model::PropKey::kShortName);

  // Recursive builders.
  std::function<MapRegion(NodeId)> build_file = [&](NodeId file) {
    MapRegion region;
    region.node = file;
    region.kind = NodeKind::kFile;
    region.name = std::string(view.GetNodeString(file, name_key));
    view.ForEachEdge(file, graph::Direction::kOut,
                     [&](graph::EdgeId e, NodeId target) {
                       if (view.GetEdge(e).type != file_contains) {
                         return true;
                       }
                       if (view.NodeType(target) == fn_type) {
                         MapRegion fn;
                         fn.node = target;
                         fn.kind = NodeKind::kFunction;
                         fn.name = std::string(
                             view.GetNodeString(target, name_key));
                         fn.weight = FunctionWeight(view, target);
                         region.children.push_back(std::move(fn));
                       }
                       return true;
                     });
    region.weight = 1.0 + SumChildren(region);
    return region;
  };

  std::function<MapRegion(NodeId)> build_dir = [&](NodeId dir) {
    MapRegion region;
    region.node = dir;
    region.kind = NodeKind::kDirectory;
    region.name = std::string(view.GetNodeString(dir, name_key));
    view.ForEachEdge(dir, graph::Direction::kOut,
                     [&](graph::EdgeId e, NodeId target) {
                       if (view.GetEdge(e).type != dir_contains) {
                         return true;
                       }
                       if (view.NodeType(target) == dir_type) {
                         region.children.push_back(build_dir(target));
                       } else if (view.NodeType(target) == file_type) {
                         region.children.push_back(build_file(target));
                       }
                       return true;
                     });
    region.weight = 1.0 + SumChildren(region);
    return region;
  };

  // Roots: directories with no parent directory, plus parentless files.
  view.ForEachNode([&](NodeId node) {
    graph::TypeId type = view.NodeType(node);
    if (type != dir_type && type != file_type) return;
    bool has_parent = false;
    view.ForEachEdge(node, graph::Direction::kIn,
                     [&](graph::EdgeId e, NodeId) {
                       if (view.GetEdge(e).type == dir_contains) {
                         has_parent = true;
                         return false;
                       }
                       return true;
                     });
    if (has_parent) return;
    map.root_.children.push_back(type == dir_type ? build_dir(node)
                                                  : build_file(node));
  });
  map.root_.weight = 1.0 + SumChildren(map.root_);

  LayoutRegion(&map.root_);
  map.IndexRegions(map.root_);
  return map;
}

void CodeMap::IndexRegions(const MapRegion& region) {
  if (region.node != graph::kInvalidNode) {
    by_node_.emplace(region.node, &region);
  }
  for (const MapRegion& child : region.children) IndexRegions(child);
}

const MapRegion* CodeMap::Find(NodeId node) const {
  auto it = by_node_.find(node);
  return it == by_node_.end() ? nullptr : it->second;
}

size_t CodeMap::RegionCount() const { return by_node_.size(); }

std::string CodeMap::ToSvg(const Overlay& overlay) const {
  std::unordered_set<NodeId> highlighted(overlay.highlights.begin(),
                                         overlay.highlights.end());
  std::string svg;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
                "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
                root_.rect.w, root_.rect.h, root_.rect.w, root_.rect.h);
  svg += buf;

  std::function<void(const MapRegion&)> draw = [&](const MapRegion& region) {
    if (region.rect.area() <= 0) return;
    bool hl = highlighted.count(region.node) != 0;
    std::snprintf(buf, sizeof(buf),
                  "  <rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"%.2f\" fill=\"%s\" stroke=\"#5b6b7b\" "
                  "stroke-width=\"0.5\">",
                  region.rect.x, region.rect.y, region.rect.w, region.rect.h,
                  FillFor(region.kind, hl));
    svg += buf;
    svg += "<title>";
    AppendEscaped(&svg, region.name);
    svg += "</title></rect>\n";
    for (const MapRegion& child : region.children) draw(child);
  };
  for (const MapRegion& child : root_.children) draw(child);

  // Paths: poly-lines through region centers.
  for (const auto& path : overlay.paths) {
    std::string points;
    for (NodeId node : path) {
      const MapRegion* region = Find(node);
      if (region == nullptr) continue;
      std::snprintf(buf, sizeof(buf), "%.2f,%.2f ",
                    region->rect.x + region->rect.w / 2,
                    region->rect.y + region->rect.h / 2);
      points += buf;
    }
    if (!points.empty()) {
      svg += "  <polyline fill=\"none\" stroke=\"#e4572e\" "
             "stroke-width=\"1.5\" points=\"" +
             points + "\"/>\n";
    }
  }
  svg += "</svg>\n";
  return svg;
}

std::string CodeMap::ToJson() const {
  std::string json;
  char buf[128];
  std::function<void(const MapRegion&)> emit = [&](const MapRegion& region) {
    json += "{\"name\":\"";
    AppendEscaped(&json, region.name);
    json += "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"node\":%u,\"x\":%.2f,\"y\":%.2f,\"w\":%.2f,\"h\":%.2f",
                  region.node, region.rect.x, region.rect.y, region.rect.w,
                  region.rect.h);
    json += buf;
    if (!region.children.empty()) {
      json += ",\"children\":[";
      for (size_t i = 0; i < region.children.size(); ++i) {
        if (i > 0) json += ",";
        emit(region.children[i]);
      }
      json += "]";
    }
    json += "}";
  };
  emit(root_);
  return json;
}

}  // namespace frappe::vis
