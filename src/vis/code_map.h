#ifndef FRAPPE_VIS_CODE_MAP_H_
#define FRAPPE_VIS_CODE_MAP_H_

#include <map>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "model/schema.h"
#include "vis/treemap.h"

namespace frappe::vis {

// The Frappé interface substrate (paper Section 2): a zoomable 2D code map
// built on a cartographic metaphor — "the continent/country/state/city
// hierarchy of the map corresponds to the equivalent in source code: the
// high-level architectural components down to the individual files and
// functions". Regions nest directory -> file -> function; areas are
// proportional to contained code (function degree as a proxy for size).
//
// Query results overlay onto the map so users get "an immediate general
// impression of the location, locality, structure, and quantity of
// results".
struct MapRegion {
  graph::NodeId node = graph::kInvalidNode;
  std::string name;
  model::NodeKind kind = model::NodeKind::kCount;
  double weight = 1.0;
  Rect rect;
  std::vector<MapRegion> children;
};

class CodeMap {
 public:
  // Builds the hierarchy from the graph's dir_contains / file_contains
  // edges and lays it out in a width x height viewport.
  static CodeMap Build(const graph::GraphView& view,
                       const model::Schema& schema, double width,
                       double height);

  const MapRegion& root() const { return root_; }

  // Region rectangle for a node, if it is on the map.
  const MapRegion* Find(graph::NodeId node) const;

  // Number of regions (all levels).
  size_t RegionCount() const;

  // SVG rendering with an optional overlay: highlighted nodes are filled
  // in the accent colour, everything else in neutral greys. Paths can be
  // drawn as poly-lines between region centers.
  struct Overlay {
    std::vector<graph::NodeId> highlights;
    std::vector<std::vector<graph::NodeId>> paths;
  };
  std::string ToSvg(const Overlay& overlay = {}) const;

  // Machine-readable JSON of the layout (for external viewers).
  std::string ToJson() const;

 private:
  void IndexRegions(const MapRegion& region);

  MapRegion root_;
  std::map<graph::NodeId, const MapRegion*> by_node_;
};

}  // namespace frappe::vis

#endif  // FRAPPE_VIS_CODE_MAP_H_
