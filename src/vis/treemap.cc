#include "vis/treemap.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace frappe::vis {

namespace {

// Worst aspect ratio of a row of areas laid along a side of length `side`.
double WorstAspect(const std::vector<double>& row, double side) {
  double total = std::accumulate(row.begin(), row.end(), 0.0);
  if (total <= 0 || side <= 0) return 1e18;
  double thickness = total / side;
  double worst = 1.0;
  for (double area : row) {
    double length = area / thickness;
    double aspect = std::max(length / thickness, thickness / length);
    worst = std::max(worst, aspect);
  }
  return worst;
}

// Lays `row` along the shorter side of `*free_rect`, shrinking it.
void LayRow(const std::vector<double>& row,
            const std::vector<size_t>& row_idx, Rect* free_rect,
            std::vector<Rect>* out) {
  double total = std::accumulate(row.begin(), row.end(), 0.0);
  if (total <= 0) return;
  bool horizontal = free_rect->w >= free_rect->h;  // row along left edge?
  if (horizontal) {
    // Row occupies a vertical strip of width total/h at the left.
    double strip_w = total / free_rect->h;
    double y = free_rect->y;
    for (size_t i = 0; i < row.size(); ++i) {
      double item_h = row[i] / strip_w;
      (*out)[row_idx[i]] = Rect{free_rect->x, y, strip_w, item_h};
      y += item_h;
    }
    free_rect->x += strip_w;
    free_rect->w -= strip_w;
  } else {
    double strip_h = total / free_rect->w;
    double x = free_rect->x;
    for (size_t i = 0; i < row.size(); ++i) {
      double item_w = row[i] / strip_h;
      (*out)[row_idx[i]] = Rect{x, free_rect->y, item_w, strip_h};
      x += item_w;
    }
    free_rect->y += strip_h;
    free_rect->h -= strip_h;
  }
}

}  // namespace

std::vector<Rect> SquarifiedLayout(const Rect& bounds,
                                   const std::vector<double>& weights) {
  std::vector<Rect> out(weights.size());
  double total_weight = 0;
  for (double w : weights) total_weight += std::max(w, 0.0);
  if (total_weight <= 0 || bounds.area() <= 0) return out;

  // Normalize weights to areas within the bounds; sort descending (the
  // algorithm requires it), remembering original positions.
  double scale = bounds.area() / total_weight;
  std::vector<size_t> order;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });

  Rect free_rect = bounds;
  std::vector<double> row;
  std::vector<size_t> row_idx;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    size_t idx = order[pos];
    double area = weights[idx] * scale;
    double side = std::min(free_rect.w, free_rect.h);
    std::vector<double> with_next = row;
    with_next.push_back(area);
    if (row.empty() ||
        WorstAspect(with_next, side) <= WorstAspect(row, side)) {
      row.push_back(area);
      row_idx.push_back(idx);
    } else {
      LayRow(row, row_idx, &free_rect, &out);
      row.assign(1, area);
      row_idx.assign(1, idx);
    }
  }
  if (!row.empty()) LayRow(row, row_idx, &free_rect, &out);
  return out;
}

}  // namespace frappe::vis
