#include "obs/resource.h"

#include <malloc.h>
#include <time.h>

#include <cstdlib>
#include <new>

namespace frappe {
namespace obs {
namespace internal {

// Constant-initialized POD TLS: safe to read from any thread at any point
// in the process lifetime, including inside the allocation hooks below.
//
// The allocation hook buffers into the plain counters here and only
// touches the tracker's shared atomics when the live-byte delta crosses
// `flush_at` (or the owning scope closes): per-event atomics made every
// analytics lane of a tracked query hammer one cache line.
struct TlsAccounting {
  ResourceTracker* tracker;
  uint64_t alloc_count;
  uint64_t alloc_bytes;
  uint64_t freed_bytes;
  int64_t live_bytes;
  int64_t live_peak;  // max live_bytes since the last flush (>= 0)
  uint64_t flush_at;  // flush when |live_bytes| reaches this

  void Flush() {
    tracker->AddAllocDeltas(alloc_count, alloc_bytes, freed_bytes,
                            live_bytes, live_peak);
    alloc_count = 0;
    alloc_bytes = 0;
    freed_bytes = 0;
    live_bytes = 0;
    live_peak = 0;
  }
};
thread_local TlsAccounting tls_acct = {nullptr, 0, 0, 0, 0, 0, 0};

}  // namespace internal
namespace {

using internal::tls_acct;
using internal::TlsAccounting;

std::atomic<bool> g_enabled{true};

// Large enough that alloc-heavy queries flush rarely, small enough that a
// single oversized allocation (or a budget check shortly after one) sees
// the tracker's live bytes move promptly.
constexpr uint64_t kDefaultFlushBytes = 256 * 1024;

// A budgeted query must not hide budget/1 worth of live bytes in TLS
// buffers: tighten the flush threshold to a quarter of the budget (which
// can reach 0 — flush on every event — for pathologically small budgets).
uint64_t FlushThresholdFor(const ResourceTracker* tracker) {
  uint64_t budget = tracker->budget_bytes();
  if (budget > 0 && budget / 4 < kDefaultFlushBytes) return budget / 4;
  return kDefaultFlushBytes;
}

void FlushTls() {
  TlsAccounting& t = tls_acct;
  if (t.tracker == nullptr) return;
  if (t.alloc_count == 0 && t.freed_bytes == 0 && t.live_peak == 0) return;
  t.Flush();
}

void InstallTracker(ResourceTracker* tracker) {
  FlushTls();  // buffered deltas belong to the outgoing tracker
  tls_acct.tracker = tracker;
  tls_acct.flush_at = tracker != nullptr ? FlushThresholdFor(tracker) : 0;
}

}  // namespace

ResourceTracker* ResourceTracker::Current() { return tls_acct.tracker; }

void ResourceTracker::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool ResourceTracker::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

uint64_t ThreadCpuNs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

ResourceScope::ResourceScope(ResourceTracker* tracker) {
  if (tracker == nullptr || !ResourceTracker::Enabled()) return;
  if (tls_acct.tracker == tracker) return;  // already attached (nested scope)
  tracker_ = tracker;
  prev_ = tls_acct.tracker;
  InstallTracker(tracker);
  cpu_base_ns_ = ThreadCpuNs();
  active_ = true;
}

void ResourceScope::SyncCpu() {
  if (!active_) return;
  FlushTls();
  uint64_t now = ThreadCpuNs();
  if (now > cpu_base_ns_) tracker_->AddCpuNs(now - cpu_base_ns_);
  cpu_base_ns_ = now;
}

ResourceScope::~ResourceScope() {
  if (!active_) return;
  SyncCpu();
  InstallTracker(prev_);
  active_ = false;
}

ResourceLaneScope::ResourceLaneScope(ResourceTracker* tracker) {
  if (tracker == nullptr || !ResourceTracker::Enabled()) return;
  if (tls_acct.tracker == tracker) return;  // lane 0 runs on the coordinator
  tracker_ = tracker;
  prev_ = tls_acct.tracker;
  InstallTracker(tracker);
  cpu_base_ns_ = ThreadCpuNs();
  active_ = true;
}

ResourceLaneScope::~ResourceLaneScope() {
  if (!active_) return;
  FlushTls();
  uint64_t now = ThreadCpuNs();
  if (now > cpu_base_ns_) tracker_->AddCpuNs(now - cpu_base_ns_);
  InstallTracker(prev_);
}

}  // namespace obs
}  // namespace frappe

// ---------------------------------------------------------------------------
// Global allocation seam. Linked into any binary that references the obs
// resource layer (the query session does), these replace the C++ runtime's
// operator new/delete with thin malloc/free wrappers that charge the current
// thread's tracker. Going through malloc keeps sanitizer interceptors (ASan,
// TSan) fully in the loop. Bytes are malloc_usable_size() so alloc and free
// charge the same amount regardless of allocator rounding.
// ---------------------------------------------------------------------------

namespace {

using frappe::obs::internal::tls_acct;
using frappe::obs::internal::TlsAccounting;

inline uint64_t AbsLive(int64_t live) {
  return static_cast<uint64_t>(live < 0 ? -live : live);
}

inline void AccountAlloc(void* ptr) {
  TlsAccounting& t = tls_acct;
  if (t.tracker != nullptr && ptr != nullptr) {
    uint64_t bytes = malloc_usable_size(ptr);
    t.alloc_count += 1;
    t.alloc_bytes += bytes;
    t.live_bytes += static_cast<int64_t>(bytes);
    if (t.live_bytes > t.live_peak) t.live_peak = t.live_bytes;
    if (AbsLive(t.live_bytes) >= t.flush_at) t.Flush();
  }
}

inline void AccountFree(void* ptr) {
  TlsAccounting& t = tls_acct;
  if (t.tracker != nullptr && ptr != nullptr) {
    uint64_t bytes = malloc_usable_size(ptr);
    t.freed_bytes += bytes;
    t.live_bytes -= static_cast<int64_t>(bytes);
    if (AbsLive(t.live_bytes) >= t.flush_at) t.Flush();
  }
}

void* AllocOrHandler(size_t size) {
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  while (ptr == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    ptr = std::malloc(size);
  }
  return ptr;
}

void* AlignedAllocOrHandler(size_t size, size_t alignment) {
  if (size == 0) size = 1;
  void* ptr = nullptr;
  while (posix_memalign(&ptr, alignment, size) != 0) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    ptr = nullptr;
  }
  return ptr;
}

}  // namespace

void* operator new(size_t size) {
  void* ptr = AllocOrHandler(size);
  if (ptr == nullptr) throw std::bad_alloc();
  AccountAlloc(ptr);
  return ptr;
}

void* operator new[](size_t size) { return operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  void* ptr = AllocOrHandler(size);
  AccountAlloc(ptr);
  return ptr;
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(size_t size, std::align_val_t alignment) {
  void* ptr = AlignedAllocOrHandler(size, static_cast<size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  AccountAlloc(ptr);
  return ptr;
}

void* operator new[](size_t size, std::align_val_t alignment) {
  return operator new(size, alignment);
}

void* operator new(size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  void* ptr = AlignedAllocOrHandler(size, static_cast<size_t>(alignment));
  AccountAlloc(ptr);
  return ptr;
}

void* operator new[](size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return operator new(size, alignment, std::nothrow);
}

void operator delete(void* ptr) noexcept {
  AccountFree(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept { operator delete(ptr); }

void operator delete(void* ptr, size_t) noexcept { operator delete(ptr); }

void operator delete[](void* ptr, size_t) noexcept { operator delete(ptr); }

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  operator delete(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  operator delete(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  operator delete(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  operator delete(ptr);
}

void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  operator delete(ptr);
}

void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  operator delete(ptr);
}

void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  operator delete(ptr);
}

void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  operator delete(ptr);
}
