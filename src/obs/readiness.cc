#include "obs/readiness.h"

#include "common/string_util.h"

namespace frappe::obs {

Readiness& Readiness::Global() {
  static Readiness* instance = new Readiness();
  return *instance;
}

void Readiness::SetDegraded(std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  degraded_ = true;
  degraded_reason_ = std::move(reason);
}

void Readiness::ClearDegraded() {
  std::lock_guard<std::mutex> lock(mu_);
  degraded_ = false;
  degraded_reason_.clear();
}

void Readiness::SetOverloaded(bool on, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  overloaded_ = on;
  overloaded_reason_ = on ? std::move(reason) : std::string();
}

void Readiness::SetDraining(bool on, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = on;
  draining_reason_ = on ? std::move(reason) : std::string();
}

Readiness::State Readiness::state(std::string* reason) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    if (reason != nullptr) *reason = draining_reason_;
    return State::kDraining;
  }
  if (overloaded_) {
    if (reason != nullptr) *reason = overloaded_reason_;
    return State::kOverloaded;
  }
  if (degraded_) {
    if (reason != nullptr) *reason = degraded_reason_;
    return State::kDegraded;
  }
  if (reason != nullptr) reason->clear();
  return State::kReady;
}

const char* Readiness::Name(State state) {
  switch (state) {
    case State::kReady:
      return "ready";
    case State::kDegraded:
      return "degraded";
    case State::kOverloaded:
      return "overloaded";
    case State::kDraining:
      return "draining";
  }
  return "unknown";
}

std::string Readiness::Json() const {
  std::string reason;
  State s = state(&reason);
  std::string out = "{\"state\": \"";
  out += Name(s);
  out += "\", \"reason\": ";
  out += reason.empty() ? "null" : JsonQuote(reason);
  out += "}\n";
  return out;
}

int Readiness::HttpCode() const {
  State s = state(nullptr);
  return (s == State::kDraining || s == State::kOverloaded) ? 503 : 200;
}

void Readiness::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = overloaded_ = degraded_ = false;
  draining_reason_.clear();
  overloaded_reason_.clear();
  degraded_reason_.clear();
}

}  // namespace frappe::obs
