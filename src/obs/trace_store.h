#ifndef FRAPPE_OBS_TRACE_STORE_H_
#define FRAPPE_OBS_TRACE_STORE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace frappe::obs {

// Bounded tail-sampled trace retention: every server request collects its
// span tree into a SpanCollector; at completion the server decides whether
// the tree is worth keeping (slow, errored, cancelled, shed, or explicitly
// traced by the client) and hands it here. /debug/tracez?trace_id=... then
// serves the retained tree without any blocking capture window.
//
// A fixed-capacity ring of full span trees under one mutex: retention is a
// per-request cold path (at most one Retain per query, and only for the
// tail), lookups come from the stats server's serving thread.

struct StoredTrace {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::string reason;       // "slow" | "error" | "cancelled" | "shed" |
                            // "requested"
  std::string status;       // status-code name ("OK", "DeadlineExceeded"...)
  std::string fingerprint;  // 16-hex query fingerprint; empty when unknown
  uint64_t ts_us = 0;       // unix micros at retention
  double latency_ms = 0;
  uint64_t dropped_spans = 0;
  std::vector<CollectedSpan> spans;
};

class TraceStore {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  static TraceStore& Global();

  explicit TraceStore(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  // Keeps `trace`, evicting the oldest retained trace when full. A second
  // Retain with the same trace id replaces the first (retries reuse ids).
  void Retain(StoredTrace trace);

  bool Lookup(uint64_t trace_hi, uint64_t trace_lo, StoredTrace* out) const;

  // {"retained": N, "evicted": M, "traces": [{trace_id, reason, status,
  //  fingerprint, ts_us, latency_ms, spans}, ...]} newest first.
  std::string IndexJson() const;

  // One retained trace as Chrome trace-event JSON (same shape as
  // Trace::ExportJson, with span/parent ids in args).
  static std::string TraceJson(const StoredTrace& trace);

  size_t size() const;
  uint64_t evicted() const;
  void Clear();

  // Approximate heap footprint of the retained traces (ring metadata,
  // per-trace strings, span vectors) for /debug/memz.
  uint64_t ApproxBytes() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<StoredTrace> ring_;  // oldest at front
  uint64_t evicted_ = 0;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_TRACE_STORE_H_
