#include "obs/query_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/string_util.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::obs {
namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Gauge& ActiveGauge() {
  static Gauge& g = Registry::Global().GetGauge("query.active");
  return g;
}

Counter& CancelCounter() {
  static Counter& c = Registry::Global().GetCounter("query.cancelled");
  return c;
}

Counter& WatchdogCancelCounter() {
  static Counter& c =
      Registry::Global().GetCounter("query.watchdog_cancelled");
  return c;
}

}  // namespace

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* instance = new QueryRegistry();
  return *instance;
}

void QueryRegistry::Handle::Release() {
  if (registry_ != nullptr && entry_ != nullptr) {
    registry_->Unregister(entry_->id);
  }
  registry_ = nullptr;
  entry_ = nullptr;
}

QueryRegistry::Handle QueryRegistry::Register(
    uint64_t fingerprint, std::string normalized, std::string raw,
    std::atomic<bool>* external_token, uint64_t trace_hi, uint64_t trace_lo,
    uint64_t queue_wait_us) {
  if (!enabled()) return Handle();
  auto entry = std::make_shared<Entry>();
  entry->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry->fingerprint = fingerprint;
  entry->normalized = std::move(normalized);
  entry->raw = std::move(raw);
  entry->start_unix_us = NowUnixMicros();
  entry->start_steady = std::chrono::steady_clock::now();
  entry->trace_hi = trace_hi;
  entry->trace_lo = trace_lo;
  entry->queue_wait_us = queue_wait_us;
  entry->cancel_token =
      external_token != nullptr ? external_token : &entry->own_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(entry->id, entry);
  }
  ActiveGauge().Add(1);
  return Handle(this, std::move(entry));
}

void QueryRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(id) > 0) ActiveGauge().Add(-1);
}

bool QueryRegistry::Cancel(uint64_t id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  entry->cancel_requested.store(true, std::memory_order_relaxed);
  entry->cancel_token->store(true, std::memory_order_relaxed);
  CancelCounter().Add(1);
  LogInfo("registry", "cancel requested for query id=" + std::to_string(id) +
                          " fp=" + FingerprintHex(entry->fingerprint));
  return true;
}

std::vector<QueryRegistry::Snapshot> QueryRegistry::SnapshotAll() const {
  std::vector<std::shared_ptr<Entry>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) live.push_back(entry);
  }
  auto now = std::chrono::steady_clock::now();
  std::vector<Snapshot> out;
  out.reserve(live.size());
  for (const auto& entry : live) {
    Snapshot s;
    s.id = entry->id;
    s.fingerprint = entry->fingerprint;
    s.normalized = entry->normalized;
    s.raw = entry->raw;
    s.start_unix_us = entry->start_unix_us;
    s.elapsed_ms = std::chrono::duration<double, std::milli>(
                       now - entry->start_steady)
                       .count();
    s.steps = entry->progress.steps.load(std::memory_order_relaxed);
    s.db_hits = entry->progress.db_hits.load(std::memory_order_relaxed);
    s.rows = entry->progress.rows.load(std::memory_order_relaxed);
    s.op = entry->progress.op.load(std::memory_order_relaxed);
    s.cancel_requested =
        entry->cancel_requested.load(std::memory_order_relaxed);
    s.trace_hi = entry->trace_hi;
    s.trace_lo = entry->trace_lo;
    s.queue_wait_us = entry->queue_wait_us;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const Snapshot& a, const Snapshot& b) { return a.id < b.id; });
  return out;
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string QueryRegistry::DumpJson() const {
  std::vector<Snapshot> snaps = SnapshotAll();
  std::string out = "{\n  \"now_us\": " + std::to_string(NowUnixMicros());
  out += ",\n  \"queries\": [";
  bool first = true;
  for (const Snapshot& s : snaps) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(s.id);
    out += ", \"fp\": \"" + FingerprintHex(s.fingerprint) + "\"";
    out += ", \"query\": " + JsonQuote(s.normalized);
    out += ", \"raw\": " + JsonQuote(s.raw);
    out += ", \"start_unix_us\": " + std::to_string(s.start_unix_us);
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", s.elapsed_ms);
    out += ", \"elapsed_ms\": ";
    out += elapsed;
    out += ", \"steps\": " + std::to_string(s.steps);
    out += ", \"db_hits\": " + std::to_string(s.db_hits);
    out += ", \"rows\": " + std::to_string(s.rows);
    out += ", \"operator\": ";
    out += s.op != nullptr ? JsonQuote(s.op) : "null";
    out += ", \"cancel_requested\": ";
    out += s.cancel_requested ? "true" : "false";
    out += ", \"trace_id\": \"" + TraceIdHex(s.trace_hi, s.trace_lo) + "\"";
    out += ", \"queue_wait_us\": " + std::to_string(s.queue_wait_us);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void QueryRegistry::StartWatchdog(uint64_t threshold_ms, uint64_t interval_ms,
                                  WatchdogAction action) {
  StopWatchdog();
  if (threshold_ms == 0) return;
  if (interval_ms == 0) interval_ms = 250;
  watchdog_stop_.store(false, std::memory_order_relaxed);
  watchdog_ = std::thread(
      [this, threshold_ms, interval_ms, action] {
        WatchdogLoop(threshold_ms, interval_ms, action);
      });
}

void QueryRegistry::StopWatchdog() {
  if (!watchdog_.joinable()) return;
  watchdog_stop_.store(true, std::memory_order_relaxed);
  watchdog_.join();
}

bool QueryRegistry::MaybeStartWatchdogFromEnv() {
  const char* env = std::getenv("FRAPPE_STUCK_QUERY_MS");
  if (env == nullptr || *env == '\0') return false;
  int64_t ms = 0;
  if (!ParseInt64(env, &ms) || ms <= 0) {
    LogWarn("watchdog",
            std::string("ignoring FRAPPE_STUCK_QUERY_MS: '") + env + "'");
    return false;
  }
  // Parse the action here, on the caller thread, so the watchdog loop
  // never touches the environment (getenv racing a test's setenv is a
  // real TSan report).
  WatchdogAction action = WatchdogAction::kWarn;
  const char* action_env = std::getenv("FRAPPE_STUCK_QUERY_ACTION");
  if (action_env != nullptr && *action_env != '\0') {
    std::string_view v(action_env);
    if (v == "cancel") {
      action = WatchdogAction::kCancel;
    } else if (v != "warn") {
      LogWarn("watchdog", std::string("ignoring FRAPPE_STUCK_QUERY_ACTION: '") +
                              action_env + "' (want warn|cancel)");
    }
  }
  StartWatchdog(static_cast<uint64_t>(ms), 250, action);
  LogInfo("watchdog",
          "stuck-query watchdog armed at " + std::to_string(ms) + "ms action=" +
              (action == WatchdogAction::kCancel ? "cancel" : "warn"));
  return true;
}

void QueryRegistry::WatchdogLoop(uint64_t threshold_ms, uint64_t interval_ms,
                                 WatchdogAction action) {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::vector<std::shared_ptr<Entry>> live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live.reserve(entries_.size());
      for (const auto& [id, entry] : entries_) live.push_back(entry);
    }
    auto now = std::chrono::steady_clock::now();
    for (const auto& entry : live) {
      double elapsed_ms = std::chrono::duration<double, std::milli>(
                              now - entry->start_steady)
                              .count();
      if (elapsed_ms < static_cast<double>(threshold_ms)) continue;
      // One warning per query, not one per scan.
      bool expected = false;
      if (!entry->stuck_warned.compare_exchange_strong(
              expected, true, std::memory_order_relaxed)) {
        continue;
      }
      const char* op = entry->progress.op.load(std::memory_order_relaxed);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f", elapsed_ms);
      LogWarn("watchdog",
              "stuck query id=" + std::to_string(entry->id) +
                  " fp=" + FingerprintHex(entry->fingerprint) +
                  " elapsed_ms=" + buf + " steps=" +
                  std::to_string(entry->progress.steps.load(
                      std::memory_order_relaxed)) +
                  " operator=" + (op != nullptr ? op : "?") +
                  " query=" + entry->normalized);
      if (action == WatchdogAction::kCancel) {
        // Enforcement: trip the same token /debug/cancel would. The
        // stuck_warned CAS above already guarantees once-per-query.
        entry->cancel_requested.store(true, std::memory_order_relaxed);
        entry->cancel_token->store(true, std::memory_order_relaxed);
        WatchdogCancelCounter().Add(1);
        LogWarn("watchdog", "cancelled stuck query id=" +
                                std::to_string(entry->id) +
                                " (FRAPPE_STUCK_QUERY_ACTION=cancel)");
      }
    }
    // Sleep in small slices so StopWatchdog returns promptly.
    uint64_t slept = 0;
    while (slept < interval_ms &&
           !watchdog_stop_.load(std::memory_order_relaxed)) {
      uint64_t slice = std::min<uint64_t>(50, interval_ms - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
    }
  }
}

}  // namespace frappe::obs
