#include "obs/fingerprint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace frappe::obs {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Tokens that glue to their neighbours (no space on either side) when the
// normalized text is reassembled. Everything else gets single-space
// separation, which keeps `START n = node:...` and `a <= b` readable.
bool Glues(std::string_view tok) {
  return tok == "(" || tok == ")" || tok == "[" || tok == "]" ||
         tok == "{" || tok == "}" || tok == ":" || tok == "," ||
         tok == "." || tok == ".." || tok == "*" || tok == "-" ||
         tok == "->" || tok == "<-";
}

// `'short_name: sr_media_change'` keeps its field and drops its value:
// the auto-index lookup string is half shape, half parameter.
std::string NormalizeStringLiteral(std::string_view body) {
  size_t i = 0;
  while (i < body.size() &&
         std::isspace(static_cast<unsigned char>(body[i]))) {
    ++i;
  }
  size_t field_start = i;
  if (i < body.size() && IsIdentStart(body[i])) {
    while (i < body.size() && IsIdentChar(body[i])) ++i;
    size_t field_end = i;
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i < body.size() && body[i] == ':') {
      return "'" +
             ToLower(body.substr(field_start, field_end - field_start)) +
             ": ?'";
    }
  }
  return "?";
}

}  // namespace

uint64_t Fingerprint64(std::string_view text) {
  // FNV-1a 64-bit.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

NormalizedQuery NormalizeQuery(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  bool prev_glued = true;  // suppress the leading space
  auto emit = [&](std::string_view tok) {
    bool glue = Glues(tok);
    if (!out.empty() && !glue && !prev_glued) out += ' ';
    out += tok;
    prev_glued = glue;
  };

  size_t pos = 0;
  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < input.size() && input[pos + 1] == '/') {
      while (pos < input.size() && input[pos] != '\n') ++pos;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < input.size() && IsIdentChar(input[pos])) ++pos;
      emit(ToLower(input.substr(start, pos - start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[pos]))) {
        ++pos;
      }
      // Match the lexer's float rule: '.' only consumed when a digit
      // follows, so `1..3` stays two ints around a range.
      if (pos + 1 < input.size() && input[pos] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[pos + 1]))) {
        ++pos;
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[pos]))) {
          ++pos;
        }
      }
      emit("?");
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t body_start = ++pos;
      while (pos < input.size() && input[pos] != quote) {
        if (input[pos] == '\\' && pos + 1 < input.size()) ++pos;
        ++pos;
      }
      std::string_view body = input.substr(body_start, pos - body_start);
      if (pos < input.size()) ++pos;  // closing quote (absent: best-effort)
      emit(NormalizeStringLiteral(body));
      continue;
    }
    // Punctuation; fuse the two-character operators the grammar uses.
    auto two = [&](char a, char b) {
      return c == a && pos + 1 < input.size() && input[pos + 1] == b;
    };
    if (two('-', '>')) {
      emit("->");
      pos += 2;
    } else if (two('<', '-')) {
      emit("<-");
      pos += 2;
    } else if (two('<', '=')) {
      emit("<=");
      pos += 2;
    } else if (two('>', '=')) {
      emit(">=");
      pos += 2;
    } else if (two('<', '>')) {
      emit("<>");
      pos += 2;
    } else if (two('.', '.')) {
      emit("..");
      pos += 2;
    } else {
      emit(std::string_view(&input[pos], 1));
      ++pos;
    }
  }

  NormalizedQuery result;
  result.text = std::move(out);
  result.fingerprint = Fingerprint64(result.text);
  return result;
}

// ---------------------------------------------------------------------------
// QueryStats

QueryStats& QueryStats::Global() {
  static QueryStats* table = new QueryStats();  // never destroyed
  return *table;
}

void QueryStats::Entry::Record(bool ok, uint64_t latency, uint64_t row_count,
                               uint64_t hit_count) {
  calls.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
  total_latency_us.fetch_add(latency, std::memory_order_relaxed);
  rows.fetch_add(row_count, std::memory_order_relaxed);
  db_hits.fetch_add(hit_count, std::memory_order_relaxed);
  latency_us.Record(latency);
  uint64_t seen = max_latency_us.load(std::memory_order_relaxed);
  while (latency > seen &&
         !max_latency_us.compare_exchange_weak(seen, latency,
                                               std::memory_order_relaxed)) {
  }
}

void QueryStats::Entry::RecordTimeline(uint64_t queue_us, uint64_t parse_us,
                                       uint64_t plan_us, uint64_t exec_us) {
  queue_us_total.fetch_add(queue_us, std::memory_order_relaxed);
  parse_us_total.fetch_add(parse_us, std::memory_order_relaxed);
  plan_us_total.fetch_add(plan_us, std::memory_order_relaxed);
  exec_us_total.fetch_add(exec_us, std::memory_order_relaxed);
}

void QueryStats::Entry::RecordQError(uint64_t qerror_x100) {
  uint64_t seen = worst_qerror_x100.load(std::memory_order_relaxed);
  while (qerror_x100 > seen &&
         !worst_qerror_x100.compare_exchange_weak(
             seen, qerror_x100, std::memory_order_relaxed)) {
  }
}

void QueryStats::Entry::RecordResources(uint64_t cpu_us,
                                        uint64_t alloc_bytes,
                                        uint64_t peak_bytes) {
  cpu_us_total.fetch_add(cpu_us, std::memory_order_relaxed);
  alloc_bytes_total.fetch_add(alloc_bytes, std::memory_order_relaxed);
  uint64_t seen = peak_bytes_max.load(std::memory_order_relaxed);
  while (peak_bytes > seen &&
         !peak_bytes_max.compare_exchange_weak(seen, peak_bytes,
                                               std::memory_order_relaxed)) {
  }
}

QueryStats::Entry& QueryStats::GetOrCreate(uint64_t fingerprint,
                                           std::string_view normalized) {
  Shard& shard = shards_[fingerprint % kTableShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it == shard.entries.end()) {
    auto entry = std::make_unique<Entry>();
    entry->fingerprint = fingerprint;
    entry->normalized = std::string(normalized);
    it = shard.entries.emplace(fingerprint, std::move(entry)).first;
  }
  return *it->second;
}

std::vector<QueryStats::Snapshot> QueryStats::SnapshotAll() const {
  std::vector<Snapshot> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [fp, entry] : shard.entries) {
      Snapshot s;
      s.fingerprint = entry->fingerprint;
      s.normalized = entry->normalized;
      s.calls = entry->calls.load(std::memory_order_relaxed);
      s.errors = entry->errors.load(std::memory_order_relaxed);
      s.total_latency_us =
          entry->total_latency_us.load(std::memory_order_relaxed);
      s.max_latency_us = entry->max_latency_us.load(std::memory_order_relaxed);
      s.rows = entry->rows.load(std::memory_order_relaxed);
      s.db_hits = entry->db_hits.load(std::memory_order_relaxed);
      s.worst_qerror_x100 =
          entry->worst_qerror_x100.load(std::memory_order_relaxed);
      s.queue_us_total = entry->queue_us_total.load(std::memory_order_relaxed);
      s.parse_us_total = entry->parse_us_total.load(std::memory_order_relaxed);
      s.plan_us_total = entry->plan_us_total.load(std::memory_order_relaxed);
      s.exec_us_total = entry->exec_us_total.load(std::memory_order_relaxed);
      s.cpu_us_total = entry->cpu_us_total.load(std::memory_order_relaxed);
      s.alloc_bytes_total =
          entry->alloc_bytes_total.load(std::memory_order_relaxed);
      s.peak_bytes_max = entry->peak_bytes_max.load(std::memory_order_relaxed);
      s.latency = entry->latency_us.Snap();
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<QueryStats::Snapshot> QueryStats::Top(size_t n,
                                                  Order order) const {
  std::vector<Snapshot> all = SnapshotAll();
  auto key = [order](const Snapshot& s) {
    switch (order) {
      case Order::kTotalLatency: return s.total_latency_us;
      case Order::kCalls: return s.calls;
      case Order::kWorstQError: return s.worst_qerror_x100;
    }
    return s.total_latency_us;
  };
  std::sort(all.begin(), all.end(),
            [&](const Snapshot& a, const Snapshot& b) {
              if (key(a) != key(b)) return key(a) > key(b);
              return a.fingerprint < b.fingerprint;  // deterministic ties
            });
  if (n > 0 && all.size() > n) all.resize(n);
  return all;
}

std::string QueryStats::DumpJson(size_t top_n, Order order) const {
  std::vector<Snapshot> top = Top(top_n, order);
  std::string out = "[";
  char qbuf[32];
  for (size_t i = 0; i < top.size(); ++i) {
    const Snapshot& s = top[i];
    uint64_t avg = s.calls == 0 ? 0 : s.total_latency_us / s.calls;
    std::snprintf(qbuf, sizeof(qbuf), "%.2f",
                  static_cast<double>(s.worst_qerror_x100) / 100.0);
    out += std::string(i == 0 ? "" : ",") + "\n    {\"fp\": " +
           JsonQuote(FingerprintHex(s.fingerprint)) +
           ", \"query\": " + JsonQuote(s.normalized) +
           ", \"calls\": " + std::to_string(s.calls) +
           ", \"errors\": " + std::to_string(s.errors) +
           ", \"total_latency_us\": " + std::to_string(s.total_latency_us) +
           ", \"avg_latency_us\": " + std::to_string(avg) +
           ", \"max_latency_us\": " + std::to_string(s.max_latency_us) +
           ", \"p99_latency_us\": " +
           std::to_string(
               static_cast<uint64_t>(s.latency.Quantile(0.99))) +
           ", \"rows\": " + std::to_string(s.rows) +
           ", \"db_hits\": " + std::to_string(s.db_hits) +
           ", \"worst_qerror\": " + qbuf +
           ", \"cpu_us_total\": " + std::to_string(s.cpu_us_total) +
           ", \"alloc_bytes_total\": " +
           std::to_string(s.alloc_bytes_total) +
           ", \"peak_bytes\": " + std::to_string(s.peak_bytes_max) +
           ", \"timeline\": {\"queue_us\": " +
           std::to_string(s.calls == 0 ? 0 : s.queue_us_total / s.calls) +
           ", \"parse_us\": " +
           std::to_string(s.calls == 0 ? 0 : s.parse_us_total / s.calls) +
           ", \"plan_us\": " +
           std::to_string(s.calls == 0 ? 0 : s.plan_us_total / s.calls) +
           ", \"exec_us\": " +
           std::to_string(s.calls == 0 ? 0 : s.exec_us_total / s.calls) +
           "}}";
  }
  out += top.empty() ? "]" : "\n  ]";
  return out;
}

size_t QueryStats::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

uint64_t QueryStats::ApproxBytes() const {
  uint64_t total = sizeof(*this);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [fp, entry] : shard.entries) {
      total += sizeof(Entry) + entry->normalized.capacity();
    }
  }
  return total;
}

void QueryStats::ResetForTesting() {
  static std::vector<std::unique_ptr<Entry>>* graveyard =
      new std::vector<std::unique_ptr<Entry>>();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [fp, entry] : shard.entries) {
      graveyard->push_back(std::move(entry));
    }
    shard.entries.clear();
  }
}

// ---------------------------------------------------------------------------
// SlowQueryRing

SlowQueryRing& SlowQueryRing::Global() {
  static SlowQueryRing* ring = new SlowQueryRing();  // never destroyed
  return *ring;
}

void SlowQueryRing::Push(Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % kCapacity;
}

std::vector<SlowQueryRing::Record> SlowQueryRing::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Record> out;
  out.reserve(ring_.size());
  if (ring_.size() < kCapacity) {
    out = ring_;
  } else {
    for (size_t i = 0; i < kCapacity; ++i) {
      out.push_back(ring_[(next_ + i) % kCapacity]);
    }
  }
  return out;
}

std::string SlowQueryRing::DumpJson() const {
  std::vector<Record> records = SnapshotAll();
  std::string out = "[";
  char num[32];
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::snprintf(num, sizeof(num), "%.3f", r.latency_ms);
    out += std::string(i == 0 ? "" : ",") + "\n    {\"ts_us\": " +
           std::to_string(r.ts_us) +
           ", \"fp\": " + JsonQuote(FingerprintHex(r.fingerprint)) +
           ", \"trace_id\": " + JsonQuote(r.trace_id) +
           ", \"query\": " + JsonQuote(r.normalized) +
           ", \"latency_ms\": " + num +
           ", \"threshold_ms\": " + std::to_string(r.threshold_ms) +
           ", \"status\": " + JsonQuote(r.status) + "}";
  }
  out += records.empty() ? "]" : "\n  ]";
  return out;
}

void SlowQueryRing::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

// ---------------------------------------------------------------------------
// MisestimateRing

MisestimateRing& MisestimateRing::Global() {
  static MisestimateRing* ring = new MisestimateRing();  // never destroyed
  return *ring;
}

void MisestimateRing::Push(Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % kCapacity;
}

std::vector<MisestimateRing::Record> MisestimateRing::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Record> out;
  out.reserve(ring_.size());
  if (ring_.size() < kCapacity) {
    out = ring_;
  } else {
    for (size_t i = 0; i < kCapacity; ++i) {
      out.push_back(ring_[(next_ + i) % kCapacity]);
    }
  }
  return out;
}

std::string MisestimateRing::DumpJson() const {
  std::vector<Record> records = SnapshotAll();
  std::string out = "[";
  char est[32], q[32];
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::snprintf(est, sizeof(est), "%.1f", r.est_rows);
    std::snprintf(q, sizeof(q), "%.2f", r.qerror);
    out += std::string(i == 0 ? "" : ",") + "\n    {\"ts_us\": " +
           std::to_string(r.ts_us) +
           ", \"fp\": " + JsonQuote(FingerprintHex(r.fingerprint)) +
           ", \"query\": " + JsonQuote(r.normalized) +
           ", \"est_rows\": " + est +
           ", \"actual_rows\": " + std::to_string(r.actual_rows) +
           ", \"qerror\": " + q + "}";
  }
  out += records.empty() ? "]" : "\n  ]";
  return out;
}

void MisestimateRing::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace frappe::obs
