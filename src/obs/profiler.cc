#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

namespace frappe {
namespace obs {
namespace {

constexpr int kMaxFrames = 48;

struct Sample {
  int depth = 0;
  void* frames[kMaxFrames];
};

// The handler claims slots with one relaxed fetch_add; indices past the
// capacity count as drops. The ring is heap-allocated at Start and read at
// Stop, strictly after the timer is disarmed and in-flight handlers have
// drained.
struct SampleRing {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> dropped{0};
  size_t capacity = 0;
  std::unique_ptr<Sample[]> samples;
};

std::atomic<bool> g_armed{false};
SampleRing* g_ring = nullptr;  // written only while the timer is disarmed

void SigprofHandler(int /*signo*/) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  SampleRing* ring = g_ring;
  if (ring == nullptr) return;
  uint64_t index = ring->next.fetch_add(1, std::memory_order_relaxed);
  if (index >= ring->capacity) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& sample = ring->samples[index];
  sample.depth = backtrace(sample.frames, kMaxFrames);
}

struct sigaction g_prev_action;
struct itimerval g_prev_timer;
bool g_running = false;

std::string SymbolFor(void* pc,
                      std::unordered_map<void*, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
    // flamegraph.pl separators: ';' splits frames, ' ' splits the count.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%zx",
                  reinterpret_cast<size_t>(pc));
    name = buffer;
  }
  cache->emplace(pc, name);
  return name;
}

bool IsProfilerFrame(const std::string& name) {
  return name.find("SigprofHandler") != std::string::npos ||
         name.find("restore_rt") != std::string::npos ||
         name.find("sigaction") != std::string::npos ||
         name.find("killpg") != std::string::npos;
}

std::string FoldRing(const SampleRing& ring) {
  size_t count = ring.next.load(std::memory_order_relaxed);
  if (count > ring.capacity) count = ring.capacity;
  std::unordered_map<void*, std::string> symbol_cache;
  std::map<std::string, uint64_t> folded;
  for (size_t i = 0; i < count; ++i) {
    const Sample& sample = ring.samples[i];
    if (sample.depth <= 0) continue;
    // backtrace() reports innermost first, with the handler and the signal
    // trampoline as the first frames; trim those, then emit root-first.
    int begin = 0;
    while (begin < sample.depth && begin < 4 &&
           IsProfilerFrame(SymbolFor(sample.frames[begin], &symbol_cache))) {
      ++begin;
    }
    std::string stack;
    for (int f = sample.depth - 1; f >= begin; --f) {
      if (!stack.empty()) stack += ';';
      stack += SymbolFor(sample.frames[f], &symbol_cache);
    }
    if (!stack.empty()) ++folded[stack];
  }
  std::string out;
  for (const auto& [stack, n] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(n);
    out += '\n';
  }
  return out;
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Status Profiler::Start(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (g_running) {
    return Status::FailedPrecondition("profiler already running");
  }
  if (options.hz < 1 || options.hz > 10'000) {
    return Status::InvalidArgument("profiler hz out of range [1, 10000]");
  }
  if (options.max_samples == 0) {
    return Status::InvalidArgument("profiler max_samples must be > 0");
  }

  auto ring = std::make_unique<SampleRing>();
  ring->capacity = options.max_samples;
  ring->samples = std::make_unique<Sample[]>(options.max_samples);

  // backtrace() lazily loads libgcc on first use, which allocates — do that
  // here, not in the handler.
  void* warmup[4];
  backtrace(warmup, 4);

  g_ring = ring.release();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SigprofHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_prev_action) != 0) {
    delete g_ring;
    g_ring = nullptr;
    return Status::Internal("sigaction(SIGPROF) failed");
  }
  g_armed.store(true, std::memory_order_release);

  struct itimerval timer;
  long period_us = 1'000'000l / options.hz;
  if (period_us < 1) period_us = 1;
  timer.it_interval.tv_sec = period_us / 1'000'000l;
  timer.it_interval.tv_usec = period_us % 1'000'000l;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &g_prev_timer) != 0) {
    g_armed.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    delete g_ring;
    g_ring = nullptr;
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  g_running = true;
  return Status::OK();
}

std::string Profiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!g_running) return std::string();

  setitimer(ITIMER_PROF, &g_prev_timer, nullptr);
  g_armed.store(false, std::memory_order_release);
  // Give any handler already delivered to another thread time to finish
  // before the ring is read and freed.
  usleep(10'000);
  sigaction(SIGPROF, &g_prev_action, nullptr);

  std::unique_ptr<SampleRing> ring(g_ring);
  g_ring = nullptr;
  g_running = false;
  if (ring == nullptr) return std::string();
  return FoldRing(*ring);
}

Result<std::string> Profiler::CaptureFor(double seconds,
                                         const Options& options) {
  if (seconds <= 0 || seconds > 60) {
    return Status::InvalidArgument("capture seconds out of range (0, 60]");
  }
  if (Status started = Start(options); !started.ok()) return started;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
  return Stop();
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return g_running;
}

uint64_t Profiler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (g_ring == nullptr) return 0;
  uint64_t n = g_ring->next.load(std::memory_order_relaxed);
  return n > g_ring->capacity ? g_ring->capacity : n;
}

uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (g_ring == nullptr) return 0;
  return g_ring->dropped.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace frappe
