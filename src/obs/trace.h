#ifndef FRAPPE_OBS_TRACE_H_
#define FRAPPE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace frappe::obs {

// Request-scoped causal tracing for the query/analytics/extractor stack,
// exportable as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file — parented spans render as a
// flame tree).
//
// Two collection paths share the same Span RAII type:
//   - the *global* path (Trace::Enable) appends every completed span to a
//     fixed-capacity per-thread ring, as before — the whole-process window
//     view served by /debug/tracez?ms=N;
//   - the *request* path installs a TraceScope carrying a TraceContext
//     (128-bit trace id) and a SpanCollector sink on the current thread;
//     every span completed under it is also appended to the sink with its
//     span id and parent id, building the per-request span tree that the
//     tail-sampling TraceStore retains for slow/errored/shed queries.
//
// The fast path is the *disabled* path: a Span constructor is one relaxed
// atomic load, one thread-local load and a branch — no clock read, no
// allocation — cheap enough to leave in per-BFS-level and per-clause code
// permanently (bench_obs_overhead keeps this honest: < 5% executor overhead
// with tracing off).
//
// When collecting, completed spans are appended to the per-thread ring
// (oldest events overwritten), each ring guarded by its own mutex so a
// concurrent ExportJson is race-free (TSan-clean). Span names must be
// string literals (they are stored as const char*).

// W3C trace-context identity: a 128-bit trace id plus the id of the span
// that is "current" on this context (the parent for any span started under
// it). A zero trace id means "no trace".
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;  // current span; parent of children started under it

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

// Parses a W3C `traceparent` header value:
//   00-<32 lowercase hex trace id>-<16 hex parent span id>-<2 hex flags>
// Returns nullopt for anything malformed (wrong length, bad hex, version
// "ff", all-zero trace id or span id) — callers fall back to a fresh
// context, never an error. The returned context's span_id is the remote
// parent span id.
std::optional<TraceContext> ParseTraceparent(std::string_view header);

// "00-<trace id hex>-<span id hex>-01" for the given context.
std::string FormatTraceparent(const TraceContext& ctx);

// 32 lowercase hex chars of the 128-bit trace id.
std::string TraceIdHex(uint64_t trace_hi, uint64_t trace_lo);
inline std::string TraceIdHex(const TraceContext& ctx) {
  return TraceIdHex(ctx.trace_hi, ctx.trace_lo);
}

// 16 lowercase hex chars of a span id.
std::string SpanIdHex(uint64_t span_id);

// Parses 32 lowercase-or-uppercase hex chars into a 128-bit trace id.
bool ParseTraceIdHex(std::string_view hex, uint64_t* hi, uint64_t* lo);

// A fresh context with a random non-zero 128-bit trace id and span_id 0
// (no parent yet).
TraceContext GenerateTraceContext();

struct TraceEvent {
  const char* name = nullptr;  // static string
  uint32_t tid = 0;            // sequential thread number, not the OS tid
  uint64_t start_us = 0;       // microseconds since the process trace epoch
  uint64_t dur_us = 0;
  // Causal identity; zero when recorded outside any span tree.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

// One completed span captured into a per-request SpanCollector.
struct CollectedSpan {
  const char* name = nullptr;  // static string
  uint32_t tid = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of this request's tree
  uint64_t start_us = 0;   // Trace::NowMicros timebase
  uint64_t dur_us = 0;
};

// Bounded per-request span sink. One collector per in-flight request;
// worker, session and kernel spans append under their own per-collector
// mutex (cold path — only taken when a request is actually being traced).
class SpanCollector {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit SpanCollector(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void Add(const CollectedSpan& span) {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(span);
  }

  std::vector<CollectedSpan> TakeSpans() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<CollectedSpan> out;
    out.swap(spans_);
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<CollectedSpan> spans_;
  size_t capacity_;
  uint64_t dropped_ = 0;
};

class Trace {
 public:
  // Capacity of each thread's ring. Exceeding it drops the oldest events
  // (the export notes how many were dropped).
  static constexpr size_t kRingCapacity = 16384;

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Drops every buffered event (rings stay allocated).
  static void Clear();

  // Total buffered events across all thread rings.
  static size_t EventCount();
  // Events overwritten by ring wrap-around since the last Clear.
  static uint64_t DroppedCount();

  // Chrome trace-event JSON: {"traceEvents": [{"name", "ph": "X", "pid",
  // "tid", "ts", "dur", "args": {trace_id, span_id, parent_id}}, ...]}.
  // Safe to call while other threads trace.
  static std::string ExportJson();
  static Status ExportJsonToFile(const std::string& path);

  // Microseconds since the process trace epoch (first use).
  static uint64_t NowMicros();

  // --- request-scoped context (thread-local; see TraceScope) ---

  // True when a TraceScope is installed on this thread.
  static bool HasRequestContext();
  // This thread's installed context (trace id + the span that new spans
  // will parent under). Zero-valued when none installed.
  static TraceContext CurrentContext();
  // The queue-wait attributed to this thread's current request, as set by
  // TraceScope (0 outside a server request).
  static uint64_t CurrentQueueWaitUs();
  // This thread's request sink, or nullptr.
  static SpanCollector* CurrentSink();

  // Process-unique non-zero span id (thread tag + local counter).
  static uint64_t NextSpanId();

  // Appends a completed span for the calling thread: to the global ring
  // when tracing is enabled, and to the thread's request sink when one is
  // installed. Public for Span; call sites should use FRAPPE_TRACE_SPAN.
  static void RecordSpan(const char* name, uint64_t span_id,
                         uint64_t parent_id, uint64_t start_us,
                         uint64_t dur_us);

  // Makes `span_id` the current parent on this thread and returns the
  // previous one. Public for Span.
  static uint64_t PushSpan(uint64_t span_id);
  static void PopSpan(uint64_t previous_span_id);

 private:
  friend class TraceScope;
  static std::atomic<bool> enabled_;
};

// RAII installation of a request trace context on the current thread: all
// spans started while it is alive parent under `ctx.span_id`, carry the
// 128-bit trace id, and (when `sink` is non-null) are appended to the
// per-request collector in addition to the global rings. Restores the
// previous thread state on destruction, so scopes nest.
class TraceScope {
 public:
  TraceScope(const TraceContext& ctx, SpanCollector* sink,
             uint64_t queue_wait_us = 0);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_ctx_;
  SpanCollector* saved_sink_ = nullptr;
  uint64_t saved_queue_wait_us_ = 0;
};

// RAII span: measures construction-to-destruction and records it under
// `name` (a string literal) if tracing was enabled — globally or via a
// request TraceScope — at construction. While alive it is the parent of
// any span started on the same thread.
class Span {
 public:
  explicit Span(const char* name) {
    if (Trace::enabled() || Trace::HasRequestContext()) {
      name_ = name;
      start_us_ = Trace::NowMicros();
      span_id_ = Trace::NextSpanId();
      parent_id_ = Trace::PushSpan(span_id_);
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Trace::PopSpan(parent_id_);
      Trace::RecordSpan(name_, span_id_, parent_id_, start_us_,
                        Trace::NowMicros() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

#define FRAPPE_TRACE_CONCAT_(a, b) a##b
#define FRAPPE_TRACE_CONCAT(a, b) FRAPPE_TRACE_CONCAT_(a, b)
// Usage: FRAPPE_TRACE_SPAN("query.execute");
#define FRAPPE_TRACE_SPAN(name) \
  ::frappe::obs::Span FRAPPE_TRACE_CONCAT(frappe_trace_span_, __LINE__)(name)

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_TRACE_H_
