#ifndef FRAPPE_OBS_TRACE_H_
#define FRAPPE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace frappe::obs {

// Span tracing for the query/analytics/extractor stack, exportable as
// Chrome trace-event JSON (open chrome://tracing or https://ui.perfetto.dev
// and load the file).
//
// The fast path is the *disabled* path: a Span constructor is one relaxed
// atomic load and a branch, no clock read, no allocation — cheap enough to
// leave in per-BFS-level and per-clause code permanently (bench_obs_overhead
// keeps this honest: < 5% executor overhead with tracing off).
//
// When enabled, completed spans are appended to a fixed-capacity per-thread
// ring buffer (oldest events overwritten), each ring guarded by its own
// mutex so a concurrent ExportJson is race-free (TSan-clean). Span names
// must be string literals (they are stored as const char*).

struct TraceEvent {
  const char* name = nullptr;  // static string
  uint32_t tid = 0;            // sequential thread number, not the OS tid
  uint64_t start_us = 0;       // microseconds since the process trace epoch
  uint64_t dur_us = 0;
};

class Trace {
 public:
  // Capacity of each thread's ring. Exceeding it drops the oldest events
  // (the export notes how many were dropped).
  static constexpr size_t kRingCapacity = 16384;

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Drops every buffered event (rings stay allocated).
  static void Clear();

  // Total buffered events across all thread rings.
  static size_t EventCount();
  // Events overwritten by ring wrap-around since the last Clear.
  static uint64_t DroppedCount();

  // Chrome trace-event JSON: {"traceEvents": [{"name", "ph": "X", "pid",
  // "tid", "ts", "dur"}, ...]}. Safe to call while other threads trace.
  static std::string ExportJson();
  static Status ExportJsonToFile(const std::string& path);

  // Microseconds since the process trace epoch (first use).
  static uint64_t NowMicros();

  // Appends a completed span for the calling thread. Public for Span; call
  // sites should use FRAPPE_TRACE_SPAN instead.
  static void Record(const char* name, uint64_t start_us, uint64_t dur_us);

 private:
  static std::atomic<bool> enabled_;
};

// RAII span: measures construction-to-destruction and records it under
// `name` (a string literal) if tracing was enabled at construction.
class Span {
 public:
  explicit Span(const char* name) {
    if (Trace::enabled()) {
      name_ = name;
      start_us_ = Trace::NowMicros();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Trace::Record(name_, start_us_, Trace::NowMicros() - start_us_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

#define FRAPPE_TRACE_CONCAT_(a, b) a##b
#define FRAPPE_TRACE_CONCAT(a, b) FRAPPE_TRACE_CONCAT_(a, b)
// Usage: FRAPPE_TRACE_SPAN("query.execute");
#define FRAPPE_TRACE_SPAN(name) \
  ::frappe::obs::Span FRAPPE_TRACE_CONCAT(frappe_trace_span_, __LINE__)(name)

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_TRACE_H_
