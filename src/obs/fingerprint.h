#ifndef FRAPPE_OBS_FINGERPRINT_H_
#define FRAPPE_OBS_FINGERPRINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace frappe::obs {

// Workload fingerprinting: collapse every FQL query the process executes
// into its *shape* — literals and whitespace stripped, case folded — so
// that "the same query with different parameters" aggregates into one
// per-fingerprint stats row. This is the unit a live service reasons
// about ("which query shape burns the p99?"), exposed via /stats on the
// embedded stats server and carried by the structured query log.
//
// Normalization is deliberately self-contained (no dependency on
// query/lexer.h — frappe_query links frappe_obs, not the other way
// around) but mirrors the FQL lexical rules: `//` comments, '\''/'"'
// strings with backslash escapes, integer/float literals.

// The normalized shape of one query plus its stable 64-bit fingerprint
// (FNV-1a over the normalized text — stable across runs and machines).
struct NormalizedQuery {
  std::string text;
  uint64_t fingerprint = 0;
};

// Rules:
//  * whitespace runs and `// ...` comments collapse to single separators;
//  * identifiers/keywords fold to lower case;
//  * numeric literals become `?`;
//  * string literals become `?` — except index-lookup strings shaped like
//    `'field: value'`, which keep the field: `'field: ?'` (so lookups on
//    different index fields stay distinct shapes);
//  * `->`, `<-`, `<=`, `>=`, `<>`, `..` stay fused.
// Never fails: text that the real lexer would reject normalizes
// best-effort, so parse errors still aggregate by shape.
NormalizedQuery NormalizeQuery(std::string_view query_text);

// FNV-1a 64-bit over `text` (the fingerprint primitive, exposed for
// tests/tools).
uint64_t Fingerprint64(std::string_view text);

// "0011aabbccddeeff" — fixed-width lower-case hex, the rendering used in
// the query log and /stats.
std::string FingerprintHex(uint64_t fingerprint);

// Per-fingerprint statistics, updated on every Session::Run from the
// always-on ExecStats. Lock-cheap: the fingerprint interns an Entry once
// (short sharded-mutex lookup), after which all updates are relaxed
// atomics; entries live for the process lifetime so references never
// dangle. Readers may race with writers and see monotone approximations —
// exact once writers quiesce (same contract as the metrics Registry).
class QueryStats {
 public:
  static QueryStats& Global();

  struct Entry {
    uint64_t fingerprint = 0;
    std::string normalized;  // immutable after interning
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> total_latency_us{0};
    std::atomic<uint64_t> max_latency_us{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> db_hits{0};
    // Worst plan q-error seen for this shape, in hundredths (q x 100 —
    // atomics are integral; 250 means q = 2.50). 0 = never estimated.
    std::atomic<uint64_t> worst_qerror_x100{0};
    // Cumulative latency attribution (the per-query Timeline, summed):
    // where this shape's total_latency_us actually went.
    std::atomic<uint64_t> queue_us_total{0};
    std::atomic<uint64_t> parse_us_total{0};
    std::atomic<uint64_t> plan_us_total{0};
    std::atomic<uint64_t> exec_us_total{0};
    // Resource attribution (obs/resource.h): cumulative thread-CPU and
    // allocated bytes, plus the worst single-query live-heap high-water
    // mark this shape ever hit.
    std::atomic<uint64_t> cpu_us_total{0};
    std::atomic<uint64_t> alloc_bytes_total{0};
    std::atomic<uint64_t> peak_bytes_max{0};
    Histogram latency_us;  // pow2-bucket latency distribution

    void Record(bool ok, uint64_t latency, uint64_t row_count,
                uint64_t hit_count);
    // Accumulates one query's timeline breakdown.
    void RecordTimeline(uint64_t queue_us, uint64_t parse_us,
                        uint64_t plan_us, uint64_t exec_us);
    // CAS-max update from the per-query estimate-vs-actual comparison.
    void RecordQError(uint64_t qerror_x100);
    // Accumulates one query's resource totals (CAS-max for peak bytes).
    void RecordResources(uint64_t cpu_us, uint64_t alloc_bytes,
                         uint64_t peak_bytes);
  };

  // Interns (on first use) and returns the process-lifetime entry for
  // `fingerprint`.
  Entry& GetOrCreate(uint64_t fingerprint, std::string_view normalized);

  // Point-in-time copy of one entry (readable without atomics).
  struct Snapshot {
    uint64_t fingerprint = 0;
    std::string normalized;
    uint64_t calls = 0;
    uint64_t errors = 0;
    uint64_t total_latency_us = 0;
    uint64_t max_latency_us = 0;
    uint64_t rows = 0;
    uint64_t db_hits = 0;
    uint64_t worst_qerror_x100 = 0;
    uint64_t queue_us_total = 0;
    uint64_t parse_us_total = 0;
    uint64_t plan_us_total = 0;
    uint64_t exec_us_total = 0;
    uint64_t cpu_us_total = 0;
    uint64_t alloc_bytes_total = 0;
    uint64_t peak_bytes_max = 0;
    Histogram::Snapshot latency;
  };

  // Every fingerprint, unordered.
  std::vector<Snapshot> SnapshotAll() const;

  // The top-N view an operator actually wants: order by cumulative
  // latency (where the time goes), by call count (what the workload is),
  // or by worst q-error (where the planner is most wrong). n == 0 returns
  // everything.
  enum class Order { kTotalLatency, kCalls, kWorstQError };
  std::vector<Snapshot> Top(size_t n, Order order) const;

  // JSON array of the top-N (0 = all), ordered by `order`: [{"fp": "..",
  // "query": "..", "calls": .., "errors": .., "total_latency_us": ..,
  // "max_latency_us": .., "avg_latency_us": .., "p99_latency_us": ..,
  // "rows": .., "db_hits": .., "worst_qerror": .., "cpu_us_total": ..,
  // "alloc_bytes_total": .., "peak_bytes": ..}, ...].
  std::string DumpJson(size_t top_n = 0,
                       Order order = Order::kTotalLatency) const;

  size_t size() const;

  // Approximate heap bytes the stats table holds (entries plus interned
  // normalized text), reported by /debug/memz.
  uint64_t ApproxBytes() const;

  // Forgets all fingerprints (entries are parked, not freed, so
  // references handed out earlier stay valid — the Registry idiom).
  void ResetForTesting();

 private:
  QueryStats() = default;

  static constexpr size_t kTableShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<Entry>> entries;
  };
  Shard shards_[kTableShards];
};

// Fixed-capacity ring of the most recent slow queries (the
// FRAPPE_SLOW_QUERY_MS hits), served by /stats so an operator sees the
// offenders without grepping stderr. Mutex-guarded: slow queries are rare
// by definition.
class SlowQueryRing {
 public:
  static constexpr size_t kCapacity = 64;

  struct Record {
    int64_t ts_us = 0;  // unix epoch microseconds
    uint64_t fingerprint = 0;
    std::string trace_id;  // 32-hex trace id, links to /debug/tracez
    std::string normalized;
    double latency_ms = 0.0;
    int64_t threshold_ms = 0;
    std::string status;  // "ok" or the Status code name
  };

  static SlowQueryRing& Global();

  void Push(Record record);
  // Oldest-first copy of the buffered records.
  std::vector<Record> SnapshotAll() const;
  // JSON array, oldest first.
  std::string DumpJson() const;

  void ResetForTesting();

 private:
  SlowQueryRing() = default;

  mutable std::mutex mu_;
  std::vector<Record> ring_;  // ring_[next_] is the oldest once wrapped
  size_t next_ = 0;
};

// Fixed-capacity ring of the worst recent plan misestimates (queries whose
// q-error crossed FRAPPE_MISESTIMATE_QERROR), served by /debug/statz.
// Structured like SlowQueryRing: misestimates worth recording are rare, a
// mutex is fine.
class MisestimateRing {
 public:
  static constexpr size_t kCapacity = 64;

  struct Record {
    int64_t ts_us = 0;  // unix epoch microseconds
    uint64_t fingerprint = 0;
    std::string normalized;
    double est_rows = 0.0;
    uint64_t actual_rows = 0;
    double qerror = 0.0;
  };

  static MisestimateRing& Global();

  void Push(Record record);
  // Oldest-first copy of the buffered records.
  std::vector<Record> SnapshotAll() const;
  // JSON array, oldest first.
  std::string DumpJson() const;

  void ResetForTesting();

 private:
  MisestimateRing() = default;

  mutable std::mutex mu_;
  std::vector<Record> ring_;
  size_t next_ = 0;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_FINGERPRINT_H_
