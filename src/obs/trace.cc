#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace frappe::obs {

std::atomic<bool> Trace::enabled_{false};

namespace {

// One ring per thread that ever recorded a span. The owning thread is the
// only writer; ExportJson/Clear/EventCount from other threads take the same
// per-ring mutex, so access is race-free. Rings are shared_ptr-held by both
// the thread_local handle and the global list, surviving thread exit until
// the next export picks up the remains.
struct ThreadRing {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<TraceEvent> events;  // ring storage, capacity-bounded
  size_t next = 0;                 // ring write cursor
  bool wrapped = false;
  uint64_t dropped = 0;

  void Append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < Trace::kRingCapacity) {
      events.push_back(event);
      return;
    }
    events[next] = event;
    next = (next + 1) % Trace::kRingCapacity;
    wrapped = true;
    ++dropped;
  }
};

struct RingList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  uint32_t next_tid = 1;
};

RingList& Rings() {
  static RingList* list = new RingList();  // never destroyed
  return *list;
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingList& list = Rings();
    std::lock_guard<std::mutex> lock(list.mu);
    r->tid = list.next_tid++;
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t Trace::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

void Trace::Record(const char* name, uint64_t start_us, uint64_t dur_us) {
  ThreadRing& ring = LocalRing();
  TraceEvent event;
  event.name = name;
  event.tid = ring.tid;
  event.start_us = start_us;
  event.dur_us = dur_us;
  ring.Append(event);
}

void Trace::Clear() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
    ring->dropped = 0;
  }
}

size_t Trace::EventCount() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  size_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->events.size();
  }
  return total;
}

uint64_t Trace::DroppedCount() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  uint64_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::string Trace::ExportJson() {
  // Snapshot every ring in time order (ring order within a thread, merged
  // by start time across threads).
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    RingList& list = Rings();
    std::lock_guard<std::mutex> lock(list.mu);
    for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      if (ring->wrapped) {
        events.insert(events.end(), ring->events.begin() + ring->next,
                      ring->events.end());
        events.insert(events.end(), ring->events.begin(),
                      ring->events.begin() + ring->next);
      } else {
        events.insert(events.end(), ring->events.begin(),
                      ring->events.end());
      }
      dropped += ring->dropped;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });

  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"frappe\", "
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %llu, \"dur\": %llu}",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.dur_us));
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"dropped_events\": \"" +
         std::to_string(dropped) + "\"}}\n";
  return out;
}

Status Trace::ExportJsonToFile(const std::string& path) {
  std::string json = ExportJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file '" + path + "'");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file '" + path +
                            "'");
  }
  return Status::OK();
}

}  // namespace frappe::obs
