#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace frappe::obs {

std::atomic<bool> Trace::enabled_{false};

namespace {

// One ring per thread that ever recorded a span. The owning thread is the
// only writer; ExportJson/Clear/EventCount from other threads take the same
// per-ring mutex, so access is race-free. Rings are shared_ptr-held by both
// the thread_local handle and the global list, surviving thread exit until
// the next export picks up the remains.
struct ThreadRing {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<TraceEvent> events;  // ring storage, capacity-bounded
  size_t next = 0;                 // ring write cursor
  bool wrapped = false;
  uint64_t dropped = 0;

  void Append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < Trace::kRingCapacity) {
      events.push_back(event);
      return;
    }
    events[next] = event;
    next = (next + 1) % Trace::kRingCapacity;
    wrapped = true;
    ++dropped;
  }
};

struct RingList {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  uint32_t next_tid = 1;
};

RingList& Rings() {
  static RingList* list = new RingList();  // never destroyed
  return *list;
}

ThreadRing& LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingList& list = Rings();
    std::lock_guard<std::mutex> lock(list.mu);
    r->tid = list.next_tid++;
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Per-thread request-trace state installed by TraceScope plus the span
// nesting cursor shared with plain (no-scope) global tracing.
struct ThreadTraceState {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t current_parent = 0;  // span id new spans parent under
  SpanCollector* sink = nullptr;
  uint64_t queue_wait_us = 0;
  uint64_t span_counter = 0;  // feeds NextSpanId
};

thread_local ThreadTraceState tls_trace;

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

// Parses exactly `width` lowercase hex chars; false on any other byte.
bool ParseHexFixed(std::string_view s, size_t width, uint64_t* out) {
  if (s.size() < width) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    int n = HexNibble(s[i]);
    if (n < 0) return false;
    v = (v << 4) | static_cast<uint64_t>(n);
  }
  *out = v;
  return true;
}

void AppendHex(std::string* out, uint64_t v, size_t width) {
  static const char kHex[] = "0123456789abcdef";
  for (size_t i = 0; i < width; ++i) {
    out->push_back(kHex[(v >> ((width - 1 - i) * 4)) & 0xf]);
  }
}

}  // namespace

std::optional<TraceContext> ParseTraceparent(std::string_view header) {
  // "00-<32 hex>-<16 hex>-<2 hex>": 55 chars exactly.
  if (header.size() != 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return std::nullopt;
  }
  uint64_t version = 0;
  if (!ParseHexFixed(header.substr(0, 2), 2, &version)) return std::nullopt;
  if (version == 0xff) return std::nullopt;
  TraceContext ctx;
  if (!ParseHexFixed(header.substr(3, 16), 16, &ctx.trace_hi)) {
    return std::nullopt;
  }
  if (!ParseHexFixed(header.substr(19, 16), 16, &ctx.trace_lo)) {
    return std::nullopt;
  }
  if (!ParseHexFixed(header.substr(36, 16), 16, &ctx.span_id)) {
    return std::nullopt;
  }
  uint64_t flags = 0;
  if (!ParseHexFixed(header.substr(53, 2), 2, &flags)) return std::nullopt;
  if (!ctx.valid() || ctx.span_id == 0) return std::nullopt;
  return ctx;
}

std::string FormatTraceparent(const TraceContext& ctx) {
  std::string out = "00-";
  AppendHex(&out, ctx.trace_hi, 16);
  AppendHex(&out, ctx.trace_lo, 16);
  out.push_back('-');
  AppendHex(&out, ctx.span_id, 16);
  out += "-01";
  return out;
}

std::string TraceIdHex(uint64_t trace_hi, uint64_t trace_lo) {
  std::string out;
  out.reserve(32);
  AppendHex(&out, trace_hi, 16);
  AppendHex(&out, trace_lo, 16);
  return out;
}

std::string SpanIdHex(uint64_t span_id) {
  std::string out;
  out.reserve(16);
  AppendHex(&out, span_id, 16);
  return out;
}

bool ParseTraceIdHex(std::string_view hex, uint64_t* hi, uint64_t* lo) {
  if (hex.size() != 32) return false;
  std::string lower(hex);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'F') c = static_cast<char>(c - 'A' + 'a');
  }
  return ParseHexFixed(std::string_view(lower).substr(0, 16), 16, hi) &&
         ParseHexFixed(std::string_view(lower).substr(16, 16), 16, lo);
}

TraceContext GenerateTraceContext() {
  static std::atomic<uint64_t> counter{[] {
    auto nanos = std::chrono::steady_clock::now().time_since_epoch().count();
    static int anchor = 0;
    return static_cast<uint64_t>(nanos) ^
           Mix64(reinterpret_cast<uintptr_t>(&anchor));
  }()};
  uint64_t base = counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_hi = Mix64(base);
  ctx.trace_lo = Mix64(base + 0x9e3779b97f4a7c15ULL);
  if (ctx.trace_hi == 0) ctx.trace_hi = 1;
  if (ctx.trace_lo == 0) ctx.trace_lo = 1;
  ctx.span_id = 0;
  return ctx;
}

uint64_t Trace::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

bool Trace::HasRequestContext() { return tls_trace.sink != nullptr; }

TraceContext Trace::CurrentContext() {
  TraceContext ctx;
  ctx.trace_hi = tls_trace.trace_hi;
  ctx.trace_lo = tls_trace.trace_lo;
  ctx.span_id = tls_trace.current_parent;
  return ctx;
}

uint64_t Trace::CurrentQueueWaitUs() { return tls_trace.queue_wait_us; }

SpanCollector* Trace::CurrentSink() { return tls_trace.sink; }

uint64_t Trace::NextSpanId() {
  // Thread tag in the top 24 bits, local counter below: unique and nonzero
  // (tids start at 1) without any shared-state contention.
  uint32_t tid = LocalRing().tid;
  uint64_t counter = ++tls_trace.span_counter;
  return (static_cast<uint64_t>(tid) << 40) | (counter & 0xffffffffffULL);
}

uint64_t Trace::PushSpan(uint64_t span_id) {
  uint64_t prev = tls_trace.current_parent;
  tls_trace.current_parent = span_id;
  return prev;
}

void Trace::PopSpan(uint64_t previous_span_id) {
  tls_trace.current_parent = previous_span_id;
}

void Trace::RecordSpan(const char* name, uint64_t span_id,
                       uint64_t parent_id, uint64_t start_us,
                       uint64_t dur_us) {
  ThreadRing& ring = LocalRing();
  if (enabled_.load(std::memory_order_relaxed)) {
    TraceEvent event;
    event.name = name;
    event.tid = ring.tid;
    event.start_us = start_us;
    event.dur_us = dur_us;
    event.trace_hi = tls_trace.trace_hi;
    event.trace_lo = tls_trace.trace_lo;
    event.span_id = span_id;
    event.parent_id = parent_id;
    ring.Append(event);
  }
  if (tls_trace.sink != nullptr) {
    CollectedSpan span;
    span.name = name;
    span.tid = ring.tid;
    span.span_id = span_id;
    span.parent_id = parent_id;
    span.start_us = start_us;
    span.dur_us = dur_us;
    tls_trace.sink->Add(span);
  }
}

TraceScope::TraceScope(const TraceContext& ctx, SpanCollector* sink,
                       uint64_t queue_wait_us) {
  saved_ctx_.trace_hi = tls_trace.trace_hi;
  saved_ctx_.trace_lo = tls_trace.trace_lo;
  saved_ctx_.span_id = tls_trace.current_parent;
  saved_sink_ = tls_trace.sink;
  saved_queue_wait_us_ = tls_trace.queue_wait_us;
  tls_trace.trace_hi = ctx.trace_hi;
  tls_trace.trace_lo = ctx.trace_lo;
  tls_trace.current_parent = ctx.span_id;
  tls_trace.sink = sink;
  tls_trace.queue_wait_us = queue_wait_us;
}

TraceScope::~TraceScope() {
  tls_trace.trace_hi = saved_ctx_.trace_hi;
  tls_trace.trace_lo = saved_ctx_.trace_lo;
  tls_trace.current_parent = saved_ctx_.span_id;
  tls_trace.sink = saved_sink_;
  tls_trace.queue_wait_us = saved_queue_wait_us_;
}

void Trace::Clear() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
    ring->dropped = 0;
  }
}

size_t Trace::EventCount() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  size_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->events.size();
  }
  return total;
}

uint64_t Trace::DroppedCount() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> lock(list.mu);
  uint64_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::string Trace::ExportJson() {
  // Snapshot every ring in time order (ring order within a thread, merged
  // by start time across threads).
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    RingList& list = Rings();
    std::lock_guard<std::mutex> lock(list.mu);
    for (const std::shared_ptr<ThreadRing>& ring : list.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      if (ring->wrapped) {
        events.insert(events.end(), ring->events.begin() + ring->next,
                      ring->events.end());
        events.insert(events.end(), ring->events.begin(),
                      ring->events.begin() + ring->next);
      } else {
        events.insert(events.end(), ring->events.begin(),
                      ring->events.end());
      }
      dropped += ring->dropped;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });

  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"frappe\", "
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %llu, \"dur\": %llu",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.dur_us));
    out += buf;
    if (e.span_id != 0) {
      out += ", \"args\": {";
      if ((e.trace_hi | e.trace_lo) != 0) {
        out += "\"trace_id\": \"" + TraceIdHex(e.trace_hi, e.trace_lo) +
               "\", ";
      }
      out += "\"span_id\": \"" + SpanIdHex(e.span_id) +
             "\", \"parent_id\": \"" + SpanIdHex(e.parent_id) + "\"}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"dropped_events\": \"" +
         std::to_string(dropped) + "\"}}\n";
  return out;
}

Status Trace::ExportJsonToFile(const std::string& path) {
  std::string json = ExportJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file '" + path + "'");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file '" + path +
                            "'");
  }
  return Status::OK();
}

}  // namespace frappe::obs
