#ifndef FRAPPE_OBS_READINESS_H_
#define FRAPPE_OBS_READINESS_H_

#include <mutex>
#include <string>

namespace frappe::obs {

// Process-wide readiness state backing the /readyz endpoint — the split
// between liveness (/healthz: the process is up) and readiness (/readyz:
// the process should receive traffic).
//
// Three independent conditions, reported worst-first:
//   draining    the query server is shutting down (503 — stop routing)
//   overloaded  the admission controller is shedding (503 — back off)
//   degraded    serving, but impaired: e.g. the snapshot loaded via a
//               fallback generation (200 — traffic ok, operator should look)
//
// Writers are the owning binary (degraded, at startup) and the query
// server's admission controller (draining/overloaded, live). Readers are
// the /readyz handlers on both the stats server and the query server.
class Readiness {
 public:
  enum class State { kReady = 0, kDegraded, kOverloaded, kDraining };

  static Readiness& Global();

  // Sticky until cleared: a fallback-generation load stays visible.
  void SetDegraded(std::string reason);
  void ClearDegraded();

  void SetOverloaded(bool on, std::string reason = "shedding load");
  void SetDraining(bool on, std::string reason = "draining");

  // Worst state wins: draining > overloaded > degraded > ready.
  State state(std::string* reason = nullptr) const;

  static const char* Name(State state);

  // {"state": "...", "reason": ...} with reason null when ready.
  std::string Json() const;
  // Load-balancer semantics: ready/degraded serve (200), overloaded and
  // draining should be taken out of rotation (503).
  int HttpCode() const;

  // Clears every condition (tests share the global instance).
  void ResetForTesting();

 private:
  Readiness() = default;

  mutable std::mutex mu_;
  bool draining_ = false;
  bool overloaded_ = false;
  bool degraded_ = false;
  std::string draining_reason_;
  std::string overloaded_reason_;
  std::string degraded_reason_;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_READINESS_H_
