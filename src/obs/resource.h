// Per-query resource attribution: thread-CPU time, allocation count/bytes,
// live/peak heap bytes, and bytes scanned, aggregated across every thread a
// query touches (the session thread plus analytics pool lanes).
//
// Model (mirrors trace.h): a query installs a ResourceScope around its whole
// lifetime, which publishes a ResourceTracker through a thread-local slot.
// The global operator new/delete replacements (resource.cc) consult that slot
// on every allocation — one TLS load and a null check when no query is being
// tracked. When one is, the hook accumulates into plain (non-atomic)
// thread-local delta counters and only folds them into the tracker's atomics
// when the thread's live-byte delta crosses a flush threshold or its scope
// closes — per-event atomics on a shared tracker made multi-lane queries pay
// cache-line ping-pong on every allocation. The threshold shrinks to
// budget/4 when a memory budget is set, so enforcement stays timely. Pool
// lanes attach to the coordinator's tracker with a ResourceLaneScope so
// their CPU time and allocations land on the same query.
//
// The tracker also carries the per-query memory budget (FRAPPE_QUERY_MEM_BYTES):
// the executor polls OverBudget() on its 1024-step cadence and fails the
// query with kResourceExhausted instead of letting it OOM the process.

#ifndef FRAPPE_OBS_RESOURCE_H_
#define FRAPPE_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>

namespace frappe {
namespace obs {

class ResourceTracker {
 public:
  ResourceTracker() = default;
  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  // --- allocation seam (called from operator new/delete) ---------------
  // Bytes are malloc_usable_size() on both sides, so frees are symmetric
  // with allocations even when the allocator rounds sizes up.
  void OnAlloc(uint64_t bytes) {
    alloc_count_.fetch_add(1, std::memory_order_relaxed);
    alloc_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    int64_t live = live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                                         std::memory_order_relaxed) +
                   static_cast<int64_t>(bytes);
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (live > peak && !peak_bytes_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }
  // Live bytes can go negative when a query frees memory allocated before
  // its scope opened (caches, previous results); peak_bytes() clamps at 0.
  void OnFree(uint64_t bytes) {
    freed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    live_bytes_.fetch_sub(static_cast<int64_t>(bytes),
                          std::memory_order_relaxed);
  }

  // Folds a thread's buffered deltas in at once (the allocation hook's
  // flush path). `live_peak` is the highest value the thread's buffered
  // live delta reached since its last flush — an alloc+free pair nets a
  // zero delta but still raised live in between, and the peak must see it.
  void AddAllocDeltas(uint64_t count, uint64_t alloc_bytes,
                      uint64_t freed_bytes, int64_t live_delta,
                      int64_t live_peak) {
    if (count != 0) alloc_count_.fetch_add(count, std::memory_order_relaxed);
    if (alloc_bytes != 0) {
      alloc_bytes_.fetch_add(alloc_bytes, std::memory_order_relaxed);
    }
    if (freed_bytes != 0) {
      freed_bytes_.fetch_add(freed_bytes, std::memory_order_relaxed);
    }
    int64_t base =
        live_bytes_.fetch_add(live_delta, std::memory_order_relaxed);
    int64_t grew = live_peak > live_delta ? live_peak : live_delta;
    if (grew > 0) {
      int64_t candidate = base + grew;
      int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
      while (candidate > peak &&
             !peak_bytes_.compare_exchange_weak(peak, candidate,
                                                std::memory_order_relaxed)) {
      }
    }
  }

  void AddCpuNs(uint64_t ns) {
    cpu_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddScannedBytes(uint64_t bytes) {
    scanned_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // --- budget ----------------------------------------------------------
  void set_budget_bytes(uint64_t bytes) { budget_bytes_ = bytes; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  bool OverBudget() const {
    return budget_bytes_ > 0 &&
           live_bytes_.load(std::memory_order_relaxed) >
               static_cast<int64_t>(budget_bytes_);
  }

  // --- snapshots (relaxed reads; exact once all scopes have closed) ----
  uint64_t cpu_us() const {
    return cpu_ns_.load(std::memory_order_relaxed) / 1000;
  }
  uint64_t alloc_count() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }
  uint64_t alloc_bytes() const {
    return alloc_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t freed_bytes() const {
    return freed_bytes_.load(std::memory_order_relaxed);
  }
  int64_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    return peak > 0 ? static_cast<uint64_t>(peak) : 0;
  }
  uint64_t scanned_bytes() const {
    return scanned_bytes_.load(std::memory_order_relaxed);
  }

  // The tracker installed on the calling thread, or nullptr.
  static ResourceTracker* Current();

  // Process-wide kill switch, checked at scope install (not per allocation):
  // with accounting off a ResourceScope is inert and the allocation hook
  // stays on its one-TLS-load fast path. Defaults to enabled.
  static void SetEnabled(bool enabled);
  static bool Enabled();

 private:
  std::atomic<uint64_t> cpu_ns_{0};
  std::atomic<uint64_t> alloc_count_{0};
  std::atomic<uint64_t> alloc_bytes_{0};
  std::atomic<uint64_t> freed_bytes_{0};
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<uint64_t> scanned_bytes_{0};
  uint64_t budget_bytes_ = 0;  // 0 = unlimited; set before the scope opens
};

// RAII install of a tracker on the current thread for the life of a query.
// Captures CLOCK_THREAD_CPUTIME_ID at open and folds the delta into the
// tracker at close (or at SyncCpu(), for reading totals mid-scope). Inert
// when accounting is disabled or another tracker is already installed.
class ResourceScope {
 public:
  explicit ResourceScope(ResourceTracker* tracker);
  ~ResourceScope();
  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

  // Flushes this thread's CPU delta so tracker reads are current, and
  // re-bases the clock so the remainder is not double counted at close.
  void SyncCpu();
  bool active() const { return active_; }

 private:
  ResourceTracker* tracker_ = nullptr;
  ResourceTracker* prev_ = nullptr;
  uint64_t cpu_base_ns_ = 0;
  bool active_ = false;
};

// Attaches a pool lane (worker thread) to the coordinating query's tracker:
// installs it in the lane thread's TLS slot and contributes the lane's
// thread-CPU delta at close. A no-op when tracker is null or the lane runs
// inline on the coordinating thread (RunLanes executes lane 0 on the caller,
// which already holds the tracker — attaching again would double count).
class ResourceLaneScope {
 public:
  explicit ResourceLaneScope(ResourceTracker* tracker);
  ~ResourceLaneScope();
  ResourceLaneScope(const ResourceLaneScope&) = delete;
  ResourceLaneScope& operator=(const ResourceLaneScope&) = delete;

 private:
  ResourceTracker* tracker_ = nullptr;
  ResourceTracker* prev_ = nullptr;
  uint64_t cpu_base_ns_ = 0;
  bool active_ = false;
};

// Current thread CPU time (CLOCK_THREAD_CPUTIME_ID), nanoseconds.
uint64_t ThreadCpuNs();

}  // namespace obs
}  // namespace frappe

#endif  // FRAPPE_OBS_RESOURCE_H_
