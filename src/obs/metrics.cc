#include "obs/metrics.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/string_util.h"

namespace frappe::obs {

size_t ShardIndex() {
  // Sequential thread numbering beats std::hash<thread::id>: consecutive
  // pool lanes land in distinct shards instead of colliding by chance.
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

size_t Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  size_t b = static_cast<size_t>(std::bit_width(value));
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 63) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << b) - 1;
}

void Histogram::RecordWithExemplar(uint64_t value, uint64_t trace_hi,
                                   uint64_t trace_lo) {
  Record(value);
  if ((trace_hi | trace_lo) == 0) return;
  uint64_t now_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  Exemplar& slot = exemplars_[BucketOf(value)];
  slot.value = value;
  slot.trace_hi = trace_hi;
  slot.trace_lo = trace_lo;
  slot.ts_us = now_us;
  has_exemplars_.store(true, std::memory_order_relaxed);
}

std::vector<Histogram::Exemplar> Histogram::SnapshotExemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return std::vector<Exemplar>(exemplars_, exemplars_ + kBuckets);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Continuous rank in [0, count]: the sample the q-quantile "lands on".
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    double in_bucket = static_cast<double>(buckets[b]);
    if (static_cast<double>(seen) + in_bucket >= target) {
      double lower = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
      double upper = static_cast<double>(BucketUpperBound(b));
      double fraction = (target - static_cast<double>(seen)) / in_bucket;
      if (fraction < 0) fraction = 0;
      return lower + fraction * (upper - lower);
    }
    seen += buckets[b];
  }
  return static_cast<double>(BucketUpperBound(kBuckets - 1));
}

uint64_t Histogram::Snapshot::PercentileUpperBound(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kBuckets - 1);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "counter " + name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge " + name + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Snap();
    out += "histogram " + name + " count=" + std::to_string(s.count) +
           " sum=" + std::to_string(s.sum) + " mean=" + Num(s.Mean()) +
           " p50=" + Num(s.Quantile(0.50)) +
           " p95=" + Num(s.Quantile(0.95)) +
           " p99=" + Num(s.Quantile(0.99)) +
           " p50<=" + std::to_string(s.PercentileUpperBound(0.50)) +
           " p99<=" + std::to_string(s.PercentileUpperBound(0.99)) + "\n";
  }
  return out;
}

std::string Registry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += std::string(first ? "" : ",") + "\n    " + JsonQuote(name) + ": " +
           std::to_string(counter->Value());
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += std::string(first ? "" : ",") + "\n    " + JsonQuote(name) + ": " +
           std::to_string(gauge->Value());
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Snap();
    out += std::string(first ? "" : ",") + "\n    " + JsonQuote(name) +
           ": {\"count\": " + std::to_string(s.count) +
           ", \"sum\": " + std::to_string(s.sum) +
           ", \"mean\": " + Num(s.Mean()) +
           ", \"p50\": " + Num(s.Quantile(0.50)) +
           ", \"p95\": " + Num(s.Quantile(0.95)) +
           ", \"p99\": " + Num(s.Quantile(0.99)) +
           ", \"p50_le\": " + std::to_string(s.PercentileUpperBound(0.50)) +
           ", \"p90_le\": " + std::to_string(s.PercentileUpperBound(0.90)) +
           ", \"p99_le\": " + std::to_string(s.PercentileUpperBound(0.99)) +
           "}";
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::vector<std::pair<std::string, uint64_t>> Registry::SnapshotCounters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> Registry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->Snap();
    if (histogram->has_exemplars()) {
      snap.exemplars = histogram->SnapshotExemplars();
    }
    out.emplace_back(name, std::move(snap));
  }
  return out;
}

void Registry::ResetForTesting() {
  // Instruments must outlive references already handed out; park them in a
  // process-lifetime graveyard instead of destroying them.
  static std::vector<std::unique_ptr<Counter>>* counter_graveyard =
      new std::vector<std::unique_ptr<Counter>>();
  static std::vector<std::unique_ptr<Gauge>>* gauge_graveyard =
      new std::vector<std::unique_ptr<Gauge>>();
  static std::vector<std::unique_ptr<Histogram>>* histogram_graveyard =
      new std::vector<std::unique_ptr<Histogram>>();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter_graveyard->push_back(std::move(counter));
  }
  for (auto& [name, gauge] : gauges_) {
    gauge_graveyard->push_back(std::move(gauge));
  }
  for (auto& [name, histogram] : histograms_) {
    histogram_graveyard->push_back(std::move(histogram));
  }
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace frappe::obs
