#include "obs/trace_store.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace frappe::obs {

namespace {

Counter& RetainedCounter() {
  static Counter& c = Registry::Global().GetCounter("tracestore.retained");
  return c;
}
Counter& EvictedCounter() {
  static Counter& c = Registry::Global().GetCounter("tracestore.evicted");
  return c;
}

}  // namespace

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();  // never destroyed
  return *store;
}

void TraceStore::Retain(StoredTrace trace) {
  if ((trace.trace_hi | trace.trace_lo) == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (StoredTrace& existing : ring_) {
    if (existing.trace_hi == trace.trace_hi &&
        existing.trace_lo == trace.trace_lo) {
      existing = std::move(trace);
      return;
    }
  }
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++evicted_;
    EvictedCounter().Add();
  }
  ring_.push_back(std::move(trace));
  RetainedCounter().Add();
}

bool TraceStore::Lookup(uint64_t trace_hi, uint64_t trace_lo,
                        StoredTrace* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StoredTrace& trace : ring_) {
    if (trace.trace_hi == trace_hi && trace.trace_lo == trace_lo) {
      *out = trace;
      return true;
    }
  }
  return false;
}

std::string TraceStore::IndexJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"retained\": " + std::to_string(ring_.size()) +
                    ", \"evicted\": " + std::to_string(evicted_) +
                    ", \"traces\": [";
  bool first = true;
  // Newest first: the most recent tail event is what an operator wants.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    const StoredTrace& t = *it;
    out += std::string(first ? "" : ",") + "\n  {\"trace_id\": \"" +
           TraceIdHex(t.trace_hi, t.trace_lo) + "\", \"reason\": " +
           JsonQuote(t.reason) + ", \"status\": " + JsonQuote(t.status) +
           ", \"fingerprint\": " + JsonQuote(t.fingerprint) +
           ", \"ts_us\": " + std::to_string(t.ts_us) + ", \"latency_ms\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", t.latency_ms);
    out += buf;
    out += ", \"spans\": " + std::to_string(t.spans.size()) + "}";
    first = false;
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string TraceStore::TraceJson(const StoredTrace& trace) {
  std::vector<CollectedSpan> spans = trace.spans;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const CollectedSpan& a, const CollectedSpan& b) {
                     return a.start_us < b.start_us;
                   });
  std::string trace_id = TraceIdHex(trace.trace_hi, trace.trace_lo);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const CollectedSpan& s = spans[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"frappe\", "
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %llu, \"dur\": %llu",
                  i == 0 ? "" : ",", s.name, s.tid,
                  static_cast<unsigned long long>(s.start_us),
                  static_cast<unsigned long long>(s.dur_us));
    out += buf;
    out += ", \"args\": {\"trace_id\": \"" + trace_id + "\", \"span_id\": \"" +
           SpanIdHex(s.span_id) + "\", \"parent_id\": \"" +
           SpanIdHex(s.parent_id) + "\"}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_id\": \"" +
         trace_id + "\", \"reason\": \"" + trace.reason +
         "\", \"status\": \"" + trace.status + "\", \"fingerprint\": \"" +
         trace.fingerprint + "\", \"latency_ms\": \"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", trace.latency_ms);
  out += buf;
  out += "\", \"dropped_spans\": \"" + std::to_string(trace.dropped_spans) +
         "\"}}\n";
  return out;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceStore::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  evicted_ = 0;
}

uint64_t TraceStore::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const StoredTrace& trace : ring_) {
    bytes += sizeof(StoredTrace);
    bytes += trace.reason.capacity() + trace.status.capacity() +
             trace.fingerprint.capacity();
    bytes += trace.spans.capacity() * sizeof(CollectedSpan);
  }
  return bytes;
}

}  // namespace frappe::obs
