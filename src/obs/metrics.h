#ifndef FRAPPE_OBS_METRICS_H_
#define FRAPPE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frappe::obs {

// Process-wide metrics for the query/analytics stack. Three instrument
// kinds — Counter, Gauge, Histogram — live in a named Registry and can be
// dumped as text or JSON.
//
// Design constraints (mirroring the analytics engine's TSan-clean rules):
//  * Recording must be lock-free and cheap enough for hot loops: counters
//    and histograms are sharded across kShards cache-line-separated slots,
//    a lane picks its shard by thread-id hash, and shards are merged only
//    on read. No mutex is ever taken on the write path.
//  * Reads (Value/Snapshot/Dump*) may race with writers; they observe a
//    consistent-enough snapshot built from relaxed atomic loads — exact
//    totals once writers quiesce, monotone approximations while they run.
//  * Instrument objects are allocated once per name and never freed, so a
//    `static Counter& c = Registry::Global().GetCounter("x");` reference
//    stays valid for the process lifetime (the idiomatic hot-path pattern;
//    the per-name mutex lookup happens once).

inline constexpr size_t kMetricShards = 16;

// Shard index for the calling thread. Stable per thread, cheap (one
// thread_local read after first use).
size_t ShardIndex();

struct alignas(64) MetricShard {
  std::atomic<uint64_t> value{0};
};

// Monotone event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const MetricShard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  MetricShard shards_[kMetricShards];
};

// Point-in-time signed value (sizes, occupancy). Not sharded: gauges are
// set, not accumulated, so a single atomic is both correct and cheap.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency/size histogram: bucket b counts samples in
// [2^(b-1), 2^b) (bucket 0 = {0}), so 48 buckets cover the full uint64
// range with power-of-two resolution — no configuration, no allocation,
// and merging shards is elementwise addition.
class Histogram {
 public:
  static constexpr size_t kBuckets = 48;

  void Record(uint64_t value) {
    Shard& s = shards_[ShardIndex()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  }

  // OpenMetrics exemplar: the most recent traced sample to land in a
  // bucket, so a /metrics p99 spike links to a concrete trace id.
  struct Exemplar {
    uint64_t value = 0;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t ts_us = 0;  // unix wall-clock micros; 0 = slot empty
  };

  // Records `value` and pins it as its bucket's exemplar. This is the
  // *cold* per-request path (one mutex); hot loops keep using Record,
  // which stays lock-free.
  void RecordWithExemplar(uint64_t value, uint64_t trace_hi,
                          uint64_t trace_lo);

  // True once any exemplar has been pinned — the exposition switches this
  // histogram from summary to bucketed-histogram-with-exemplars form.
  bool has_exemplars() const {
    return has_exemplars_.load(std::memory_order_relaxed);
  }

  // Latest exemplar per bucket (kBuckets entries; ts_us == 0 means empty).
  std::vector<Exemplar> SnapshotExemplars() const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t buckets[kBuckets] = {};
    // Filled by Registry::SnapshotHistograms when the histogram has
    // exemplars; empty otherwise.
    std::vector<Exemplar> exemplars;

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }
    // Upper bound of the bucket holding the p-quantile (p in [0,1]).
    uint64_t PercentileUpperBound(double p) const;
    // Interpolated q-quantile (q in [0,1]): finds the bucket holding the
    // q*count-th sample and interpolates linearly across that bucket's
    // value range [2^(b-1), 2^b - 1] (bucket 0 is exactly {0}). Exact for
    // single-valued buckets, deterministic everywhere — regression tests
    // pin the values (tests/obs/metrics_test.cc).
    double Quantile(double q) const;
  };

  // Merges every shard. May race with concurrent Record calls (sees a
  // monotone approximation); exact once writers quiesce.
  Snapshot Snap() const;

  // Convenience: Snap().Quantile(q). Prefer taking one Snapshot when
  // reading several quantiles.
  double Quantile(double q) const { return Snap().Quantile(q); }

  static size_t BucketOf(uint64_t value);
  // Inclusive upper bound of bucket b's value range.
  static uint64_t BucketUpperBound(size_t b);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Shard shards_[kMetricShards];

  mutable std::mutex exemplar_mu_;
  Exemplar exemplars_[kBuckets];
  std::atomic<bool> has_exemplars_{false};
};

// Named instrument store. Get* interns the instrument on first use and
// returns a stable reference; names are conventionally dot-separated
// (`query.latency_us`, `analytics.bfs.levels` — see DESIGN.md for the
// full table).
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // One line per instrument, sorted by name:
  //   counter query.count 42
  //   histogram query.latency_us count=42 sum=1234 mean=29.4 p50<=32 p99<=128
  std::string DumpText() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  //  mean, p50, p95, p99, p50_le, p90_le, p99_le}}}
  std::string DumpJson() const;

  // Point-in-time copies for exporters (the /metrics Prometheus
  // exposition), sorted by name. Values are the usual merged-shard reads:
  // exact once writers quiesce.
  std::vector<std::pair<std::string, uint64_t>> SnapshotCounters() const;
  std::vector<std::pair<std::string, int64_t>> SnapshotGauges() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> SnapshotHistograms()
      const;

  // Zeroes nothing — instruments are process-lifetime — but forgets all
  // names so tests start from an empty registry. References handed out
  // earlier keep working (the instruments leak deliberately).
  void ResetForTesting();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_METRICS_H_
