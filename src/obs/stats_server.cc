#include "obs/stats_server.h"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/string_util.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "obs/readiness.h"
#include "obs/trace.h"
#include "obs/trace_store.h"

namespace frappe::obs {

namespace {

std::mutex& StorageProviderMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::function<StatsServer::StorageSections()>& StorageProviderRef() {
  static auto* fn = new std::function<StatsServer::StorageSections()>();
  return *fn;
}

// Copies the provider under the lock, invokes it outside (the provider may
// walk a graph store; holding the registration lock that long is rude).
StatsServer::StorageSections QueryStorageSections(bool* registered) {
  std::function<StatsServer::StorageSections()> fn;
  {
    std::lock_guard<std::mutex> lock(StorageProviderMutex());
    fn = StorageProviderRef();
  }
  *registered = static_cast<bool>(fn);
  return fn ? fn() : StatsServer::StorageSections{};
}

std::mutex& CatalogProviderMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::function<std::string()>& CatalogProviderRef() {
  static auto* fn = new std::function<std::string()>();
  return *fn;
}

// Same copy-then-invoke discipline as QueryStorageSections: serializing a
// stats catalog to JSON is not free, so it runs outside the lock. Empty
// means "no provider or no catalog built yet".
std::string QueryCatalogJson() {
  std::function<std::string()> fn;
  {
    std::lock_guard<std::mutex> lock(CatalogProviderMutex());
    fn = CatalogProviderRef();
  }
  return fn ? fn() : std::string();
}

// FRAPPE_MISESTIMATE_QERROR rendered as a JSON value ("null" when unset
// or unparsable). Read per call, like the slow-query threshold.
std::string MisestimateThresholdJson() {
  const char* env = std::getenv("FRAPPE_MISESTIMATE_QERROR");
  if (env == nullptr || *env == '\0') return "null";
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || v <= 0.0) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// "query.latency_us" -> "frappe_query_latency_us" (Prometheus name rules:
// [a-zA-Z_:][a-zA-Z0-9_:]*).
std::string PromName(std::string_view name) {
  std::string out = "frappe_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string ResolveBuildSha(std::string_view from_options) {
  if (!from_options.empty()) return std::string(from_options);
  if (const char* env = std::getenv("FRAPPE_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
#ifdef FRAPPE_GIT_SHA_DEFAULT
  return FRAPPE_GIT_SHA_DEFAULT;
#else
  return "unknown";
#endif
}

// The shared HTTP response helpers live in obs/http_listener.h; local
// aliases keep the endpoint code below readable.
HttpResponse Ok(std::string_view content_type, std::string body) {
  HttpResponse r;
  r.content_type = std::string(content_type);
  r.body = std::move(body);
  return r;
}

// /debug/queryz body: the active-query registry dump plus the front-door
// pressure section — queue depth and in-flight bytes (the admission
// gauges) and the queue-wait histogram, so "why is my query slow" and
// "is the server backed up" are answerable from one endpoint.
std::string QueryzJson() {
  std::string out = QueryRegistry::Global().DumpJson();
  // DumpJson ends with "}\n"; splice the server section in before the
  // closing brace.
  if (out.size() >= 2 && out[out.size() - 2] == '}') {
    out.resize(out.size() - 2);
  }
  Registry& registry = Registry::Global();
  Histogram::Snapshot wait =
      registry.GetHistogram("server.queue_wait_us").Snap();
  out += ",\n  \"server\": {\"queue_depth\": " +
         std::to_string(registry.GetGauge("server.queue_depth").Value());
  out += ", \"inflight_bytes\": " +
         std::to_string(registry.GetGauge("server.inflight_bytes").Value());
  out += ", \"inflight_bytes_hw\": " +
         std::to_string(
             registry.GetGauge("server.inflight_bytes_hw").Value());
  out += ", \"queue_wait_us\": {\"count\": " + std::to_string(wait.count);
  out += ", \"mean\": " + Num(wait.Mean());
  out += ", \"p50\": " + Num(wait.Quantile(0.5));
  out += ", \"p99\": " + Num(wait.Quantile(0.99));
  out += "}}\n}\n";
  return out;
}

// Current resident set from /proc/self/statm (field 2, pages). Linux
// only; 0 when the file is unreadable.
uint64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  int fields = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  return resident_pages * static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

// Lifetime peak RSS (getrusage reports kilobytes on Linux).
uint64_t PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// The per-query memory budget in force (FRAPPE_QUERY_MEM_BYTES, read per
// call like every other env knob; 0 = unlimited). The query layer reads
// the same variable when installing a query's ResourceTracker.
uint64_t QueryMemBudgetBytes() {
  const char* env = std::getenv("FRAPPE_QUERY_MEM_BYTES");
  if (env == nullptr || *env == '\0') return 0;
  int64_t v = 0;
  if (!ParseInt64(env, &v) || v < 0) return 0;
  return static_cast<uint64_t>(v);
}

}  // namespace

std::string StatsServer::MetricsText(std::string_view build_sha,
                                     double uptime_seconds) {
  Registry& registry = Registry::Global();
  std::string out;

  out += "# TYPE frappe_build_info gauge\nfrappe_build_info{sha=\"" +
         JsonEscape(build_sha) + "\"} 1\n";
  out += "# TYPE frappe_uptime_seconds gauge\nfrappe_uptime_seconds " +
         Num(uptime_seconds) + "\n";

  for (const auto& [name, value] : registry.SnapshotCounters()) {
    std::string prom = PromName(name);
    if (!EndsWith(prom, "_total")) prom += "_total";
    out += "# TYPE " + prom + " counter\n" + prom + " " +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : registry.SnapshotGauges()) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n" + prom + " " +
           std::to_string(value) + "\n";
  }
  // Histograms: plain ones export as summaries (quantiles interpolated
  // from the pow2 buckets); histograms that have pinned exemplars (the
  // per-request latency family) export in bucketed form so each bucket can
  // carry its OpenMetrics exemplar — `# {trace_id="..."} value ts` — the
  // link from a p99 spike on a dashboard to a retained trace.
  for (const auto& [name, snap] : registry.SnapshotHistograms()) {
    std::string prom = PromName(name);
    if (snap.exemplars.empty()) {
      out += "# TYPE " + prom + " summary\n";
      for (double q : {0.5, 0.9, 0.95, 0.99}) {
        out += prom + "{quantile=\"" + Num(q) + "\"} " +
               Num(snap.Quantile(q)) + "\n";
      }
      out += prom + "_sum " + std::to_string(snap.sum) + "\n";
      out += prom + "_count " + std::to_string(snap.count) + "\n";
      continue;
    }
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      cumulative += snap.buckets[b];
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative);
      const Histogram::Exemplar& ex = snap.exemplars[b];
      if (ex.ts_us != 0) {
        out += " # {trace_id=\"" + TraceIdHex(ex.trace_hi, ex.trace_lo) +
               "\"} " + std::to_string(ex.value) + " " +
               Num(static_cast<double>(ex.ts_us) / 1e6);
      }
      out += "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
           "\n";
    out += prom + "_sum " + std::to_string(snap.sum) + "\n";
    out += prom + "_count " + std::to_string(snap.count) + "\n";
  }

  const QueryLog& qlog = QueryLog::Global();
  out += "# TYPE frappe_qlog_written_total counter\n"
         "frappe_qlog_written_total " + std::to_string(qlog.written()) + "\n";
  out += "# TYPE frappe_qlog_dropped_total counter\n"
         "frappe_qlog_dropped_total " + std::to_string(qlog.dropped()) + "\n";
  out += "# TYPE frappe_qlog_rotations_total counter\n"
         "frappe_qlog_rotations_total " + std::to_string(qlog.rotations()) +
         "\n";
  out += "# TYPE frappe_query_fingerprints gauge\n"
         "frappe_query_fingerprints " +
         std::to_string(QueryStats::Global().size()) + "\n";
  out += "# TYPE frappe_active_queries gauge\n"
         "frappe_active_queries " +
         std::to_string(QueryRegistry::Global().size()) + "\n";
  // Table 4 storage breakdown, re-queried per scrape so Prometheus sees
  // what /debug/storagez sees.
  bool have_storage = false;
  StatsServer::StorageSections sections = QueryStorageSections(&have_storage);
  if (have_storage) {
    out += "# TYPE frappe_storage_bytes gauge\n";
    for (const auto& [section, bytes] : sections) {
      out += "frappe_storage_bytes{section=\"" + JsonEscape(section) +
             "\"} " + std::to_string(bytes) + "\n";
    }
  }
  return out;
}

std::string StatsServer::StorageJson() {
  bool have_storage = false;
  StorageSections sections = QueryStorageSections(&have_storage);
  if (!have_storage) return "";
  uint64_t total = 0;
  std::string out = "{\n  \"sections\": {";
  bool first = true;
  for (const auto& [section, bytes] : sections) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(section) + ": " + std::to_string(bytes);
    total += bytes;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"total\": " + std::to_string(total) + "\n}\n";
  return out;
}

std::string StatsServer::MemzJson() {
  // Subsystem sections: the storage provider's breakdown (its own "total"
  // dropped — /debug/memz computes one sum over everything) plus the
  // obs-side rings that grow with traffic rather than with the graph.
  bool have_storage = false;
  StorageSections sections = QueryStorageSections(&have_storage);
  std::string out = "{\n  \"rss_bytes\": " + std::to_string(CurrentRssBytes());
  out += ",\n  \"peak_rss_bytes\": " + std::to_string(PeakRssBytes());
  out += ",\n  \"query_mem_budget_bytes\": " +
         std::to_string(QueryMemBudgetBytes());
  out += ",\n  \"sections\": {";
  uint64_t total = 0;
  bool first = true;
  auto emit = [&](const std::string& name, uint64_t bytes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonQuote(name) + ": " + std::to_string(bytes);
    total += bytes;
  };
  if (have_storage) {
    for (const auto& [section, bytes] : sections) {
      if (section == "total") continue;
      emit(section, bytes);
    }
  }
  emit("trace_store", TraceStore::Global().ApproxBytes());
  emit("query_log_ring", QueryLog::Global().ApproxRingBytes());
  emit("query_stats", QueryStats::Global().ApproxBytes());
  out += first ? "},\n" : "\n  },\n";
  out += "  \"total\": " + std::to_string(total) + "\n}\n";
  return out;
}

void StatsServer::SetStorageStatsProvider(
    std::function<StorageSections()> fn) {
  std::lock_guard<std::mutex> lock(StorageProviderMutex());
  StorageProviderRef() = std::move(fn);
}

void StatsServer::SetCatalogStatsProvider(std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(CatalogProviderMutex());
  CatalogProviderRef() = std::move(fn);
}

std::string StatsServer::StatzJson() {
  std::string catalog = QueryCatalogJson();
  std::string out = "{\n  \"catalog\": ";
  out += catalog.empty() ? "null" : catalog;
  out += ",\n  \"misestimate_threshold\": " + MisestimateThresholdJson() +
         ",\n  \"worst_fingerprints\": " +
         QueryStats::Global().DumpJson(/*top_n=*/20,
                                       QueryStats::Order::kWorstQError) +
         ",\n  \"misestimates\": " + MisestimateRing::Global().DumpJson() +
         "\n}\n";
  return out;
}

std::string StatsServer::StatsJson(std::string_view build_sha,
                                   double uptime_seconds) {
  const QueryLog& qlog = QueryLog::Global();
  std::string out = "{\n  \"build_sha\": " + JsonQuote(build_sha) +
                    ",\n  \"uptime_seconds\": " + Num(uptime_seconds) +
                    ",\n  \"fingerprints\": " +
                    QueryStats::Global().DumpJson(/*top_n=*/50) +
                    ",\n  \"slow_queries\": " +
                    SlowQueryRing::Global().DumpJson() +
                    ",\n  \"misestimates\": " +
                    MisestimateRing::Global().DumpJson() +
                    ",\n  \"query_log\": {\"written\": " +
                    std::to_string(qlog.written()) +
                    ", \"dropped\": " + std::to_string(qlog.dropped()) +
                    ", \"rotations\": " + std::to_string(qlog.rotations()) +
                    "}\n}\n";
  return out;
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start(Options options) {
  // `new`: the constructor is private.
  std::unique_ptr<StatsServer> server(new StatsServer());
  server->build_sha_ = ResolveBuildSha(options.build_sha);
  server->started_ = std::chrono::steady_clock::now();

  HttpListener::Options listener_options;
  listener_options.port = options.port;
  listener_options.bind_address = options.bind_address;
  listener_options.socket_timeout_ms = options.socket_timeout_ms;
  // Served sequentially on the accept thread: responses are small and the
  // consumer is a scraper, not user traffic.
  FRAPPE_ASSIGN_OR_RETURN(
      server->listener_,
      HttpListener::Start(std::move(listener_options),
                          [s = server.get()](HttpConnection conn) {
                            conn.Respond(s->BuildResponse(conn.request()));
                          }));
  return server;
}

std::unique_ptr<StatsServer> StatsServer::MaybeStartFromEnv() {
  const char* env = std::getenv("FRAPPE_STATS_PORT");
  if (env == nullptr || *env == '\0') return nullptr;
  int64_t port = 0;
  if (!ParseInt64(env, &port) || port < 0 || port > 65535) {
    LogWarn("statsz", std::string("bad FRAPPE_STATS_PORT '") + env +
                          "'; stats server disabled");
    return nullptr;
  }
  Options options;
  options.port = static_cast<uint16_t>(port);
  Result<std::unique_ptr<StatsServer>> server = Start(std::move(options));
  if (!server.ok()) {
    LogWarn("statsz", "stats server failed to start: " +
                          server.status().ToString());
    return nullptr;
  }
  LogInfo("statsz",
          "stats server on http://127.0.0.1:" +
              std::to_string((*server)->port()) +
              " (/metrics /stats /healthz /readyz /debug/queryz "
              "/debug/storagez /debug/statz /debug/logz /debug/tracez "
              "/debug/cancel /debug/memz /debug/profilez)");
  return std::move(*server);
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  if (listener_) listener_->Stop();
}

double StatsServer::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

HttpResponse StatsServer::BuildResponse(const HttpRequest& request) const {
  const std::string& method = request.method;
  const std::string& target = request.target;
  const std::string& params = request.params;
  if (method != "GET" && method != "POST") {
    return HttpError(405, "Method Not Allowed",
                     "method not allowed; use GET (POST for "
                     "/debug/cancel)");
  }
  if (target == "/healthz") {
    return Ok("text/plain", "ok\n");
  }
  if (target == "/readyz") {
    // Liveness vs readiness split: /healthz says the process is up,
    // /readyz says whether it should receive traffic (draining and
    // overloaded answer 503 so a balancer takes it out of rotation).
    const Readiness& readiness = Readiness::Global();
    int code = readiness.HttpCode();
    return JsonResponse(code, code == 200 ? "OK" : "Service Unavailable",
                        readiness.Json());
  }
  if (target == "/metrics") {
    return Ok("text/plain; version=0.0.4",
              MetricsText(build_sha_, UptimeSeconds()));
  }
  if (target == "/stats") {
    return Ok("application/json", StatsJson(build_sha_, UptimeSeconds()));
  }
  if (target == "/debug/queryz") {
    return Ok("application/json", QueryzJson());
  }
  if (target == "/debug/cancel") {
    // Cancellation mutates the query's state: POST only, so an accidental
    // crawl or browser prefetch cannot kill a query.
    if (method != "POST") {
      return HttpError(405, "Method Not Allowed", "cancel requires POST");
    }
    int64_t id = 0;
    std::string_view raw = HttpQueryParam(params, "id");
    if (raw.empty() || !ParseInt64(raw, &id) || id <= 0) {
      return HttpError(400, "Bad Request", "missing or bad id parameter");
    }
    if (!QueryRegistry::Global().Cancel(static_cast<uint64_t>(id))) {
      return HttpError(404, "Not Found",
                       "no in-flight query with id " + std::to_string(id));
    }
    return Ok("application/json",
              "{\"cancelled\": " + std::to_string(id) + "}\n");
  }
  if (target == "/debug/tracez") {
    // Every form answers immediately — this endpoint never sleeps on the
    // serving thread (it used to hold it for the whole ?ms capture window,
    // starving every other scrape).
    std::string_view id_raw = HttpQueryParam(params, "trace_id");
    if (!id_raw.empty()) {
      // One retained span tree by trace id (tail-sampled: slow, errored,
      // cancelled, shed, or explicitly traced via a traceparent header).
      uint64_t hi = 0;
      uint64_t lo = 0;
      if (!ParseTraceIdHex(id_raw, &hi, &lo)) {
        return HttpError(400, "Bad Request",
                         "bad trace_id (want 32 hex chars)");
      }
      StoredTrace trace;
      if (!TraceStore::Global().Lookup(hi, lo, &trace)) {
        return HttpError(404, "Not Found",
                         "no retained trace with that id (retention "
                         "covers slow, errored, cancelled, shed and "
                         "explicitly-traced requests)");
      }
      return Ok("application/json", TraceStore::TraceJson(trace));
    }
    std::string_view raw = HttpQueryParam(params, "ms");
    if (!raw.empty()) {
      // Legacy whole-process ring view: the parameter is validated for
      // compatibility, but the export is of whatever the rings already
      // hold — enable tracing (Trace::Enable / FRAPPE_TRACE) and scrape.
      int64_t window_ms = 0;
      if (!ParseInt64(raw, &window_ms) || window_ms < 0) {
        return HttpError(400, "Bad Request", "bad ms parameter");
      }
      return Ok("application/json", Trace::ExportJson());
    }
    // No parameters: the retained-trace index.
    return Ok("application/json", TraceStore::Global().IndexJson());
  }
  if (target == "/debug/storagez") {
    std::string body = StorageJson();
    if (body.empty()) {
      return HttpError(404, "Not Found",
                       "no storage stats provider registered");
    }
    return Ok("application/json", std::move(body));
  }
  if (target == "/debug/statz") {
    // Always 200: even without a catalog provider, the misestimate view
    // (worst fingerprints + recent offenders) is worth serving.
    return Ok("application/json", StatzJson());
  }
  if (target == "/debug/logz") {
    return Ok("application/json", Log::DumpJson());
  }
  if (target == "/debug/memz") {
    return Ok("application/json", MemzJson());
  }
  if (target == "/debug/profilez") {
    Profiler& profiler = Profiler::Global();
    std::string_view action = HttpQueryParam(params, "action");
    if (!action.empty()) {
      // Non-blocking control surface: start arms the timer and returns
      // immediately, status reports progress, stop disarms and returns
      // whatever was collected.
      if (action == "start") {
        Status started = profiler.Start();
        if (!started.ok()) {
          return HttpError(409, "Conflict", started.message());
        }
        return Ok("application/json", "{\"profiling\": true}\n");
      }
      if (action == "status") {
        return Ok("application/json",
                  std::string("{\"running\": ") +
                      (profiler.running() ? "true" : "false") +
                      ", \"samples\": " +
                      std::to_string(profiler.sample_count()) +
                      ", \"dropped\": " +
                      std::to_string(profiler.dropped()) + "}\n");
      }
      if (action == "stop") {
        if (!profiler.running()) {
          return HttpError(409, "Conflict", "no capture running");
        }
        return Ok("text/plain", profiler.Stop());
      }
      return HttpError(400, "Bad Request",
                       "bad action (want start, status or stop)");
    }
    // Blocking form: capture for ?seconds=N (default 1) and answer with
    // the folded stacks. This is the one endpoint that intentionally
    // holds the serving thread — the operator asked for a timed window.
    double seconds = 1.0;
    std::string_view raw = HttpQueryParam(params, "seconds");
    if (!raw.empty()) {
      char* end = nullptr;
      std::string owned(raw);
      seconds = std::strtod(owned.c_str(), &end);
      if (end == owned.c_str() || seconds <= 0 || seconds > 60) {
        return HttpError(400, "Bad Request",
                         "bad seconds parameter (want 0 < s <= 60)");
      }
    }
    Result<std::string> folded = Profiler::Global().CaptureFor(seconds);
    if (!folded.ok()) {
      int code =
          folded.status().code() == StatusCode::kFailedPrecondition ? 409
                                                                    : 400;
      return HttpError(code, code == 409 ? "Conflict" : "Bad Request",
                       folded.status().message());
    }
    return Ok("text/plain", std::move(*folded));
  }
  return HttpError(404, "Not Found",
                   "unknown path; try /metrics /stats /healthz /readyz "
                   "/debug/queryz /debug/storagez /debug/statz "
                   "/debug/logz /debug/tracez /debug/cancel /debug/memz "
                   "/debug/profilez");
}

}  // namespace frappe::obs
