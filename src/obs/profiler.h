// In-process sampling CPU profiler with flame-graph export.
//
// A SIGPROF timer (setitimer(ITIMER_PROF)) fires against the process's
// consumed CPU time; the signal handler captures a backtrace() into a
// pre-allocated lock-free sample ring — one fetch_add to claim a slot, no
// allocation, no locks, nothing async-signal-unsafe after the first
// (pre-warmed) backtrace call. Symbolization (dladdr + demangle) happens at
// Stop(), off the signal path, and the result is emitted as folded stacks —
// one "frame;frame;frame count" line per unique stack, root first — the
// format flamegraph.pl and speedscope consume directly.
//
// Served at /debug/profilez (stats_server.cc): ?seconds=N does a blocking
// capture; ?action=start/status/stop is the non-blocking model (mirrors
// tracez). The shell's `PROFILE CPU <query>` wraps one query in a capture.

#ifndef FRAPPE_OBS_PROFILER_H_
#define FRAPPE_OBS_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace frappe {
namespace obs {

class Profiler {
 public:
  struct Options {
    int hz = 250;                  // sample frequency (of consumed CPU time)
    size_t max_samples = 1 << 15;  // ring capacity; samples beyond are dropped
  };

  // Process-wide singleton: SIGPROF and ITIMER_PROF are process-global, so
  // only one capture can be active at a time.
  static Profiler& Global();

  // Arms the timer and starts sampling. FailedPrecondition if already
  // running. (Overloads, not a default argument: an in-class
  // `= Options()` default needs the member initializers before the
  // enclosing class is complete, which gcc rejects.)
  Status Start() { return Start(Options()); }
  Status Start(const Options& options);

  // Disarms the timer, symbolizes the ring, and returns folded stacks.
  // Returns an empty string when not running.
  std::string Stop();

  // Blocking convenience: Start, sleep `seconds` of wall time, Stop.
  // FailedPrecondition if a capture is already running.
  Result<std::string> CaptureFor(double seconds) {
    return CaptureFor(seconds, Options());
  }
  Result<std::string> CaptureFor(double seconds, const Options& options);

  bool running() const;
  // Samples captured so far (live during a capture), and samples dropped
  // because the ring filled.
  uint64_t sample_count() const;
  uint64_t dropped() const;

 private:
  Profiler() = default;
  mutable std::mutex mu_;  // serializes Start/Stop/CaptureFor
};

}  // namespace obs
}  // namespace frappe

#endif  // FRAPPE_OBS_PROFILER_H_
