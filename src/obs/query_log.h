#ifndef FRAPPE_OBS_QUERY_LOG_H_
#define FRAPPE_OBS_QUERY_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace frappe::obs {

// Structured query log: one JSON object per executed query, written as
// JSON-lines so the file is greppable, tail-able, and replayable
// (examples/replay_qlog re-executes one against a snapshot;
// tools/qlog_check.py schema-validates it).
//
// The contract that matters is *the query path never blocks on I/O*:
// Record() pushes into a bounded lock-free MPMC ring (Vyukov-style
// sequence slots) and returns; a background writer drains the ring,
// serializes, and appends. A full ring drops the record and counts it
// (dropped()) — load-shedding, not backpressure. Rotation is size-based
// and atomic: when the file would exceed max_bytes it is renamed to
// "<path>.1" via common/file_io (rename + parent fsync) and a fresh file
// starts, so records are never torn mid-line and readers always see a
// complete old or new file.

// One query execution, as logged. Field names match the JSONL keys.
struct QueryLogRecord {
  int64_t ts_us = 0;        // unix epoch microseconds at completion
  uint64_t fingerprint = 0; // obs::Fingerprint64 of `query`
  std::string trace_id;     // 32-hex 128-bit trace id (always present)
  std::string query;        // normalized text (literals stripped)
  std::string raw;          // the executed text verbatim — what replay runs
  std::string status = "ok";  // "ok" or a StatusCode name
  uint64_t latency_us = 0;
  uint64_t rows = 0;
  uint64_t db_hits = 0;
  bool fast_path = false;
  // Latency attribution (the per-query Timeline): where latency_us went.
  // queue_us is 0 for queries that never crossed the server's admission
  // queue (shell, replay, tests).
  uint64_t queue_us = 0;
  uint64_t parse_us = 0;
  uint64_t plan_us = 0;
  uint64_t exec_us = 0;
  // Resource attribution (obs/resource.h): thread-CPU across all threads
  // the query touched, bytes allocated, and the live-heap high-water mark.
  uint64_t cpu_us = 0;
  uint64_t alloc_bytes = 0;
  uint64_t peak_bytes = 0;
};

// `{"ts_us":...,"fp":"0011aabb...","trace_id":"<32 hex>","query":"...",
//   "raw":"...","status":"ok","latency_us":...,"rows":...,"db_hits":...,
//   "fast_path":false,"queue_us":...,"parse_us":...,"plan_us":...,
//   "exec_us":...,"cpu_us":...,"alloc_bytes":...,"peak_bytes":...}\n`
std::string ToJsonLine(const QueryLogRecord& record);

// Parses one line written by ToJsonLine (tolerates unknown keys, enforces
// required ones). Used by the replay tool and tests.
Result<QueryLogRecord> ParseJsonLine(std::string_view line);

// Reads a whole JSONL file; fails on the first malformed line with its
// line number. Blank lines are skipped.
Result<std::vector<QueryLogRecord>> ReadQueryLogFile(const std::string& path);

class QueryLog {
 public:
  struct Options {
    std::string path;
    uint64_t max_bytes = 64ull << 20;  // rotation threshold
    size_t ring_capacity = 4096;       // rounded up to a power of two
  };

  static QueryLog& Global();

  // Opens `options.path` for append and starts the writer thread.
  // FailedPrecondition if already enabled.
  Status Enable(Options options);

  // Reads FRAPPE_QUERY_LOG (path; unset/empty -> returns false, log stays
  // off) and FRAPPE_QUERY_LOG_MAX_BYTES. True when the log was enabled.
  Result<bool> EnableFromEnv();

  // Drains the ring, flushes, joins the writer, closes the file. Safe to
  // call when not enabled.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Lock-free; drops (and counts) when the ring is full or the log is
  // disabled mid-flight.
  void Record(QueryLogRecord record);

  // Blocks until every record pushed before the call is on disk (fflush
  // included). Only meaningful once producers quiesce.
  Status Flush();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }
  uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

  // Approximate heap bytes held by the in-memory ring (slot structs; the
  // variable-length strings inside records are not walked), reported by
  // /debug/memz.
  uint64_t ApproxRingBytes();

  // Stalls the writer thread so tests can fill the ring deterministically.
  // Pausing blocks until the writer has parked (so nothing pushed after
  // the call is drained until unpause).
  void PauseWriterForTesting(bool paused);

 private:
  QueryLog() = default;

  // Bounded MPMC ring (Vyukov): each slot carries a sequence number the
  // producers/consumer use to claim it without locks.
  struct Slot {
    std::atomic<size_t> seq{0};
    QueryLogRecord record;
  };

  bool TryPush(QueryLogRecord&& record);
  bool TryPop(QueryLogRecord* out);
  bool RingEmpty() const;

  void WriterLoop();
  void WriteRecord(const QueryLogRecord& record);
  void Rotate();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> paused_ack_{false};  // the writer is parked
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> rotations_{0};

  std::vector<std::unique_ptr<Slot>> slots_;
  size_t ring_mask_ = 0;
  std::atomic<size_t> head_{0};  // producers claim here
  std::atomic<size_t> tail_{0};  // the writer consumes here

  Options options_;
  std::mutex file_mu_;         // guards the file_ pointer swap in Rotate
  std::FILE* file_ = nullptr;  // written by the writer thread only
  uint64_t file_bytes_ = 0;    // writer thread only
  std::atomic<bool> writer_idle_{false};
  std::thread writer_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::mutex lifecycle_mu_;  // serializes Enable/Disable/Flush
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_QUERY_LOG_H_
