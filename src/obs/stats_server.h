#ifndef FRAPPE_OBS_STATS_SERVER_H_
#define FRAPPE_OBS_STATS_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/http_listener.h"

namespace frappe::obs {

// Embedded, dependency-free stats endpoint: a blocking-accept POSIX-socket
// HTTP/1.0 server on a background thread, serving
//
//   /metrics  Prometheus text exposition of the metrics Registry —
//             counters as *_total, gauges, histograms as summaries with
//             interpolated quantiles — plus uptime, build info, the
//             query-log drop/write counters, and (when a storage provider
//             is registered) frappe_storage_bytes{section=...} gauges
//   /stats    JSON operator view: per-fingerprint query stats (top by
//             cumulative latency), recent slow queries, build SHA, uptime
//   /healthz  "ok" liveness probe
//   /readyz   readiness probe: 200 ready/degraded, 503 overloaded/draining,
//             JSON state + reason (obs::Readiness)
//
// plus the live-diagnostics control plane:
//
//   /debug/queryz        in-flight queries: id, fingerprint, elapsed time,
//                        live progress (steps, db-hits, rows, operator,
//                        trace id, queue wait) plus the front-door
//                        pressure section (queue depth, in-flight bytes,
//                        queue-wait histogram)
//   /debug/cancel?id=N   POST: trips query N's cancel token
//   /debug/tracez        retained-trace index (tail-sampled span trees of
//                        slow/errored/cancelled/shed/explicitly-traced
//                        requests); ?trace_id=<32 hex> serves one tree as
//                        Chrome trace-event JSON; ?ms=N exports the global
//                        span rings as-is (enable tracing first). All
//                        forms answer immediately — no capture window ever
//                        blocks the serving thread
//   /debug/storagez      per-section storage byte breakdown (Table 4)
//   /debug/statz         cardinality stats catalog (ANALYZE output) + the
//                        worst-misestimated query fingerprints
//   /debug/logz          recent structured-log entries (the in-memory ring)
//   /debug/memz          process memory attribution: RSS and peak RSS plus
//                        per-subsystem byte sections (the storage provider's
//                        sections, the retained-trace store, the query-log
//                        ring, the fingerprint stats table) and the
//                        per-query memory budget in force
//   /debug/profilez      on-demand CPU profile: ?seconds=N (default 1)
//                        blocks for the window and returns folded stacks
//                        ("frame;frame;... count" lines, flamegraph.pl
//                        input); ?action=start|status|stop drives a
//                        non-blocking capture. 409 while a capture is
//                        already running
//
// Opt-in: production binaries call MaybeStartFromEnv() and get a server
// only when FRAPPE_STATS_PORT is set. Responses are built per request from
// registry snapshots; connections are served sequentially (the responses
// are small, the consumer is a scraper, and every endpoint — including
// /debug/tracez — answers without blocking the serving thread). The
// shared HttpListener enforces SO_RCVTIMEO/SO_SNDTIMEO plus an overall
// per-request read deadline, so a stalled client cannot wedge the
// endpoint. Errors are uniform JSON bodies {"error": ..., "status": N}
// with a Content-Type, and only GET/POST are accepted. Binds 127.0.0.1 by
// default — this is an operator port, not a public one.
class StatsServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned (tests); port() tells which
    std::string bind_address = "127.0.0.1";
    std::string build_sha;  // empty = FRAPPE_GIT_SHA env / compiled default
    // Socket timeout (SO_RCVTIMEO/SO_SNDTIMEO + overall request-read
    // deadline) on every accepted connection.
    int socket_timeout_ms = 5000;
  };

  // Binds, listens, and starts the accept thread. Fails with Internal on
  // bind/listen errors (port taken, bad address).
  static Result<std::unique_ptr<StatsServer>> Start(Options options);
  static Result<std::unique_ptr<StatsServer>> Start() {
    return Start(Options());
  }

  // FRAPPE_STATS_PORT unset/empty -> nullptr (and no error); set ->
  // started server, or nullptr with a stderr diagnostic when startup
  // fails (an observability port must never take the process down).
  static std::unique_ptr<StatsServer> MaybeStartFromEnv();

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // The bound port (the kernel's pick when Options::port was 0).
  uint16_t port() const { return listener_ ? listener_->port() : 0; }

  // Stops accepting and joins the thread. Idempotent.
  void Stop();

  // The response bodies, exposed so tests and tools can validate the
  // formats without a socket in the loop.
  static std::string MetricsText(std::string_view build_sha,
                                 double uptime_seconds);
  static std::string StatsJson(std::string_view build_sha,
                               double uptime_seconds);
  static std::string StorageJson();
  static std::string StatzJson();
  // /debug/memz body: {"rss_bytes", "peak_rss_bytes",
  // "query_mem_budget_bytes", "sections": {name: bytes, ...}, "total"}.
  // Sections merge the storage provider's breakdown (minus its own
  // "total") with the obs-side rings; total is the sum of the sections.
  static std::string MemzJson();

  // Storage byte breakdown served by /debug/storagez and exported as
  // frappe_storage_bytes{section=...} gauges: ordered (section, bytes)
  // pairs, re-queried on every scrape. The server cannot know about graph
  // stores (obs sits below graph), so the owning binary registers a
  // provider; nullptr unregisters. The provider must be thread-safe.
  using StorageSections = std::vector<std::pair<std::string, uint64_t>>;
  static void SetStorageStatsProvider(std::function<StorageSections()> fn);

  // Cardinality stats catalog served inside /debug/statz, as a JSON
  // object string (StatsCatalog::ToJson). Same layering rule as the
  // storage provider: the owning binary registers it, nullptr
  // unregisters, and it must be thread-safe. An empty return means "no
  // catalog yet — run ANALYZE".
  static void SetCatalogStatsProvider(std::function<std::string()> fn);

 private:
  StatsServer() = default;

  HttpResponse BuildResponse(const HttpRequest& request) const;
  double UptimeSeconds() const;

  std::unique_ptr<HttpListener> listener_;
  std::string build_sha_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_STATS_SERVER_H_
