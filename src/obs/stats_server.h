#ifndef FRAPPE_OBS_STATS_SERVER_H_
#define FRAPPE_OBS_STATS_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/status.h"

namespace frappe::obs {

// Embedded, dependency-free stats endpoint: a blocking-accept POSIX-socket
// HTTP/1.0 server on a background thread, serving
//
//   /metrics  Prometheus text exposition of the metrics Registry —
//             counters as *_total, gauges, histograms as summaries with
//             interpolated quantiles — plus uptime, build info, and the
//             query-log drop/write counters
//   /stats    JSON operator view: per-fingerprint query stats (top by
//             cumulative latency), recent slow queries, build SHA, uptime
//   /healthz  "ok" liveness probe
//
// Opt-in: production binaries call MaybeStartFromEnv() and get a server
// only when FRAPPE_STATS_PORT is set. Responses are built per request from
// registry snapshots; connections are served sequentially (the responses
// are small and the consumer is a scraper, not user traffic). Binds
// 127.0.0.1 by default — this is an operator port, not a public one.
class StatsServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned (tests); port() tells which
    std::string bind_address = "127.0.0.1";
    std::string build_sha;  // empty = FRAPPE_GIT_SHA env / compiled default
  };

  // Binds, listens, and starts the accept thread. Fails with Internal on
  // bind/listen errors (port taken, bad address).
  static Result<std::unique_ptr<StatsServer>> Start(Options options);
  static Result<std::unique_ptr<StatsServer>> Start() {
    return Start(Options());
  }

  // FRAPPE_STATS_PORT unset/empty -> nullptr (and no error); set ->
  // started server, or nullptr with a stderr diagnostic when startup
  // fails (an observability port must never take the process down).
  static std::unique_ptr<StatsServer> MaybeStartFromEnv();

  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // The bound port (the kernel's pick when Options::port was 0).
  uint16_t port() const { return port_; }

  // Stops accepting and joins the thread. Idempotent.
  void Stop();

  // The response bodies, exposed so tests and tools can validate the
  // formats without a socket in the loop.
  static std::string MetricsText(std::string_view build_sha,
                                 double uptime_seconds);
  static std::string StatsJson(std::string_view build_sha,
                               double uptime_seconds);

 private:
  StatsServer() = default;

  void Serve();
  std::string HandleRequest(std::string_view request_line) const;
  double UptimeSeconds() const;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::string build_sha_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_STATS_SERVER_H_
