#include "obs/http_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace frappe::obs {

namespace {

using Clock = std::chrono::steady_clock;

Counter& AcceptedCounter() {
  static Counter& c = Registry::Global().GetCounter("server.http_accepted");
  return c;
}
Counter& ReadTimeoutCounter() {
  static Counter& c =
      Registry::Global().GetCounter("server.http_read_timeouts");
  return c;
}
Counter& BadRequestCounter() {
  static Counter& c =
      Registry::Global().GetCounter("server.http_bad_requests");
  return c;
}
Counter& IoFaultCounter() {
  static Counter& c = Registry::Global().GetCounter("server.http_io_faults");
  return c;
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

// Case-insensitive scan of the raw header block for `header_name`
// (lowercase). Returns the trimmed value, or empty when absent.
std::string_view FindHeaderValue(std::string_view head,
                                 std::string_view header_name) {
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    std::string_view line = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    if (name != header_name) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() &&
           (value.back() == '\r' || value.back() == ' ')) {
      value.remove_suffix(1);
    }
    return value;
  }
  return {};
}

// Case-insensitive "Content-Length" scan over the raw header block.
// Returns -1 when absent or malformed.
int64_t ParseContentLength(std::string_view head) {
  std::string_view value = FindHeaderValue(head, "content-length");
  if (value.empty()) return -1;
  int64_t n = 0;
  if (!ParseInt64(value, &n) || n < 0) return -1;
  return n;
}

// Outcome of reading one request off a socket.
enum class ReadResult {
  kOk,
  kClosed,    // peer closed / nothing arrived: drop silently
  kTimeout,   // partial request then stall: answer 408
  kTooLarge,  // head or body over the cap: answer 413
  kBad,       // unparsable request line: answer 400
  kFault,     // server.read fault fired: drop silently
};

// Reads head + body with an overall wall-clock deadline. SO_RCVTIMEO is
// set as well, but the poll() deadline is the authoritative bound: a
// client trickling one byte per timeout period still cannot exceed it.
ReadResult ReadRequest(int fd, const HttpListener::Options& options,
                       HttpRequest* out) {
  if (common::FaultInjector::Global().AnyArmed() &&
      common::FaultInjector::Global().ShouldFail("server.read")) {
    IoFaultCounter().Add();
    return ReadResult::kFault;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options.socket_timeout_ms);
  std::string data;
  char buf[2048];
  size_t head_end = std::string::npos;
  size_t head_end_len = 0;
  // Phase 1: the head, terminated by a blank line.
  while (head_end == std::string::npos) {
    if (data.size() > options.max_head_bytes) return ReadResult::kTooLarge;
    int wait = RemainingMs(deadline);
    if (wait == 0) {
      ReadTimeoutCounter().Add();
      return data.empty() ? ReadResult::kClosed : ReadResult::kTimeout;
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, wait) <= 0) {
      ReadTimeoutCounter().Add();
      return data.empty() ? ReadResult::kClosed : ReadResult::kTimeout;
    }
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return data.empty() ? ReadResult::kClosed : ReadResult::kBad;
    data.append(buf, static_cast<size_t>(n));
    if (size_t p = data.find("\r\n\r\n"); p != std::string::npos) {
      head_end = p;
      head_end_len = 4;
    } else if (size_t q = data.find("\n\n"); q != std::string::npos) {
      head_end = q;
      head_end_len = 2;
    }
  }

  std::string_view head(data.data(), head_end);
  size_t eol = head.find_first_of("\r\n");
  std::string_view request_line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return ReadResult::kBad;
  size_t sp2 = request_line.find(' ', sp1 + 1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? request_line.substr(sp1 + 1)
          : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty()) return ReadResult::kBad;

  out->method = std::string(request_line.substr(0, sp1));
  if (size_t q = target.find('?'); q != std::string_view::npos) {
    out->params = std::string(target.substr(q + 1));
    target = target.substr(0, q);
  }
  out->target = std::string(target);

  std::string_view header_block =
      head.substr(eol == std::string_view::npos ? head.size() : eol);
  out->traceparent = std::string(FindHeaderValue(header_block, "traceparent"));

  // Phase 2: the body. HTTP/1.0 POSTs carry Content-Length; without one,
  // whatever arrived with the head is the body (no further reads).
  int64_t content_length = ParseContentLength(header_block);
  out->body = data.substr(head_end + head_end_len);
  if (content_length >= 0) {
    if (static_cast<size_t>(content_length) > options.max_body_bytes) {
      return ReadResult::kTooLarge;
    }
    while (out->body.size() < static_cast<size_t>(content_length)) {
      int wait = RemainingMs(deadline);
      if (wait == 0) {
        ReadTimeoutCounter().Add();
        return ReadResult::kTimeout;
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      if (poll(&pfd, 1, wait) <= 0) {
        ReadTimeoutCounter().Add();
        return ReadResult::kTimeout;
      }
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return ReadResult::kTimeout;
      out->body.append(buf, static_cast<size_t>(n));
    }
    out->body.resize(static_cast<size_t>(content_length));
  }
  return ReadResult::kOk;
}

void SendAll(int fd, std::string_view payload) {
  size_t off = 0;
  while (off < payload.size()) {
    ssize_t n =
        send(fd, payload.data() + off, payload.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // SO_SNDTIMEO or peer gone: give up, caller closes
    off += static_cast<size_t>(n);
  }
}

}  // namespace

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.code) + " " +
                    response.reason + "\r\nContent-Type: " +
                    response.content_type + "\r\nContent-Length: " +
                    std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse TextResponse(int code, std::string_view reason,
                          std::string_view body) {
  HttpResponse r;
  r.code = code;
  r.reason = std::string(reason);
  r.content_type = "text/plain";
  r.body = std::string(body);
  return r;
}

HttpResponse JsonResponse(int code, std::string_view reason,
                          std::string body) {
  HttpResponse r;
  r.code = code;
  r.reason = std::string(reason);
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpError(int code, std::string_view reason,
                       std::string_view detail) {
  return JsonResponse(code, reason,
                      "{\"error\": " + JsonQuote(detail) +
                          ", \"status\": " + std::to_string(code) + "}\n");
}

std::string_view HttpQueryParam(std::string_view params,
                                std::string_view key) {
  size_t pos = 0;
  while (pos < params.size()) {
    size_t amp = params.find('&', pos);
    std::string_view pair = params.substr(
        pos,
        amp == std::string_view::npos ? params.size() - pos : amp - pos);
    pos = amp == std::string_view::npos ? params.size() : amp + 1;
    size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

std::string HttpFetch(uint16_t port, std::string_view method,
                      std::string_view target, std::string_view body,
                      int timeout_ms, std::string_view extra_headers) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  SetSocketTimeouts(fd, timeout_ms);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return {};
  }
  std::string request = std::string(method) + " " + std::string(target) +
                        " HTTP/1.0\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n" +
                        std::string(extra_headers) + "\r\n" +
                        std::string(body);
  SendAll(fd, request);
  std::string response;
  char buf[4096];
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait = RemainingMs(deadline);
    if (wait == 0) break;
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, wait) <= 0) break;
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF: HTTP/1.0 close delimits the response
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

int HttpStatusOf(std::string_view raw_response) {
  // "HTTP/1.0 <code> ..."
  size_t sp = raw_response.find(' ');
  if (sp == std::string_view::npos) return 0;
  int64_t code = 0;
  size_t end = raw_response.find(' ', sp + 1);
  if (end == std::string_view::npos) return 0;
  if (!ParseInt64(raw_response.substr(sp + 1, end - sp - 1), &code)) return 0;
  return static_cast<int>(code);
}

std::string_view HttpHeaderOf(std::string_view raw_response,
                              std::string_view name) {
  size_t head_end = raw_response.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    head_end = raw_response.find("\n\n");
  }
  std::string_view head = head_end == std::string_view::npos
                              ? raw_response
                              : raw_response.substr(0, head_end);
  // Skip the status line.
  size_t eol = head.find('\n');
  if (eol == std::string_view::npos) return {};
  return FindHeaderValue(head.substr(eol + 1), ToLower(name));
}

std::string_view HttpBodyOf(std::string_view raw_response) {
  if (size_t p = raw_response.find("\r\n\r\n");
      p != std::string_view::npos) {
    return raw_response.substr(p + 4);
  }
  if (size_t p = raw_response.find("\n\n"); p != std::string_view::npos) {
    return raw_response.substr(p + 2);
  }
  return {};
}

bool HttpConnection::Respond(const HttpResponse& response) {
  if (fd_ < 0) return false;
  if (common::FaultInjector::Global().AnyArmed() &&
      common::FaultInjector::Global().ShouldFail("server.write")) {
    IoFaultCounter().Add();
    Close();
    return false;
  }
  SendAll(fd_, SerializeHttpResponse(response));
  Close();
  return true;
}

void HttpConnection::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<HttpListener>> HttpListener::Start(Options options,
                                                          Handler handler) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options.bind_address);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("bind " + options.bind_address + ":" +
                                     std::to_string(options.port) + ": " +
                                     std::strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, options.backlog) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  // `new`: the constructor is private.
  std::unique_ptr<HttpListener> listener(new HttpListener());
  listener->options_ = std::move(options);
  listener->handler_ = std::move(handler);
  listener->listen_fd_ = fd;
  listener->port_ = ntohs(addr.sin_port);
  listener->thread_ = std::thread([l = listener.get()] { l->AcceptLoop(); });
  return listener;
}

HttpListener::~HttpListener() { Stop(); }

void HttpListener::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpListener::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll with a timeout so Stop() is observed promptly — close()ing a
    // blocked accept() is not reliably wakeful on all platforms.
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (common::FaultInjector::Global().AnyArmed() &&
        common::FaultInjector::Global().ShouldFail("server.accept")) {
      IoFaultCounter().Add();
      close(client);
      continue;
    }
    AcceptedCounter().Add();
    SetSocketTimeouts(client, options_.socket_timeout_ms);

    HttpRequest request;
    switch (ReadRequest(client, options_, &request)) {
      case ReadResult::kOk:
        handler_(HttpConnection(client, std::move(request)));
        break;
      case ReadResult::kTimeout:
        HttpConnection(client, {}).Respond(
            HttpError(408, "Request Timeout", "request read timed out"));
        break;
      case ReadResult::kTooLarge:
        BadRequestCounter().Add();
        HttpConnection(client, {}).Respond(HttpError(
            413, "Payload Too Large", "request head or body over limit"));
        break;
      case ReadResult::kBad:
        BadRequestCounter().Add();
        HttpConnection(client, {}).Respond(
            HttpError(400, "Bad Request", "bad request line"));
        break;
      case ReadResult::kClosed:
      case ReadResult::kFault:
        close(client);
        break;
    }
  }
}

}  // namespace frappe::obs
