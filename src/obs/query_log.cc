#include "obs/query_log.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/file_io.h"
#include "common/string_util.h"
#include "obs/fingerprint.h"
#include "obs/log.h"

namespace frappe::obs {

// ---------------------------------------------------------------------------
// JSONL (de)serialization

std::string ToJsonLine(const QueryLogRecord& record) {
  std::string out = "{\"ts_us\":" + std::to_string(record.ts_us) +
                    ",\"fp\":\"" + FingerprintHex(record.fingerprint) +
                    "\",\"trace_id\":" + JsonQuote(record.trace_id) +
                    ",\"query\":" + JsonQuote(record.query) +
                    ",\"raw\":" + JsonQuote(record.raw) +
                    ",\"status\":" + JsonQuote(record.status) +
                    ",\"latency_us\":" + std::to_string(record.latency_us) +
                    ",\"rows\":" + std::to_string(record.rows) +
                    ",\"db_hits\":" + std::to_string(record.db_hits) +
                    ",\"fast_path\":" +
                    (record.fast_path ? "true" : "false") +
                    ",\"queue_us\":" + std::to_string(record.queue_us) +
                    ",\"parse_us\":" + std::to_string(record.parse_us) +
                    ",\"plan_us\":" + std::to_string(record.plan_us) +
                    ",\"exec_us\":" + std::to_string(record.exec_us) +
                    ",\"cpu_us\":" + std::to_string(record.cpu_us) +
                    ",\"alloc_bytes\":" + std::to_string(record.alloc_bytes) +
                    ",\"peak_bytes\":" + std::to_string(record.peak_bytes) +
                    "}\n";
  return out;
}

namespace {

// Minimal parser for the flat JSON objects ToJsonLine emits. `pos` is
// advanced past whatever was consumed; errors carry the byte offset.
struct LineParser {
  std::string_view line;
  size_t pos = 0;

  void SkipWs() {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::Corruption("query log line, offset " +
                              std::to_string(pos) + ": " + what);
  }

  Status Expect(char c) {
    SkipWs();
    if (pos >= line.size() || line[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipWs();
    return pos < line.size() && line[pos] == c;
  }

  Result<std::string> ParseString() {
    FRAPPE_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos];
      if (c == '\\') {
        if (pos + 1 >= line.size()) return Fail("truncated escape");
        char e = line[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > line.size()) return Fail("truncated \\u escape");
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              char h = line[pos + static_cast<size_t>(i)];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Fail("bad \\u escape");
            }
            pos += 4;
            // The writer only \u-escapes control bytes; anything else is
            // preserved best-effort as '?'.
            out += value < 0x80 ? static_cast<char>(value) : '?';
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos;
    }
    if (pos >= line.size()) return Fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  Result<int64_t> ParseInt() {
    SkipWs();
    size_t start = pos;
    if (pos < line.size() && line[pos] == '-') ++pos;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    int64_t value = 0;
    if (!ParseInt64(line.substr(start, pos - start), &value)) {
      return Fail("expected integer");
    }
    return value;
  }
};

}  // namespace

Result<QueryLogRecord> ParseJsonLine(std::string_view line) {
  LineParser p{line};
  FRAPPE_RETURN_IF_ERROR(p.Expect('{'));
  QueryLogRecord record;
  bool saw_fp = false, saw_query = false;
  if (!p.Peek('}')) {
    while (true) {
      FRAPPE_ASSIGN_OR_RETURN(std::string key, p.ParseString());
      FRAPPE_RETURN_IF_ERROR(p.Expect(':'));
      if (key == "fp") {
        FRAPPE_ASSIGN_OR_RETURN(std::string hex, p.ParseString());
        char* end = nullptr;
        record.fingerprint = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + hex.size() || hex.empty()) {
          return p.Fail("fp is not a hex string");
        }
        saw_fp = true;
      } else if (key == "trace_id") {
        FRAPPE_ASSIGN_OR_RETURN(record.trace_id, p.ParseString());
      } else if (key == "query") {
        FRAPPE_ASSIGN_OR_RETURN(record.query, p.ParseString());
        saw_query = true;
      } else if (key == "raw") {
        FRAPPE_ASSIGN_OR_RETURN(record.raw, p.ParseString());
      } else if (key == "status") {
        FRAPPE_ASSIGN_OR_RETURN(record.status, p.ParseString());
      } else if (key == "ts_us") {
        FRAPPE_ASSIGN_OR_RETURN(record.ts_us, p.ParseInt());
      } else if (key == "latency_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.latency_us = static_cast<uint64_t>(v);
      } else if (key == "rows") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.rows = static_cast<uint64_t>(v);
      } else if (key == "db_hits") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.db_hits = static_cast<uint64_t>(v);
      } else if (key == "queue_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.queue_us = static_cast<uint64_t>(v);
      } else if (key == "parse_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.parse_us = static_cast<uint64_t>(v);
      } else if (key == "plan_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.plan_us = static_cast<uint64_t>(v);
      } else if (key == "exec_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.exec_us = static_cast<uint64_t>(v);
      } else if (key == "cpu_us") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.cpu_us = static_cast<uint64_t>(v);
      } else if (key == "alloc_bytes") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.alloc_bytes = static_cast<uint64_t>(v);
      } else if (key == "peak_bytes") {
        FRAPPE_ASSIGN_OR_RETURN(int64_t v, p.ParseInt());
        record.peak_bytes = static_cast<uint64_t>(v);
      } else if (key == "fast_path") {
        if (p.Peek('t')) {
          p.pos += 4;
          record.fast_path = true;
        } else if (p.Peek('f')) {
          p.pos += 5;
          record.fast_path = false;
        } else {
          return p.Fail("fast_path is not a bool");
        }
      } else {
        // Unknown key: skip a string or a scalar (forward compatibility).
        if (p.Peek('"')) {
          FRAPPE_RETURN_IF_ERROR(p.ParseString().status());
        } else {
          while (p.pos < p.line.size() && p.line[p.pos] != ',' &&
                 p.line[p.pos] != '}') {
            ++p.pos;
          }
        }
      }
      if (p.Peek(',')) {
        ++p.pos;
        continue;
      }
      break;
    }
  }
  FRAPPE_RETURN_IF_ERROR(p.Expect('}'));
  if (!saw_fp || !saw_query) {
    return Status::Corruption("query log line missing fp/query");
  }
  return record;
}

Result<std::vector<QueryLogRecord>> ReadQueryLogFile(const std::string& path) {
  std::string content;
  FRAPPE_RETURN_IF_ERROR(common::ReadFile(path, &content, "qlog"));
  std::vector<QueryLogRecord> out;
  size_t line_no = 0;
  for (std::string_view line : Split(content, '\n')) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    Result<QueryLogRecord> record = ParseJsonLine(line);
    if (!record.ok()) {
      return Status::Corruption(path + ":" + std::to_string(line_no) + ": " +
                                record.status().message());
    }
    out.push_back(std::move(*record));
  }
  return out;
}

// ---------------------------------------------------------------------------
// QueryLog

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();  // never destroyed
  return *log;
}

Status QueryLog::Enable(Options options) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (enabled()) {
    return Status::FailedPrecondition("query log already enabled");
  }
  if (options.path.empty()) {
    return Status::InvalidArgument("query log path is empty");
  }
  size_t capacity = 1;
  while (capacity < options.ring_capacity) capacity <<= 1;
  slots_.clear();
  slots_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->seq.store(i, std::memory_order_relaxed);
    slots_.push_back(std::move(slot));
  }
  ring_mask_ = capacity - 1;
  head_.store(0, std::memory_order_relaxed);
  tail_.store(0, std::memory_order_relaxed);

  file_ = std::fopen(options.path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("query log open " + options.path + ": " +
                            std::strerror(errno));
  }
  std::fseek(file_, 0, SEEK_END);
  long at = std::ftell(file_);
  file_bytes_ = at > 0 ? static_cast<uint64_t>(at) : 0;

  options_ = std::move(options);
  stop_.store(false, std::memory_order_relaxed);
  paused_.store(false, std::memory_order_relaxed);
  writer_idle_.store(false, std::memory_order_relaxed);
  writer_ = std::thread([this] { WriterLoop(); });
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Result<bool> QueryLog::EnableFromEnv() {
  const char* path = std::getenv("FRAPPE_QUERY_LOG");
  if (path == nullptr || *path == '\0') return false;
  Options options;
  options.path = path;
  if (const char* max = std::getenv("FRAPPE_QUERY_LOG_MAX_BYTES");
      max != nullptr && *max != '\0') {
    int64_t value = 0;
    if (ParseInt64(max, &value) && value > 0) {
      options.max_bytes = static_cast<uint64_t>(value);
    }
  }
  FRAPPE_RETURN_IF_ERROR(Enable(std::move(options)));
  return true;
}

void QueryLog::Disable() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!enabled()) return;
  // Stop intake first so the writer's final drain actually finishes.
  enabled_.store(false, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
  wake_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void QueryLog::Record(QueryLogRecord record) {
  if (!enabled()) return;
  if (!TryPush(std::move(record))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool QueryLog::TryPush(QueryLogRecord&& record) {
  size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = *slots_[pos & ring_mask_];
    size_t seq = slot.seq.load(std::memory_order_acquire);
    intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.record = std::move(record);
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool QueryLog::TryPop(QueryLogRecord* out) {
  // Single consumer (the writer thread; Disable joins it before anyone
  // else touches the ring), so a plain tail store suffices.
  size_t pos = tail_.load(std::memory_order_relaxed);
  Slot& slot = *slots_[pos & ring_mask_];
  size_t seq = slot.seq.load(std::memory_order_acquire);
  intptr_t dif =
      static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
  if (dif != 0) return false;  // empty (or producer mid-publish)
  *out = std::move(slot.record);
  slot.record = QueryLogRecord();  // release the strings
  slot.seq.store(pos + ring_mask_ + 1, std::memory_order_release);
  tail_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

bool QueryLog::RingEmpty() const {
  return tail_.load(std::memory_order_relaxed) ==
         head_.load(std::memory_order_relaxed);
}

void QueryLog::WriterLoop() {
  QueryLogRecord record;
  for (;;) {
    if (paused_.load(std::memory_order_relaxed) &&
        !stop_.load(std::memory_order_relaxed)) {
      paused_ack_.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    paused_ack_.store(false, std::memory_order_relaxed);
    bool wrote = false;
    while (TryPop(&record)) {
      writer_idle_.store(false, std::memory_order_relaxed);
      WriteRecord(record);
      wrote = true;
    }
    if (wrote) std::fflush(file_);
    writer_idle_.store(true, std::memory_order_release);
    if (stop_.load(std::memory_order_relaxed) && RingEmpty()) break;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
  std::fflush(file_);
}

void QueryLog::WriteRecord(const QueryLogRecord& record) {
  std::string line = ToJsonLine(record);
  // Rotate *before* the write that would breach the cap, so the live file
  // never exceeds max_bytes and no record is split across files.
  if (file_bytes_ > 0 && file_bytes_ + line.size() > options_.max_bytes) {
    Rotate();
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) == line.size()) {
    file_bytes_ += line.size();
    written_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryLog::Rotate() {
  std::lock_guard<std::mutex> lock(file_mu_);  // vs Flush's fflush
  std::fflush(file_);
  std::fclose(file_);
  // Atomic swap: readers of "<path>.1" see a complete old file or none.
  Status renamed =
      common::RenameFile(options_.path, options_.path + ".1", "qlog");
  if (renamed.ok()) {
    rotations_.fetch_add(1, std::memory_order_relaxed);
    file_ = std::fopen(options_.path.c_str(), "wb");
    file_bytes_ = 0;
  } else {
    // Degraded mode: keep appending past the cap rather than lose records.
    LogWarn("qlog", "query log rotation failed: " + renamed.ToString());
    file_ = std::fopen(options_.path.c_str(), "ab");
    std::fseek(file_, 0, SEEK_END);
  }
  if (file_ == nullptr) {
    // Last resort so the writer never dereferences null; records will
    // count as dropped.
    file_ = std::tmpfile();
    file_bytes_ = 0;
  }
}

Status QueryLog::Flush() {
  if (!enabled()) return Status::OK();
  wake_cv_.notify_all();
  // Wait for the writer to drain everything pushed before this call and
  // go idle; stdio locking makes the final fflush safe alongside it.
  for (int spins = 0; spins < 10000; ++spins) {
    if (RingEmpty() && writer_idle_.load(std::memory_order_acquire) &&
        !paused_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(file_mu_);
      std::fflush(file_);
      return Status::OK();
    }
    wake_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::DeadlineExceeded("query log flush timed out");
}

uint64_t QueryLog::ApproxRingBytes() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  return slots_.size() * (sizeof(Slot) + sizeof(void*));
}

void QueryLog::PauseWriterForTesting(bool paused) {
  paused_.store(paused, std::memory_order_relaxed);
  if (paused && enabled()) {
    // Wait until the writer has parked: anything pushed from here on
    // stays in the ring until unpause.
    while (!paused_ack_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace frappe::obs
