#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "common/log_hook.h"
#include "common/string_util.h"

namespace frappe::obs {
namespace {

constexpr int kThresholdUnset = -1;

struct LogState {
  std::mutex mu;
  // Fixed-capacity ring of recent entries for /debug/logz.
  std::vector<LogEntry> ring;
  size_t ring_next = 0;  // slot the next entry lands in
  uint64_t total = 0;    // entries ever appended (ring + overwritten)
  std::FILE* file = nullptr;  // FRAPPE_LOG_FILE sink, nullptr => stderr
  bool file_probed = false;
  std::function<void(const LogEntry&)> test_sink;
};

LogState& State() {
  static LogState* state = new LogState();
  return *state;
}

// kThresholdUnset until the first Threshold() call reads the env.
std::atomic<int> g_threshold{kThresholdUnset};

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("FRAPPE_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && *env != '\0' && !ParseLogLevel(env, &level)) {
    std::fprintf(stderr,
                 "level=warn component=log msg=\"ignoring FRAPPE_LOG_LEVEL: "
                 "unknown level '%s'\"\n",
                 env);
  }
  return level;
}

std::FILE* SinkLocked(LogState& state) {
  if (!state.file_probed) {
    state.file_probed = true;
    const char* path = std::getenv("FRAPPE_LOG_FILE");
    if (path != nullptr && *path != '\0') {
      state.file = std::fopen(path, "a");
      if (state.file == nullptr) {
        std::fprintf(stderr,
                     "level=warn component=log msg=\"cannot open "
                     "FRAPPE_LOG_FILE '%s'; logging to stderr\"\n",
                     path);
      }
    }
  }
  return state.file != nullptr ? state.file : stderr;
}

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Routes common-layer diagnostics (fault injector, file I/O) through the
// full pipeline. Installed by a static registrar below so any binary that
// links obs gets structured common-layer logs for free.
void CommonLayerHandler(int severity, const char* component,
                        const char* message) {
  LogLevel level = severity >= common::kLogError  ? LogLevel::kError
                   : severity == common::kLogWarn ? LogLevel::kWarn
                   : severity == common::kLogInfo ? LogLevel::kInfo
                                                  : LogLevel::kDebug;
  Log::Write(level, component, message);
}

struct HandlerRegistrar {
  HandlerRegistrar() { common::SetLogHandler(&CommonLayerHandler); }
};
HandlerRegistrar g_registrar;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower = ToLower(text);
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

LogLevel Log::Threshold() {
  int cached = g_threshold.load(std::memory_order_relaxed);
  if (cached == kThresholdUnset) {
    cached = static_cast<int>(ThresholdFromEnv());
    g_threshold.store(cached, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(cached);
}

void Log::SetThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string FormatLogLine(const LogEntry& entry) {
  std::time_t secs = static_cast<std::time_t>(entry.ts_us / 1000000);
  std::tm tm_utc = {};
  gmtime_r(&secs, &tm_utc);
  char ts[40];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%06uZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<unsigned>(entry.ts_us % 1000000));
  std::string line = "ts=";
  line += ts;
  line += " level=";
  line += LogLevelName(entry.level);
  line += " component=";
  line += entry.component;
  line += " msg=";
  line += JsonQuote(entry.message);  // quoted + escaped, key=value friendly
  return line;
}

void Log::Write(LogLevel level, const std::string& component,
                const std::string& message) {
  if (!Enabled(level)) return;
  LogEntry entry;
  entry.ts_us = NowUnixMicros();
  entry.level = level;
  entry.component = component;
  entry.message = message;
  std::string line = FormatLogLine(entry);

  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::FILE* sink = SinkLocked(state);
  std::fprintf(sink, "%s\n", line.c_str());
  if (sink != stderr) std::fflush(sink);
  if (state.ring.size() < kRingCapacity) {
    state.ring.push_back(entry);
  } else {
    state.ring[state.ring_next] = entry;
  }
  state.ring_next = (state.ring_next + 1) % kRingCapacity;
  ++state.total;
  if (state.test_sink) state.test_sink(entry);
}

std::vector<LogEntry> Log::Recent() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<LogEntry> out;
  out.reserve(state.ring.size());
  if (state.ring.size() < kRingCapacity) {
    out = state.ring;  // not yet wrapped: stored oldest-first already
  } else {
    for (size_t i = 0; i < kRingCapacity; ++i) {
      out.push_back(state.ring[(state.ring_next + i) % kRingCapacity]);
    }
  }
  return out;
}

uint64_t Log::Dropped() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.total > state.ring.size() ? state.total - state.ring.size()
                                         : 0;
}

std::string Log::DumpJson() {
  std::vector<LogEntry> entries = Recent();
  uint64_t dropped = Dropped();
  std::string out = "{\n  \"entries\": [";
  bool first = true;
  for (const LogEntry& e : entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"ts_us\": " + std::to_string(e.ts_us);
    out += ", \"level\": \"";
    out += LogLevelName(e.level);
    out += "\", \"component\": " + JsonQuote(e.component);
    out += ", \"message\": " + JsonQuote(e.message) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"dropped\": " + std::to_string(dropped) + "\n}\n";
  return out;
}

void Log::ResetForTesting() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.ring.clear();
  state.ring_next = 0;
  state.total = 0;
  state.test_sink = nullptr;
  if (state.file != nullptr) std::fclose(state.file);
  state.file = nullptr;
  state.file_probed = false;
  g_threshold.store(kThresholdUnset, std::memory_order_relaxed);
}

void Log::SetSinkForTesting(std::function<void(const LogEntry&)> sink) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.test_sink = std::move(sink);
}

}  // namespace frappe::obs
