#ifndef FRAPPE_OBS_LOG_H_
#define FRAPPE_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace frappe::obs {

// Structured, leveled logging for the server-side subsystems. One line per
// event in key=value form:
//
//   ts=2026-08-06T12:34:56.789012Z level=warn component=qlog msg="..."
//
// The sink is stderr by default, or the file named by FRAPPE_LOG_FILE
// (appended). Every emitted entry is also kept in a bounded in-memory ring
// so the stats server can serve the recent tail on /debug/logz without any
// file I/O. The threshold comes from FRAPPE_LOG_LEVEL
// (debug|info|warn|error|off, case-insensitive; default info) and can be
// overridden programmatically.
//
// Emission below the threshold is a single relaxed atomic load and a
// branch; the mutex is only taken for entries that actually pass.

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Stable lowercase name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

// Parses a level name (case-insensitive; accepts "warning" for kWarn).
// Returns false and leaves *out untouched on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* out);

struct LogEntry {
  uint64_t ts_us = 0;  // microseconds since the Unix epoch
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

class Log {
 public:
  // Entries retained for /debug/logz; older entries are overwritten.
  static constexpr size_t kRingCapacity = 256;

  // The active threshold. First call reads FRAPPE_LOG_LEVEL.
  static LogLevel Threshold();
  static void SetThreshold(LogLevel level);

  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(Threshold()) &&
           Threshold() != LogLevel::kOff;
  }

  // Emits one entry (formats, writes to the sink, appends to the ring) if
  // `level` passes the threshold.
  static void Write(LogLevel level, const std::string& component,
                    const std::string& message);

  // Snapshot of the ring, oldest first.
  static std::vector<LogEntry> Recent();
  // {"entries": [{"ts_us", "level", "component", "message"}, ...],
  //  "dropped": N}
  static std::string DumpJson();
  // Entries overwritten by ring wrap-around since the last reset.
  static uint64_t Dropped();

  // Clears the ring, drop counter, and test sink; re-reads the env
  // threshold and sink on next use.
  static void ResetForTesting();

  // Mirror every passing entry into `sink` (called under the log mutex);
  // pass nullptr to clear. The normal sink still runs.
  static void SetSinkForTesting(std::function<void(const LogEntry&)> sink);
};

// Formats `entry` as the canonical key=value line (no trailing newline).
std::string FormatLogLine(const LogEntry& entry);

// Convenience wrappers. `component` is a short subsystem tag ("qlog",
// "statsz", "snapshot", "watchdog", ...).
inline void LogDebug(const std::string& component, const std::string& msg) {
  Log::Write(LogLevel::kDebug, component, msg);
}
inline void LogInfo(const std::string& component, const std::string& msg) {
  Log::Write(LogLevel::kInfo, component, msg);
}
inline void LogWarn(const std::string& component, const std::string& msg) {
  Log::Write(LogLevel::kWarn, component, msg);
}
inline void LogError(const std::string& component, const std::string& msg) {
  Log::Write(LogLevel::kError, component, msg);
}

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_LOG_H_
