#ifndef FRAPPE_OBS_HTTP_LISTENER_H_
#define FRAPPE_OBS_HTTP_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace frappe::obs {

// Shared HTTP/1.0 plumbing for the embedded servers (the obs stats server
// and the query front door in src/server/): a POSIX listen socket with a
// background accept thread, bounded request parsing with socket timeouts,
// and uniform response serialization.
//
// Robustness contract (the reason this exists as one shared piece):
//   - every accepted socket gets SO_RCVTIMEO/SO_SNDTIMEO plus an overall
//     wall-clock deadline on reading one request, so a stalled or
//     byte-trickling client cannot wedge the accept thread;
//   - request head and body sizes are hard-capped (413 on breach);
//   - malformed requests are answered 400 and never reach the handler;
//   - the fault-injection sites `server.accept`, `server.read` and
//     `server.write` let tests drop connections, reads and responses at
//     will (the disarmed fast path is one relaxed atomic load).

// One parsed request. `target` is the path with the query string split off
// into `params` ("id=3&ms=100"). Of the request headers only `traceparent`
// is captured (the W3C trace-context header the query front door
// propagates); everything else is dropped after Content-Length is read.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string params;
  std::string traceparent;  // raw header value; empty when absent
  std::string body;
};

struct HttpResponse {
  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain";
  // Extra headers beyond Content-Type/Content-Length/Connection
  // (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

// "HTTP/1.0 <code> <reason>\r\n<headers>\r\n\r\n<body>".
std::string SerializeHttpResponse(const HttpResponse& response);

HttpResponse TextResponse(int code, std::string_view reason,
                          std::string_view body);
HttpResponse JsonResponse(int code, std::string_view reason,
                          std::string body);
// Uniform JSON error shape: {"error": <detail>, "status": <code>}.
HttpResponse HttpError(int code, std::string_view reason,
                       std::string_view detail);

// Value of `key` in a query string like "id=3&ms=100"; empty when absent.
std::string_view HttpQueryParam(std::string_view params, std::string_view key);

// Minimal blocking HTTP/1.0 client for tests and in-process load tools:
// one request per connection against 127.0.0.1:`port`. Returns the raw
// response (status line + headers + body); empty string means connect,
// send or read failure (including a server-side connection drop).
// `extra_headers` is a raw header block appended verbatim to the request
// head — each entry must be "Name: value\r\n" (e.g. a traceparent).
std::string HttpFetch(uint16_t port, std::string_view method,
                      std::string_view target, std::string_view body = {},
                      int timeout_ms = 5000,
                      std::string_view extra_headers = {});

// Value of response header `name` (case-insensitive) in a raw HttpFetch
// response; empty when absent.
std::string_view HttpHeaderOf(std::string_view raw_response,
                              std::string_view name);

// Status code of a raw HttpFetch response, or 0 when unparsable/empty.
int HttpStatusOf(std::string_view raw_response);

// Body of a raw HttpFetch response (everything after the blank line).
std::string_view HttpBodyOf(std::string_view raw_response);

// An accepted connection carrying its parsed request. Move-only; closes the
// socket on destruction, so dropping a connection (load shedding without a
// response, fault injection) is just letting it go out of scope.
class HttpConnection {
 public:
  HttpConnection() = default;
  HttpConnection(int fd, HttpRequest request)
      : fd_(fd), request_(std::move(request)) {}
  ~HttpConnection() { Close(); }
  HttpConnection(HttpConnection&& other) noexcept
      : fd_(other.fd_), request_(std::move(other.request_)) {
    other.fd_ = -1;
  }
  HttpConnection& operator=(HttpConnection&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      request_ = std::move(other.request_);
      other.fd_ = -1;
    }
    return *this;
  }
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  bool valid() const { return fd_ >= 0; }
  const HttpRequest& request() const { return request_; }

  // Serializes, sends (bounded by the socket's SO_SNDTIMEO) and closes.
  // Returns false when the send failed or the `server.write` fault fired —
  // the client sees a dropped connection either way.
  bool Respond(const HttpResponse& response);

  void Close();

 private:
  int fd_ = -1;
  HttpRequest request_;
};

class HttpListener {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned; port() tells which
    std::string bind_address = "127.0.0.1";
    int backlog = 64;
    // SO_RCVTIMEO/SO_SNDTIMEO on every accepted socket, and the overall
    // wall-clock budget for reading one full request (head + body). A
    // client that connects and stalls holds the accept thread at most this
    // long before being answered 408 (partial request) or dropped (silent).
    int socket_timeout_ms = 5000;
    size_t max_head_bytes = 8192;
    size_t max_body_bytes = 1 << 20;
  };

  // The handler runs on the accept thread with a fully-read request. It may
  // respond inline (the stats server) or move the connection into a queue
  // for a worker pool (the query server) and return immediately.
  using Handler = std::function<void(HttpConnection)>;

  // Binds, listens, and starts the accept thread. Fails with Internal on
  // bind/listen errors (port taken, bad address).
  static Result<std::unique_ptr<HttpListener>> Start(Options options,
                                                     Handler handler);

  ~HttpListener();
  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  uint16_t port() const { return port_; }

  // Stops accepting and joins the accept thread. Idempotent. Connections
  // already handed to the handler are unaffected.
  void Stop();

 private:
  HttpListener() = default;

  void AcceptLoop();

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_HTTP_LISTENER_H_
