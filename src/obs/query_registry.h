#ifndef FRAPPE_OBS_QUERY_REGISTRY_H_
#define FRAPPE_OBS_QUERY_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace frappe::obs {

// Live progress counters published by the executor on its existing
// kDeadlineCheckInterval cadence (and read by /debug/queryz and the
// stuck-query watchdog). All relaxed: the values are monotonic progress
// telemetry, not synchronization.
struct QueryProgress {
  std::atomic<uint64_t> steps{0};
  std::atomic<uint64_t> db_hits{0};
  std::atomic<uint64_t> rows{0};
  // Current plan operator, a string literal ("executor.match", ...).
  std::atomic<const char*> op{nullptr};
};

// In-flight query table. Session::Run registers an entry before executing
// and removes it (via the RAII Handle) when the query finishes on any path.
// The table itself is a small mutex-guarded map — registration is twice per
// query, not per tuple — while the hot per-step progress/cancel state lives
// in lock-free atomics inside the entry.
class QueryRegistry {
 public:
  struct Entry {
    uint64_t id = 0;
    uint64_t fingerprint = 0;
    std::string normalized;  // fingerprint-normalized text
    std::string raw;         // query as typed
    uint64_t start_unix_us = 0;
    std::chrono::steady_clock::time_point start_steady;
    // Request identity, set at registration (immutable after): the 128-bit
    // trace id and how long the query waited in the admission queue.
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t queue_wait_us = 0;
    QueryProgress progress;
    // Cancellation: `cancel_token` points at the caller-supplied token when
    // one was passed through ExecOptions, else at `own_cancel`. Cancel(id)
    // stores true through the pointer; the executor polls it.
    std::atomic<bool> own_cancel{false};
    std::atomic<bool>* cancel_token = nullptr;
    std::atomic<bool> cancel_requested{false};  // Cancel(id) was called
    std::atomic<bool> stuck_warned{false};      // watchdog warned already
  };

  // Read-only copy served by /debug/queryz and the watchdog.
  struct Snapshot {
    uint64_t id = 0;
    uint64_t fingerprint = 0;
    std::string normalized;
    std::string raw;
    uint64_t start_unix_us = 0;
    double elapsed_ms = 0;
    uint64_t steps = 0;
    uint64_t db_hits = 0;
    uint64_t rows = 0;
    const char* op = nullptr;
    bool cancel_requested = false;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t queue_wait_us = 0;
  };

  // RAII registration: unregisters on destruction. A default-constructed /
  // moved-from Handle (or one from a disabled registry) holds no entry.
  class Handle {
   public:
    Handle() = default;
    Handle(QueryRegistry* registry, std::shared_ptr<Entry> entry)
        : registry_(registry), entry_(std::move(entry)) {}
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept
        : registry_(other.registry_), entry_(std::move(other.entry_)) {
      other.registry_ = nullptr;
      other.entry_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        entry_ = std::move(other.entry_);
        other.registry_ = nullptr;
        other.entry_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    Entry* entry() const { return entry_.get(); }

   private:
    void Release();
    QueryRegistry* registry_ = nullptr;
    std::shared_ptr<Entry> entry_;
  };

  static QueryRegistry& Global();

  // Registers an in-flight query. `external_token` is the caller's cancel
  // token from ExecOptions (may be null — the entry then owns its token).
  // The trailing trace identity (trace id + admission queue wait) is
  // snapshotted into the entry for /debug/queryz. Returns an empty Handle
  // when the registry is disabled.
  Handle Register(uint64_t fingerprint, std::string normalized,
                  std::string raw, std::atomic<bool>* external_token,
                  uint64_t trace_hi = 0, uint64_t trace_lo = 0,
                  uint64_t queue_wait_us = 0);

  // Trips the cancel token of query `id`. Returns false if no such
  // in-flight query exists.
  bool Cancel(uint64_t id);

  std::vector<Snapshot> SnapshotAll() const;
  size_t size() const;
  // {"now_us": N, "queries": [{...}, ...]}
  std::string DumpJson() const;

  // Kill switch for the overhead benchmark A/B lanes.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Stuck-query watchdog: a background thread that scans the table every
  // `interval_ms` and, per query whose elapsed time exceeds `threshold_ms`,
  // either logs one warning (kWarn) or additionally trips the query's
  // cancel token (kCancel — enforcement, counted in
  // query.watchdog_cancelled). Both act once per query, not once per scan.
  // MaybeStartWatchdogFromEnv reads FRAPPE_STUCK_QUERY_MS for the
  // threshold and FRAPPE_STUCK_QUERY_ACTION ("warn" default, "cancel")
  // for the action; unset/invalid threshold leaves the watchdog off.
  enum class WatchdogAction { kWarn, kCancel };
  void StartWatchdog(uint64_t threshold_ms, uint64_t interval_ms = 250,
                     WatchdogAction action = WatchdogAction::kWarn);
  void StopWatchdog();
  bool MaybeStartWatchdogFromEnv();
  bool watchdog_running() const { return watchdog_.joinable(); }

  ~QueryRegistry() { StopWatchdog(); }

 private:
  void Unregister(uint64_t id);
  void WatchdogLoop(uint64_t threshold_ms, uint64_t interval_ms,
                    WatchdogAction action);

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> enabled_{true};

  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
};

}  // namespace frappe::obs

#endif  // FRAPPE_OBS_QUERY_REGISTRY_H_
