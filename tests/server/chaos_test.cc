// Chaos under concurrency: 16 clients hammer the front door with a mixed
// workload (good queries, parse errors, short deadlines, bad paths) while
// a fault thread keeps re-arming the server's I/O fault sites, a
// canceller kills random in-flight queries through the registry, and a
// writer republishes epochs. Every response must be one of the clean
// outcomes — a mapped HTTP status or a dropped connection — and the
// process must come out of it with an empty registry, reclaimed epochs
// and zero TSan reports (this suite runs in the `parallel` TSan lane).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/http_listener.h"
#include "obs/query_registry.h"
#include "obs/readiness.h"
#include "server/epoch.h"
#include "server/query_server.h"

namespace frappe::server {
namespace {

using obs::HttpFetch;
using obs::HttpStatusOf;

TEST(ChaosTest, ConcurrentClientsFaultsCancellationAndPublishes) {
  obs::Readiness::Global().ResetForTesting();
  common::FaultInjector::Global().Reset();

  EpochManager epochs;
  {
    auto graph = std::make_unique<model::CodeGraph>();
    extractor::GraphScale scale;
    scale.factor = 0.01;
    extractor::GenerateKernelGraph(scale, graph.get());
    ASSERT_TRUE(epochs.Publish(std::move(graph), "chaos seed").ok());
  }
  std::weak_ptr<const Epoch> first_epoch = epochs.Current();

  QueryServer::Options options;
  options.workers = 4;
  options.admission.queue_capacity = 8;
  options.admission.queue_deadline_ms = 500;
  options.socket_timeout_ms = 2000;
  auto server = QueryServer::Start(options, &epochs);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 25;
  const char* kQueries[] = {
      "MATCH (f:function) RETURN count(*)",
      "MATCH (s:struct) RETURN count(*)",
      "MATCH (broken",                           // 400
      "START n=node:node_auto_index('short_name: st_*') RETURN count(*)",
  };
  // Statuses the front door is allowed to produce, plus "" for a dropped
  // connection (accept/read/write faults, shed-by-drop). Anything else —
  // a torn response, a wedge, a crash — fails the test.
  const std::set<int> kCleanStatuses = {200, 400, 404, 405, 408,
                                        413, 429, 499, 500, 503};

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> dirty{0};
  std::atomic<uint64_t> outcomes_seen{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        uint32_t pick = rng.Uniform(8);
        std::string response;
        if (pick == 0) {
          response = HttpFetch(port, "GET", "/healthz");
        } else if (pick == 1) {
          response = HttpFetch(port, "POST", "/query?deadline_ms=5",
                               kQueries[i % 4], 8000);
        } else if (pick == 2) {
          response = HttpFetch(port, "GET", "/weird/path");
        } else {
          // Propagate a distinct trace id per request: under faults and
          // shedding the server must still echo exactly the id it was
          // handed — cross-request mixups would corrupt every dashboard
          // that joins on trace id.
          char trace_id[33];
          std::snprintf(trace_id, sizeof(trace_id), "%016llx%016llx",
                        static_cast<unsigned long long>(c + 1),
                        static_cast<unsigned long long>(i + 1));
          std::string header = "traceparent: 00-" + std::string(trace_id) +
                               "-00f067aa0ba902b7-01\r\n";
          response = HttpFetch(port, "POST", "/query", kQueries[i % 4],
                               8000, header);
          if (HttpStatusOf(response) == 200 &&
              std::string(obs::HttpHeaderOf(response, "traceparent"))
                      .find(trace_id) == std::string::npos) {
            dirty.fetch_add(1);
            ADD_FAILURE() << "trace id " << trace_id
                          << " not echoed:\n" << response.substr(0, 300);
          }
        }
        outcomes_seen.fetch_add(1);
        if (response.empty()) continue;  // dropped: clean under faults
        int code = HttpStatusOf(response);
        if (kCleanStatuses.count(code) == 0) {
          dirty.fetch_add(1);
          ADD_FAILURE() << "unclean outcome code=" << code << "\n"
                        << response.substr(0, 300);
        }
      }
    });
  }

  // Fault thread: keep the server's I/O fault sites firing intermittently.
  std::thread faulter([&] {
    Rng rng(99);
    const char* kSites[] = {"server.accept", "server.read", "server.write",
                            "server.enqueue"};
    while (!stop.load(std::memory_order_relaxed)) {
      const char* site = kSites[rng.Uniform(4)];
      // Fire on the 2nd..6th next hit, once: intermittent, not total
      // outage (a permanently failing accept would just stall everyone).
      common::FaultInjector::Global().Arm(site, 1 + rng.Uniform(5), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  // Canceller: kill random in-flight queries through the registry, same
  // switch /debug/cancel uses.
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& snap : obs::QueryRegistry::Global().SnapshotAll()) {
        obs::QueryRegistry::Global().Cancel(snap.id);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(7));
    }
  });

  // Writer: republish epochs while readers run — queries pin their epoch,
  // so this must never produce a torn read.
  std::thread writer([&] {
    uint32_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto store = std::make_unique<graph::GraphStore>();
      for (uint32_t i = 0; i < 16 + (n % 16); ++i) {
        store->AddNode("function");
      }
      epochs.Publish(std::move(store), "chaos writer");
      ++n;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  faulter.join();
  canceller.join();
  writer.join();
  common::FaultInjector::Global().Reset();

  EXPECT_EQ(dirty.load(), 0u);
  EXPECT_EQ(outcomes_seen.load(),
            static_cast<uint64_t>(kClients) * kRequestsPerClient);

  (*server)->Stop();
  // Everything in flight finished: the registry is empty and the seed
  // epoch (long since replaced) was reclaimed when its last reader left.
  EXPECT_EQ(obs::QueryRegistry::Global().size(), 0u);
  EXPECT_TRUE(first_epoch.expired());
  obs::Readiness::Global().ResetForTesting();
}

}  // namespace
}  // namespace frappe::server
