// Graceful drain with work in flight: Stop() must (1) stop accepting, (2)
// cancel the straggler mid-execution via the shared cancel token (the
// query comes back 499/kCancelled, not wedged until its deadline), (3)
// answer queued-but-never-started requests 503, and (4) leak nothing —
// this suite runs in the ASan `storage` lane.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/http_listener.h"
#include "obs/readiness.h"
#include "server/epoch.h"
#include "server/query_server.h"

namespace frappe::server {
namespace {

using obs::HttpBodyOf;
using obs::HttpFetch;
using obs::HttpStatusOf;

class DrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Readiness::Global().ResetForTesting();
    auto graph = std::make_unique<model::CodeGraph>();
    extractor::GraphScale scale;
    scale.factor = 0.02;
    extractor::GenerateKernelGraph(scale, graph.get());
    auto published = epochs_.Publish(std::move(graph), "drain test");
    ASSERT_TRUE(published.ok()) << published.status().ToString();
  }
  void TearDown() override { obs::Readiness::Global().ResetForTesting(); }

  std::string SlowClosureQuery() {
    std::shared_ptr<const Epoch> epoch = epochs_.Current();
    const graph::GraphView& view = epoch->view();
    const model::Schema& schema = epoch->code_graph->schema();
    graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
    graph::KeyId short_name = schema.key(model::PropKey::kShortName);
    for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
      if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
      std::string_view name =
          view.GetNodeString(view.GetEdge(e).src, short_name);
      if (!name.empty()) {
        return "START n=node:node_auto_index('short_name: " +
               std::string(name) +
               "') MATCH n -[:calls*]-> m RETURN distinct m";
      }
    }
    return "";
  }

  EpochManager epochs_;
};

TEST_F(DrainTest, StopCancelsInFlightQueryAsCancelled) {
  QueryServer::Options options;
  options.workers = 1;
  auto server = QueryServer::Start(options, &epochs_);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();

  // A slow query with a long deadline: without cancellation, Stop() would
  // have to wait the full 30s for the worker to come back.
  std::string slow = SlowClosureQuery();
  ASSERT_FALSE(slow.empty());
  std::string response;
  std::thread client([&] {
    response = HttpFetch(port, "POST",
                         "/query?deadline_ms=30000&fast_path=0", slow,
                         /*timeout_ms=*/30000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  auto drain_start = std::chrono::steady_clock::now();
  (*server)->Stop();
  double drain_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - drain_start)
                        .count();
  client.join();

  // The straggler was cancelled promptly — not run to its 30s deadline —
  // and got a well-formed JSON error with the kCancelled mapping (499).
  EXPECT_LT(drain_ms, 10000.0);
  EXPECT_EQ(HttpStatusOf(response), 499) << response;
  EXPECT_NE(HttpBodyOf(response).find("Cancelled"), std::string::npos)
      << response;
  EXPECT_TRUE((*server)->draining());
}

TEST_F(DrainTest, QueuedButNeverStartedRequestsGet503OnDrain) {
  QueryServer::Options options;
  options.workers = 1;
  options.admission.queue_capacity = 8;
  auto server = QueryServer::Start(options, &epochs_);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  std::string slow = SlowClosureQuery();
  // Hog the single worker, then park a second request in the queue.
  std::string hog_response, queued_response;
  std::thread hog([&] {
    hog_response = HttpFetch(port, "POST",
                             "/query?deadline_ms=30000&fast_path=0", slow,
                             30000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread queued([&] {
    queued_response = HttpFetch(port, "POST", "/query",
                                "MATCH (f:function) RETURN count(*)",
                                30000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  (*server)->Stop();
  hog.join();
  queued.join();

  EXPECT_EQ(HttpStatusOf(hog_response), 499) << hog_response;
  // The queued request never started: drained with 503, body says why.
  // (Timing may let the worker pop it between the hog's cancellation and
  // queue shutdown — then it was cancelled or served; all are clean.)
  int queued_code = HttpStatusOf(queued_response);
  EXPECT_TRUE(queued_code == 503 || queued_code == 499 ||
              queued_code == 200)
      << queued_response;

  // After the drain, readiness reports draining (503) for load balancers.
  std::string reason;
  EXPECT_EQ(obs::Readiness::Global().state(&reason),
            obs::Readiness::State::kDraining);
}

TEST_F(DrainTest, EpochsAreReclaimedAfterDrain) {
  std::weak_ptr<const Epoch> watch;
  {
    auto server = QueryServer::Start({}, &epochs_);
    ASSERT_TRUE(server.ok());
    uint16_t port = (*server)->port();
    ASSERT_EQ(HttpStatusOf(HttpFetch(port, "POST", "/query",
                                     "MATCH (f:function) RETURN count(*)")),
              200);
    watch = epochs_.Current();
    (*server)->Stop();
  }
  // The drained server holds no epoch pins; only the manager's own
  // reference keeps the current epoch alive.
  ASSERT_FALSE(watch.expired());
  auto replaced = epochs_.Publish(
      std::make_unique<graph::GraphStore>(), "empty replacement");
  ASSERT_TRUE(replaced.ok());
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace frappe::server
