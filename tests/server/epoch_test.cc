// Epoch-based snapshot isolation at the publish seam: readers pin an
// immutable epoch; a writer publishes a complete replacement atomically;
// the old epoch (store, indexes, Database) is reclaimed exactly when the
// last pinned reader departs — never under a running query.

#include "server/epoch.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "graph/graph_store.h"
#include "graph/snapshot.h"
#include "query/session.h"
#include "temporal/version_store.h"

namespace frappe::server {
namespace {

std::unique_ptr<graph::GraphStore> SmallStore(int functions) {
  auto store = std::make_unique<graph::GraphStore>();
  graph::NodeId prev = graph::kInvalidNode;
  for (int i = 0; i < functions; ++i) {
    graph::NodeId n = store->AddNode("function");
    store->SetNodeProperty(n, "short_name",
                           store->StringValue("fn_" + std::to_string(i)));
    if (prev != graph::kInvalidNode) store->AddEdge(prev, n, "calls");
    prev = n;
  }
  return store;
}

TEST(EpochTest, PublishMakesAQueryableEpoch) {
  EpochManager epochs;
  EXPECT_EQ(epochs.Current(), nullptr);
  EXPECT_EQ(epochs.current_sequence(), 0u);

  auto published = epochs.Publish(SmallStore(4), "test store");
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  std::shared_ptr<const Epoch> epoch = *published;
  EXPECT_EQ(epoch->sequence, 1u);
  EXPECT_EQ(epochs.current_sequence(), 1u);
  EXPECT_EQ(epochs.Current(), epoch);
  EXPECT_EQ(epoch->view().NodeCount(), 4u);

  // The epoch's Database answers real queries (schema + indexes built).
  auto result =
      query::RunQuery(epoch->db, "MATCH (f:function) RETURN count(*)", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
}

TEST(EpochTest, PinnedReaderKeepsOldEpochAliveUntilItDeparts) {
  EpochManager epochs;
  ASSERT_TRUE(epochs.Publish(SmallStore(3), "v1").ok());

  // Reader pins epoch 1; the weak_ptr observes reclamation.
  std::shared_ptr<const Epoch> reader = epochs.Current();
  std::weak_ptr<const Epoch> watch = reader;
  ASSERT_EQ(reader->sequence, 1u);

  // Writer publishes epoch 2 while the reader is mid-"query".
  ASSERT_TRUE(epochs.Publish(SmallStore(5), "v2").ok());
  EXPECT_EQ(epochs.Current()->sequence, 2u);

  // The reader's world is unchanged: still 3 nodes, still valid.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(reader->view().NodeCount(), 3u);
  auto result =
      query::RunQuery(reader->db, "MATCH (f:function) RETURN f", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);

  // Last reader departs -> epoch 1 (store, indexes, Database) reclaimed.
  reader.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(EpochTest, UnpinnedOldEpochIsReclaimedOnPublish) {
  EpochManager epochs;
  ASSERT_TRUE(epochs.Publish(SmallStore(2), "v1").ok());
  std::weak_ptr<const Epoch> watch = epochs.Current();
  ASSERT_FALSE(watch.expired());
  ASSERT_TRUE(epochs.Publish(SmallStore(2), "v2").ok());
  // Nobody pinned epoch 1: the publish swap was its last reference.
  EXPECT_TRUE(watch.expired());
}

TEST(EpochTest, PublishVersionMaterializesEachCommit) {
  temporal::VersionStore store;
  graph::KeyId short_name = store.raw_store().InternKey("short_name");
  graph::NodeId a = store.AddNode("function");
  store.SetNodeProperty(a, short_name,
                        store.raw_store().StringValue("alpha"));
  graph::NodeId b = store.AddNode("function");
  store.SetNodeProperty(b, short_name,
                        store.raw_store().StringValue("beta"));
  graph::EdgeId e = store.AddEdge(a, b, "calls");
  store.CommitVersion();  // v0: {a, b, e}
  store.RemoveNode(b);    // cascades to e
  graph::NodeId c = store.AddNode("struct");
  store.CommitVersion();  // v1: {a, c}

  EpochManager epochs;
  auto v0 = epochs.PublishVersion(store, 0);
  ASSERT_TRUE(v0.ok()) << v0.status().ToString();
  EXPECT_EQ((*v0)->view().NodeCount(), 2u);
  EXPECT_EQ((*v0)->view().EdgeCount(), 1u);
  EXPECT_TRUE((*v0)->view().NodeExists(a));
  EXPECT_TRUE((*v0)->view().NodeExists(b));
  EXPECT_TRUE((*v0)->view().EdgeExists(e));
  EXPECT_FALSE((*v0)->view().NodeExists(c));

  auto v1 = epochs.PublishVersion(store, 1);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  // Tombstones keep the id layout: a and c keep their VersionStore ids,
  // the removed b and e exist as dead slots.
  EXPECT_EQ((*v1)->view().NodeCount(), 2u);
  EXPECT_EQ((*v1)->view().EdgeCount(), 0u);
  EXPECT_TRUE((*v1)->view().NodeExists(a));
  EXPECT_FALSE((*v1)->view().NodeExists(b));
  EXPECT_FALSE((*v1)->view().EdgeExists(e));
  EXPECT_TRUE((*v1)->view().NodeExists(c));

  // Properties survive materialization, queryable by name.
  auto result = query::RunQuery(
      (*v1)->db,
      "START n=node:node_auto_index('short_name: alpha') RETURN n", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);

  EXPECT_FALSE(epochs.PublishVersion(store, 7).ok());  // uncommitted
}

TEST(EpochTest, PublishSnapshotFileOwnsTheSession) {
  auto store = SmallStore(3);
  std::string path = ::testing::TempDir() + "/epoch_test.fsnap";
  ASSERT_TRUE(graph::SaveSnapshot(*store, path).ok());

  EpochManager epochs;
  std::string degraded;
  auto published = epochs.PublishSnapshotFile(path, &degraded);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_TRUE(degraded.empty()) << degraded;
  EXPECT_EQ((*published)->view().NodeCount(), 3u);
  auto result = query::RunQuery(
      (*published)->db, "MATCH (f:function) RETURN count(*)", {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::remove(path.c_str());

  EXPECT_FALSE(epochs.PublishSnapshotFile("/nonexistent/x.fsnap").ok());
}

}  // namespace
}  // namespace frappe::server
