// The query front door end to end over real HTTP: response schema, error
// mapping, per-request deadlines, admission-control shedding with
// Retry-After, and the liveness/readiness split. Exports capture files
// (server_query.json, server_overload.http, server_readyz_*.json) that
// tools/server_check.py validates from ctest.

#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/http_listener.h"
#include "obs/metrics.h"
#include "obs/readiness.h"
#include "server/epoch.h"

namespace frappe::server {
namespace {

using obs::HttpBodyOf;
using obs::HttpFetch;
using obs::HttpStatusOf;

// One shared epoch manager with a generated kernel-shaped graph: big
// enough that a slow-path closure query outlasts any short deadline.
EpochManager& Epochs() {
  static EpochManager* epochs = [] {
    auto* e = new EpochManager();
    auto graph = std::make_unique<model::CodeGraph>();
    extractor::GraphScale scale;
    scale.factor = 0.02;
    extractor::GenerateKernelGraph(scale, graph.get());
    auto published = e->Publish(std::move(graph), "test kernel");
    if (!published.ok()) std::abort();
    return e;
  }();
  return *epochs;
}

// A function with outgoing calls: `-[:calls*]->` from it does real work.
std::string ClosureSeedName() {
  std::shared_ptr<const Epoch> epoch = Epochs().Current();
  const graph::GraphView& view = epoch->view();
  const model::Schema& schema = epoch->code_graph->schema();
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) return std::string(name);
  }
  return "";
}

std::string SlowClosureQuery() {
  return "START n=node:node_auto_index('short_name: " + ClosureSeedName() +
         "') MATCH n -[:calls*]-> m RETURN distinct m";
}

void WriteCapture(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Readiness::Global().ResetForTesting();
    auto server = QueryServer::Start({}, &Epochs());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }
  void TearDown() override {
    server_->Stop();
    obs::Readiness::Global().ResetForTesting();
  }

  std::unique_ptr<QueryServer> server_;
  uint16_t port_ = 0;
};

TEST_F(QueryServerTest, QueryAnswersJsonRowsWithStatsAndEpoch) {
  std::string response = HttpFetch(port_, "POST", "/query",
                                   "MATCH (f:function) RETURN count(*)");
  ASSERT_EQ(HttpStatusOf(response), 200) << response;
  std::string body(HttpBodyOf(response));
  EXPECT_NE(body.find("\"columns\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"rows\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"stats\": {"), std::string::npos) << body;
  EXPECT_NE(body.find("\"elapsed_ms\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"db_hits\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"epoch\": "), std::string::npos) << body;
  WriteCapture("server_query.json", body);
}

TEST_F(QueryServerTest, HealthzAndReadyz) {
  std::string health = HttpFetch(port_, "GET", "/healthz");
  EXPECT_EQ(HttpStatusOf(health), 200);
  EXPECT_EQ(HttpBodyOf(health), "ok\n");

  std::string ready = HttpFetch(port_, "GET", "/readyz");
  EXPECT_EQ(HttpStatusOf(ready), 200) << ready;
  EXPECT_NE(HttpBodyOf(ready).find("\"state\": \"ready\""),
            std::string::npos)
      << ready;
  WriteCapture("server_readyz_ready.json", HttpBodyOf(ready));
}

TEST_F(QueryServerTest, ErrorMapping) {
  // Parse error -> 400 with the status-code name in the JSON body.
  std::string response =
      HttpFetch(port_, "POST", "/query", "MATCH (broken");
  EXPECT_EQ(HttpStatusOf(response), 400) << response;
  EXPECT_NE(HttpBodyOf(response).find("\"code\": "), std::string::npos)
      << response;

  // Empty body -> 400.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "POST", "/query", "")), 400);

  // Unknown path -> 404; /query with GET -> 405.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "GET", "/nope")), 404);
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "GET", "/query")), 405);

  // Bad parameter -> 400.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "POST",
                                   "/query?deadline_ms=banana",
                                   "MATCH (f:function) RETURN f")),
            400);
}

TEST_F(QueryServerTest, DeadlinePropagatesIntoExecution) {
  // A 30ms budget on a slow-path closure query: the executor's deadline
  // poll must end it, mapped to 408 Request Timeout.
  std::string response =
      HttpFetch(port_, "POST", "/query?deadline_ms=30&fast_path=0",
                SlowClosureQuery(), /*timeout_ms=*/15000);
  EXPECT_EQ(HttpStatusOf(response), 408) << response;
  EXPECT_NE(HttpBodyOf(response).find("DeadlineExceeded"),
            std::string::npos)
      << response;
}

TEST(QueryServerShedTest, OverBudgetSheds429WithRetryAfter) {
  obs::Readiness::Global().ResetForTesting();
  QueryServer::Options options;
  options.admission.max_inflight_bytes = 1;  // every request over budget
  auto server = QueryServer::Start(options, &Epochs());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::string response = HttpFetch((*server)->port(), "POST", "/query",
                                   "MATCH (f:function) RETURN f");
  EXPECT_EQ(HttpStatusOf(response), 429) << response;
  EXPECT_NE(response.find("Retry-After: "), std::string::npos) << response;
  WriteCapture("server_overload.http", response);

  // Shedding flips readiness to overloaded (503 on /readyz) until a
  // request gets through again.
  std::string ready = HttpFetch((*server)->port(), "GET", "/readyz");
  EXPECT_EQ(HttpStatusOf(ready), 503) << ready;
  EXPECT_NE(HttpBodyOf(ready).find("\"state\": \"overloaded\""),
            std::string::npos)
      << ready;
  WriteCapture("server_readyz_overloaded.json", HttpBodyOf(ready));

  (*server)->Stop();
  obs::Readiness::Global().ResetForTesting();
}

TEST(QueryServerShedTest, FullQueueSheds429) {
  obs::Readiness::Global().ResetForTesting();
  QueryServer::Options options;
  options.workers = 1;
  options.admission.queue_capacity = 1;
  auto server = QueryServer::Start(options, &Epochs());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();
  uint64_t shed_before = obs::Registry::Global()
                             .GetCounter("server.shed_queue_full")
                             .Value();

  // Occupy the single worker with a slow query (bounded by its deadline),
  // then fill the one queue slot with a second; the third must shed.
  std::string slow = SlowClosureQuery();
  std::thread worker_hog([&] {
    HttpFetch(port, "POST", "/query?deadline_ms=3000&fast_path=0", slow,
              15000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread queue_filler([&] {
    HttpFetch(port, "POST", "/query?deadline_ms=3000&fast_path=0", slow,
              15000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::string response = HttpFetch(port, "POST", "/query",
                                   "MATCH (f:function) RETURN count(*)");
  EXPECT_EQ(HttpStatusOf(response), 429) << response;
  EXPECT_GT(obs::Registry::Global()
                .GetCounter("server.shed_queue_full")
                .Value(),
            shed_before);

  worker_hog.join();
  queue_filler.join();
  (*server)->Stop();
  obs::Readiness::Global().ResetForTesting();
}

TEST(QueryServerLifecycleTest, StoppedServerRefusesConnections) {
  obs::Readiness::Global().ResetForTesting();
  auto server = QueryServer::Start({}, &Epochs());
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();
  EXPECT_FALSE((*server)->draining());
  (*server)->Stop();
  EXPECT_TRUE((*server)->draining());
  (*server)->Stop();  // idempotent
  // The listen socket is closed: connects fail, HttpFetch returns empty.
  EXPECT_EQ(HttpFetch(port, "GET", "/healthz"), "");
  obs::Readiness::Global().ResetForTesting();
}

}  // namespace
}  // namespace frappe::server
