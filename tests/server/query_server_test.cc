// The query front door end to end over real HTTP: response schema, error
// mapping, per-request deadlines, admission-control shedding with
// Retry-After, the liveness/readiness split, and request tracing
// (traceparent adoption/echo, per-query timeline, tail-sampled trace
// retention). Exports capture files (server_query.json,
// server_overload.http, server_readyz_*.json, server_trace.json) that
// tools/server_check.py and tools/trace_check.py validate from ctest.

#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/http_listener.h"
#include "obs/metrics.h"
#include "obs/readiness.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "server/epoch.h"

namespace frappe::server {
namespace {

using obs::HttpBodyOf;
using obs::HttpFetch;
using obs::HttpHeaderOf;
using obs::HttpStatusOf;

// Pulls the integer after `"key": ` out of a JSON body; -1 when absent.
// Enough JSON parsing for the flat timeline object the server emits.
int64_t JsonInt(std::string_view body, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t at = body.find(needle);
  if (at == std::string_view::npos) return -1;
  return std::strtoll(body.data() + at + needle.size(), nullptr, 10);
}

// One shared epoch manager with a generated kernel-shaped graph: big
// enough that a slow-path closure query outlasts any short deadline.
EpochManager& Epochs() {
  static EpochManager* epochs = [] {
    auto* e = new EpochManager();
    auto graph = std::make_unique<model::CodeGraph>();
    extractor::GraphScale scale;
    scale.factor = 0.02;
    extractor::GenerateKernelGraph(scale, graph.get());
    auto published = e->Publish(std::move(graph), "test kernel");
    if (!published.ok()) std::abort();
    return e;
  }();
  return *epochs;
}

// A function with outgoing calls: `-[:calls*]->` from it does real work.
std::string ClosureSeedName() {
  std::shared_ptr<const Epoch> epoch = Epochs().Current();
  const graph::GraphView& view = epoch->view();
  const model::Schema& schema = epoch->code_graph->schema();
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) return std::string(name);
  }
  return "";
}

std::string SlowClosureQuery() {
  return "START n=node:node_auto_index('short_name: " + ClosureSeedName() +
         "') MATCH n -[:calls*]-> m RETURN distinct m";
}

void WriteCapture(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Readiness::Global().ResetForTesting();
    auto server = QueryServer::Start({}, &Epochs());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }
  void TearDown() override {
    server_->Stop();
    obs::Readiness::Global().ResetForTesting();
  }

  std::unique_ptr<QueryServer> server_;
  uint16_t port_ = 0;
};

TEST_F(QueryServerTest, QueryAnswersJsonRowsWithStatsAndEpoch) {
  std::string response = HttpFetch(port_, "POST", "/query",
                                   "MATCH (f:function) RETURN count(*)");
  ASSERT_EQ(HttpStatusOf(response), 200) << response;
  std::string body(HttpBodyOf(response));
  EXPECT_NE(body.find("\"columns\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"rows\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"stats\": {"), std::string::npos) << body;
  EXPECT_NE(body.find("\"elapsed_ms\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"db_hits\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"epoch\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"trace_id\": \""), std::string::npos) << body;
  EXPECT_NE(body.find("\"timeline\": {"), std::string::npos) << body;
  // Resource attribution rides on every response (schema checked in depth
  // by tools/server_check.py against this capture).
  EXPECT_NE(body.find("\"cpu_us\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"alloc_bytes\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"peak_bytes\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"scanned_bytes\": "), std::string::npos) << body;
  WriteCapture("server_query.json", body);
}

TEST_F(QueryServerTest, TraceparentIsAdoptedAndEchoed) {
  // A W3C traceparent on the request: the response must carry the same
  // trace id — in the echoed traceparent header and the body's trace_id —
  // with the server's own root span id (not the client's) in the header.
  std::string response = HttpFetch(
      port_, "POST", "/query", "MATCH (f:function) RETURN count(*)", 5000,
      "traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
      "\r\n");
  ASSERT_EQ(HttpStatusOf(response), 200) << response;
  std::string echoed(HttpHeaderOf(response, "traceparent"));
  ASSERT_EQ(echoed.size(), 55u) << echoed;
  EXPECT_EQ(echoed.substr(0, 3), "00-");
  EXPECT_EQ(echoed.substr(3, 32), "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_NE(echoed.substr(36, 16), "00f067aa0ba902b7");
  EXPECT_NE(HttpBodyOf(response).find(
                "\"trace_id\": \"4bf92f3577b34da6a3ce929d0e0e4736\""),
            std::string::npos)
      << response;
}

TEST_F(QueryServerTest, MalformedTraceparentMintsAFreshIdNever4xx) {
  // Bad telemetry headers must never fail the query: each of these gets a
  // 200 with a server-minted trace id, echoed back well-formed.
  const char* kMalformed[] = {
      "traceparent: garbage\r\n",
      "traceparent: 00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
      "\r\n",
      // All-zero trace id and version 0xff are invalid per the W3C spec.
      "traceparent: 00-00000000000000000000000000000000-00f067aa0ba902b7-01"
      "\r\n",
      "traceparent: ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
      "\r\n",
      "traceparent: 00-4bf92f3577b34da6\r\n",
  };
  for (const char* header : kMalformed) {
    std::string response =
        HttpFetch(port_, "POST", "/query",
                  "MATCH (f:function) RETURN count(*)", 5000, header);
    ASSERT_EQ(HttpStatusOf(response), 200) << header << "\n" << response;
    std::string echoed(HttpHeaderOf(response, "traceparent"));
    ASSERT_EQ(echoed.size(), 55u) << header << " -> " << echoed;
    std::string trace_id = echoed.substr(3, 32);
    EXPECT_NE(trace_id, "00000000000000000000000000000000") << header;
    EXPECT_NE(trace_id, "4bf92f3577b34da6a3ce929d0e0e4736") << header;
    // Body and header agree on the minted id.
    EXPECT_NE(
        HttpBodyOf(response).find("\"trace_id\": \"" + trace_id + "\""),
        std::string::npos)
        << header << "\n" << response;
  }
}

TEST_F(QueryServerTest, TimelineComponentsAccountForTheTotal) {
  // A query with real execution and serialization work: the attributed
  // components must account for the wall latency — the whole point of the
  // timeline is that nothing material hides between the phases.
  std::string response = HttpFetch(port_, "POST", "/query",
                                   "MATCH (f:function) RETURN f", 15000);
  ASSERT_EQ(HttpStatusOf(response), 200) << response;
  std::string_view body = HttpBodyOf(response);
  int64_t queue_us = JsonInt(body, "queue_us");
  int64_t parse_us = JsonInt(body, "parse_us");
  int64_t plan_us = JsonInt(body, "plan_us");
  int64_t exec_us = JsonInt(body, "exec_us");
  int64_t serialize_us = JsonInt(body, "serialize_us");
  int64_t total_us = JsonInt(body, "total_us");
  ASSERT_GE(queue_us, 0) << body;
  ASSERT_GE(parse_us, 0) << body;
  ASSERT_GE(plan_us, 0) << body;
  ASSERT_GE(exec_us, 0) << body;
  ASSERT_GE(serialize_us, 0) << body;
  ASSERT_GT(total_us, 0) << body;
  int64_t sum = queue_us + parse_us + plan_us + exec_us + serialize_us;
  EXPECT_LE(sum, total_us) << body;
  EXPECT_GE(sum, total_us - total_us / 10)
      << "phases sum to " << sum << "us but the request took " << total_us
      << "us — more than 10% unattributed: " << body;
}

TEST_F(QueryServerTest, RequestedTraceIsRetainedWithParentedSpans) {
  obs::TraceStore::Global().Clear();
  // A client-traced closure query: the CSR fast path dispatches the
  // frontier engine, so the retained tree holds queue-wait, session,
  // executor and per-level analytics spans.
  std::string response = HttpFetch(
      port_, "POST", "/query", SlowClosureQuery(), 15000,
      "traceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
      "\r\n");
  ASSERT_EQ(HttpStatusOf(response), 200) << response;

  uint64_t hi = 0, lo = 0;
  ASSERT_TRUE(obs::ParseTraceIdHex("0af7651916cd43dd8448eb211c80319c", &hi,
                                   &lo));
  obs::StoredTrace stored;
  ASSERT_TRUE(obs::TraceStore::Global().Lookup(hi, lo, &stored))
      << "client-traced query was not retained";
  EXPECT_EQ(stored.reason, "requested");
  EXPECT_EQ(stored.status, "ok");

  const obs::CollectedSpan* root = nullptr;
  for (const obs::CollectedSpan& span : stored.spans) {
    if (std::string_view(span.name) == "server.request") root = &span;
  }
  ASSERT_NE(root, nullptr) << "no server.request root span";
  // The root parents under the client's span from the traceparent.
  EXPECT_EQ(root->parent_id, 0xb7ad6b7169203331ull);
  bool queue_wait = false, exec = false;
  int analytics_levels = 0;
  for (const obs::CollectedSpan& span : stored.spans) {
    std::string_view name(span.name);
    if (name == "server.queue_wait") {
      queue_wait = true;
      EXPECT_EQ(span.parent_id, root->span_id);
    }
    if (name == "session.run") {
      EXPECT_EQ(span.parent_id, root->span_id);
    }
    if (name == "session.execute") exec = true;
    if (name == "analytics.level") {
      ++analytics_levels;
      EXPECT_NE(span.parent_id, 0u);
    }
  }
  EXPECT_TRUE(queue_wait) << "no server.queue_wait span";
  EXPECT_TRUE(exec) << "no session.execute span";
  EXPECT_GE(analytics_levels, 1) << "no analytics.level spans";

  // End to end: the stats server serves the same tree by trace id, and
  // the export feeds tools/trace_check.py --parentage from ctest.
  auto stats = obs::StatsServer::Start();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  std::string tree = HttpFetch(
      (*stats)->port(), "GET",
      "/debug/tracez?trace_id=0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(HttpStatusOf(tree), 200) << tree;
  std::string tree_body(HttpBodyOf(tree));
  EXPECT_NE(tree_body.find("server.request"), std::string::npos)
      << tree_body;
  EXPECT_NE(tree_body.find("server.queue_wait"), std::string::npos)
      << tree_body;
  EXPECT_NE(tree_body.find("analytics.level"), std::string::npos)
      << tree_body;
  WriteCapture("server_trace.json", tree_body);
  (*stats)->Stop();
}

TEST_F(QueryServerTest, HealthzAndReadyz) {
  std::string health = HttpFetch(port_, "GET", "/healthz");
  EXPECT_EQ(HttpStatusOf(health), 200);
  EXPECT_EQ(HttpBodyOf(health), "ok\n");

  std::string ready = HttpFetch(port_, "GET", "/readyz");
  EXPECT_EQ(HttpStatusOf(ready), 200) << ready;
  EXPECT_NE(HttpBodyOf(ready).find("\"state\": \"ready\""),
            std::string::npos)
      << ready;
  WriteCapture("server_readyz_ready.json", HttpBodyOf(ready));
}

TEST_F(QueryServerTest, ErrorMapping) {
  // Parse error -> 400 with the status-code name in the JSON body.
  std::string response =
      HttpFetch(port_, "POST", "/query", "MATCH (broken");
  EXPECT_EQ(HttpStatusOf(response), 400) << response;
  EXPECT_NE(HttpBodyOf(response).find("\"code\": "), std::string::npos)
      << response;

  // Empty body -> 400.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "POST", "/query", "")), 400);

  // Unknown path -> 404; /query with GET -> 405.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "GET", "/nope")), 404);
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "GET", "/query")), 405);

  // Bad parameter -> 400.
  EXPECT_EQ(HttpStatusOf(HttpFetch(port_, "POST",
                                   "/query?deadline_ms=banana",
                                   "MATCH (f:function) RETURN f")),
            400);
}

TEST_F(QueryServerTest, DeadlinePropagatesIntoExecution) {
  // A 30ms budget on a slow-path closure query: the executor's deadline
  // poll must end it, mapped to 408 Request Timeout.
  std::string response =
      HttpFetch(port_, "POST", "/query?deadline_ms=30&fast_path=0",
                SlowClosureQuery(), /*timeout_ms=*/15000);
  EXPECT_EQ(HttpStatusOf(response), 408) << response;
  EXPECT_NE(HttpBodyOf(response).find("DeadlineExceeded"),
            std::string::npos)
      << response;
}

TEST_F(QueryServerTest, MemoryBudgetMapsTo413) {
  // A tight FRAPPE_QUERY_MEM_BYTES cap on a slow-path closure query: the
  // executor's budget poll trips kResourceExhausted, mapped to 413
  // Payload Too Large at the front door. The deadline is a backstop so a
  // broken budget fails, not hangs.
  ::setenv("FRAPPE_QUERY_MEM_BYTES", "262144", 1);
  std::string response =
      HttpFetch(port_, "POST", "/query?deadline_ms=60000&fast_path=0",
                SlowClosureQuery(), /*timeout_ms=*/90000);
  ::unsetenv("FRAPPE_QUERY_MEM_BYTES");
  EXPECT_EQ(HttpStatusOf(response), 413) << response;
  EXPECT_NE(HttpBodyOf(response).find("ResourceExhausted"),
            std::string::npos)
      << response;
}

TEST(QueryServerShedTest, OverBudgetSheds429WithRetryAfter) {
  obs::Readiness::Global().ResetForTesting();
  QueryServer::Options options;
  options.admission.max_inflight_bytes = 1;  // every request over budget
  auto server = QueryServer::Start(options, &Epochs());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::string response = HttpFetch((*server)->port(), "POST", "/query",
                                   "MATCH (f:function) RETURN f");
  EXPECT_EQ(HttpStatusOf(response), 429) << response;
  EXPECT_NE(response.find("Retry-After: "), std::string::npos) << response;
  WriteCapture("server_overload.http", response);

  // Shedding flips readiness to overloaded (503 on /readyz) until a
  // request gets through again.
  std::string ready = HttpFetch((*server)->port(), "GET", "/readyz");
  EXPECT_EQ(HttpStatusOf(ready), 503) << ready;
  EXPECT_NE(HttpBodyOf(ready).find("\"state\": \"overloaded\""),
            std::string::npos)
      << ready;
  WriteCapture("server_readyz_overloaded.json", HttpBodyOf(ready));

  (*server)->Stop();
  obs::Readiness::Global().ResetForTesting();
}

TEST(QueryServerShedTest, FullQueueSheds429) {
  obs::Readiness::Global().ResetForTesting();
  QueryServer::Options options;
  options.workers = 1;
  options.admission.queue_capacity = 1;
  auto server = QueryServer::Start(options, &Epochs());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();
  uint64_t shed_before = obs::Registry::Global()
                             .GetCounter("server.shed_queue_full")
                             .Value();

  // Occupy the single worker with a slow query (bounded by its deadline),
  // then fill the one queue slot with a second; the third must shed.
  std::string slow = SlowClosureQuery();
  std::thread worker_hog([&] {
    HttpFetch(port, "POST", "/query?deadline_ms=3000&fast_path=0", slow,
              15000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread queue_filler([&] {
    HttpFetch(port, "POST", "/query?deadline_ms=3000&fast_path=0", slow,
              15000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::string response = HttpFetch(port, "POST", "/query",
                                   "MATCH (f:function) RETURN count(*)");
  EXPECT_EQ(HttpStatusOf(response), 429) << response;
  EXPECT_GT(obs::Registry::Global()
                .GetCounter("server.shed_queue_full")
                .Value(),
            shed_before);

  worker_hog.join();
  queue_filler.join();
  (*server)->Stop();
  obs::Readiness::Global().ResetForTesting();
}

TEST(QueryServerLifecycleTest, StoppedServerRefusesConnections) {
  obs::Readiness::Global().ResetForTesting();
  auto server = QueryServer::Start({}, &Epochs());
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();
  EXPECT_FALSE((*server)->draining());
  (*server)->Stop();
  EXPECT_TRUE((*server)->draining());
  (*server)->Stop();  // idempotent
  // The listen socket is closed: connects fail, HttpFetch returns empty.
  EXPECT_EQ(HttpFetch(port, "GET", "/healthz"), "");
  obs::Readiness::Global().ResetForTesting();
}

}  // namespace
}  // namespace frappe::server
