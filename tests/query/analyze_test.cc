// ANALYZE + the cardinality estimator: the FQL command builds and swaps in
// a stats catalog, EXPLAIN/PROFILE carry est_rows from it, and the
// misestimate telemetry (q-error histogram, per-fingerprint worst case,
// FRAPPE_MISESTIMATE_QERROR ring) fires on a seeded stale-catalog
// misestimate and clears after re-running ANALYZE.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/snapshot_manager.h"
#include "obs/fingerprint.h"
#include "query/estimator.h"
#include "query/parser.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using testing::PaperFixture;

class AnalyzeTest : public ::testing::Test {
 protected:
  AnalyzeTest() : session_(fixture_.graph) {
    ::unsetenv("FRAPPE_MISESTIMATE_QERROR");
    ::unsetenv("FRAPPE_ESTIMATOR");
  }

  QueryResult Run(const std::string& text) {
    auto result = session_.Run(text);
    EXPECT_TRUE(result.ok()) << text << " => " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  PaperFixture fixture_;
  Session session_;
};

TEST_F(AnalyzeTest, AnalyzeBuildsAndPublishesCatalog) {
  ASSERT_NE(session_.database().stats, nullptr);
  EXPECT_EQ(session_.database().stats->Get(), nullptr);

  QueryResult r = Run("ANALYZE");
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_FALSE(r.columns.empty());
  EXPECT_EQ(r.columns[0], "nodes");

  auto catalog = session_.database().stats->Get();
  ASSERT_NE(catalog, nullptr);
  EXPECT_EQ(catalog->node_count, fixture_.graph.view().NodeCount());
  EXPECT_EQ(catalog->edge_count, fixture_.graph.view().EdgeCount());
  EXPECT_FALSE(catalog->hubs.empty());
  EXPECT_FALSE(catalog->index_fields.empty());

  // The summary row reports the same totals.
  EXPECT_EQ(static_cast<uint64_t>(r.rows[0][0].value.AsInt()),
            catalog->node_count);
}

TEST_F(AnalyzeTest, AnalyzeIsCaseInsensitiveAndTakesNoClauses) {
  EXPECT_TRUE(session_.Run("analyze").ok());
  auto bad = session_.Run("ANALYZE RETURN n");
  EXPECT_FALSE(bad.ok());
}

TEST_F(AnalyzeTest, ExplainCarriesEstimates) {
  QueryResult r = Run(
      "EXPLAIN START n=node:node_auto_index('short_name: cmd') RETURN n");
  EXPECT_NE(r.plan.find("est_rows="), std::string::npos) << r.plan;
}

TEST_F(AnalyzeTest, EstimatorPrefersCatalogWhenPresent) {
  auto parsed = Parse(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls]-> m RETURN m");
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  ClauseEstimates before = EstimateQuery(session_.database(), *parsed);
  EXPECT_FALSE(before.used_catalog);
  EXPECT_EQ(before.rows.size(), parsed->clauses.size());

  Run("ANALYZE");
  ClauseEstimates after = EstimateQuery(session_.database(), *parsed);
  EXPECT_TRUE(after.used_catalog);
  EXPECT_GT(after.final_rows, 0.0);
}

TEST_F(AnalyzeTest, QErrorIsSymmetricAndSmoothed) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);  // smoothed: empty est vs empty
  EXPECT_DOUBLE_EQ(QError(1.0, 100.0), QError(100.0, 1.0));
  EXPECT_GT(QError(1.0, 1000.0), 100.0);
}

// The acceptance scenario: bulk ingest after ANALYZE leaves a stale
// catalog; the next query's estimate is badly wrong and lands in the
// misestimate telemetry; re-running ANALYZE clears the condition.
TEST_F(AnalyzeTest, StaleCatalogMisestimateFiresAndClearsAfterAnalyze) {
  const std::string query =
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls]-> m RETURN m";

  Run("ANALYZE");  // catalog matches the graph as-built

  // Bulk ingest: 200 new callees of sr_media_change. The live view (which
  // execution traverses) grows; the catalog's calls-fanout does not.
  for (int i = 0; i < 200; ++i) {
    graph::NodeId callee = fixture_.graph.AddNode(
        model::NodeKind::kFunction, "ingested_" + std::to_string(i));
    PaperFixture::Must(fixture_.graph.AddEdge(model::EdgeKind::kCalls,
                                              fixture_.sr_media_change,
                                              callee));
  }

  obs::MisestimateRing::Global().ResetForTesting();
  ::setenv("FRAPPE_MISESTIMATE_QERROR", "5", 1);

  QueryResult stale = Run(query);
  EXPECT_EQ(stale.rows.size(), 203u);  // 3 original + 200 ingested
  auto recorded = obs::MisestimateRing::Global().SnapshotAll();
  ASSERT_EQ(recorded.size(), 1u);
  EXPECT_EQ(recorded[0].actual_rows, 203u);
  EXPECT_GE(recorded[0].qerror, 5.0);
  EXPECT_NE(recorded[0].normalized.find("calls"), std::string::npos);

  // The per-fingerprint table carries the worst q-error for the shape.
  bool found = false;
  for (const auto& snap : obs::QueryStats::Global().SnapshotAll()) {
    if (snap.fingerprint == recorded[0].fingerprint) {
      found = true;
      EXPECT_GE(snap.worst_qerror_x100, 500u);
    }
  }
  EXPECT_TRUE(found);

  // Re-ANALYZE: the refreshed fanout brings the estimate back within the
  // threshold — the same query no longer lands in the ring.
  Run("ANALYZE");
  QueryResult fresh = Run(query);
  EXPECT_EQ(fresh.rows.size(), 203u);
  EXPECT_EQ(obs::MisestimateRing::Global().SnapshotAll().size(), 1u);

  ::unsetenv("FRAPPE_MISESTIMATE_QERROR");
}

TEST_F(AnalyzeTest, EstimatorOffDisablesTheTelemetry) {
  obs::MisestimateRing::Global().ResetForTesting();
  // Threshold 1.0 would flag every query (q >= 1 by definition) — unless
  // FRAPPE_ESTIMATOR=off short-circuits the whole comparison.
  ::setenv("FRAPPE_MISESTIMATE_QERROR", "1", 1);
  ::setenv("FRAPPE_ESTIMATOR", "off", 1);
  Run("MATCH (n:module) RETURN n");
  EXPECT_TRUE(obs::MisestimateRing::Global().SnapshotAll().empty());
  ::unsetenv("FRAPPE_ESTIMATOR");
  ::setenv("FRAPPE_MISESTIMATE_QERROR", "1", 1);
  Run("MATCH (n:module) RETURN n");
  EXPECT_FALSE(obs::MisestimateRing::Global().SnapshotAll().empty());
  ::unsetenv("FRAPPE_MISESTIMATE_QERROR");
  obs::MisestimateRing::Global().ResetForTesting();
}

// A snapshot saved with a catalog reopens with warm estimates: the
// SnapshotSession publishes the embedded catalog into its stats cache.
TEST_F(AnalyzeTest, SnapshotSessionLoadsEmbeddedCatalog) {
  Run("ANALYZE");
  auto catalog = session_.database().stats->Get();
  ASSERT_NE(catalog, nullptr);

  std::string path = ::testing::TempDir() + "analyze_test_snapshot.db";
  graph::SnapshotManager manager(path);
  auto sizes = manager.Save(fixture_.graph.view(), &session_.name_index(),
                            catalog.get());
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  EXPECT_GT(sizes->stats, 0u);

  auto reopened = SnapshotSession::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto loaded = (*reopened)->database().stats->Get();
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->node_count, catalog->node_count);
  EXPECT_EQ(loaded->edge_count, catalog->edge_count);

  auto parsed = Parse("MATCH (n:function) RETURN n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(EstimateQuery((*reopened)->database(), *parsed).used_catalog);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frappe::query
