#include "query/explain.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using testing::PaperFixture;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : session_(fixture_.graph) {}

  std::string Plan(std::string_view text) {
    auto result = ExplainText(session_.database(), text);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : std::string();
  }

  PaperFixture fixture_;
  Session session_;
};

TEST_F(ExplainTest, IndexSeekShown) {
  std::string plan = Plan(
      "START n=node:node_auto_index('short_name: cmd') RETURN n");
  EXPECT_NE(plan.find("NodeByIndexSeek n"), std::string::npos);
  EXPECT_NE(plan.find("short_name: cmd"), std::string::npos);
  EXPECT_NE(plan.find("Produce n"), std::string::npos);
}

TEST_F(ExplainTest, AnchorPrefersBoundVariable) {
  std::string plan = Plan(
      "START n=node(0) MATCH n -[:calls]-> m RETURN m");
  EXPECT_NE(plan.find("anchored on bound 'n'"), std::string::npos);
}

TEST_F(ExplainTest, AnchorUsesLabelScanWhenUnbound) {
  std::string plan = Plan("MATCH (n:function) -[:calls]-> m RETURN m");
  EXPECT_NE(plan.find("NodeByLabelScan(:function)"), std::string::npos);
  // The fixture has 6 functions.
  EXPECT_NE(plan.find("~6 candidates"), std::string::npos);
}

TEST_F(ExplainTest, AllNodesScanForBareVariable) {
  std::string plan = Plan("MATCH (n) RETURN n");
  EXPECT_NE(plan.find("AllNodesScan"), std::string::npos);
}

TEST_F(ExplainTest, VarLengthFlaggedAsPathEnumeration) {
  // `RETURN m` observes one row per path, so the closure kernel cannot be
  // substituted — the plan keeps full path enumeration.
  std::string plan = Plan(
      "START n=node(0) MATCH n -[:calls*]-> m RETURN m");
  EXPECT_NE(plan.find("[path enumeration]"), std::string::npos);
}

TEST_F(ExplainTest, VarLengthWithDistinctUsesCsrFastPath) {
  // The Figure 6 shape: path multiplicity is collapsed by DISTINCT, so the
  // plan dispatches to the parallel CSR closure kernel.
  std::string plan = Plan(
      "START n=node(0) MATCH n -[:calls*]-> m RETURN distinct m");
  EXPECT_NE(plan.find("CSR closure fast path"), std::string::npos);
  EXPECT_EQ(plan.find("[path enumeration]"), std::string::npos);
  EXPECT_NE(plan.find("Produce DISTINCT"), std::string::npos);
}

TEST_F(ExplainTest, FilterAndAggregateAndSort) {
  std::string plan = Plan(
      "MATCH (n:function) -[r:calls]-> m WHERE r.use_start_line > 5 "
      "RETURN m, count(*) AS c ORDER BY c DESC LIMIT 3");
  EXPECT_NE(plan.find("Filter r.use_start_line > 5"), std::string::npos);
  EXPECT_NE(plan.find("Aggregate"), std::string::npos);
  EXPECT_NE(plan.find("count(*) AS c"), std::string::npos);
  EXPECT_NE(plan.find("Sort c DESC"), std::string::npos);
  EXPECT_NE(plan.find("Limit 3"), std::string::npos);
}

TEST_F(ExplainTest, ShortestPathOperator) {
  std::string plan = Plan(
      "START a=node(0), b=node(1) "
      "MATCH shortestPath(a -[:calls*]-> b) RETURN a");
  EXPECT_NE(plan.find("ShortestPath"), std::string::npos);
  EXPECT_NE(plan.find("bidirectional BFS"), std::string::npos);
}

TEST_F(ExplainTest, WithResetsBindings) {
  std::string plan = Plan(
      "MATCH (n:function) WITH distinct n AS f MATCH f -[:calls]-> g "
      "RETURN g");
  EXPECT_NE(plan.find("Project DISTINCT n AS f"), std::string::npos);
  // The second MATCH anchors on f, which WITH re-bound.
  EXPECT_NE(plan.find("anchored on bound 'f'"), std::string::npos);
}

TEST_F(ExplainTest, PatternPredicateRendered) {
  std::string plan = Plan(
      "START w=node(0) MATCH (n:function) WHERE n -[:calls*]-> w RETURN n");
  EXPECT_NE(plan.find("Filter exists("), std::string::npos);
}

TEST_F(ExplainTest, ParseErrorsPropagate) {
  auto result = ExplainText(session_.database(), "MATCH (n RETURN n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}


TEST_F(ExplainTest, IndexBackedPropertySeek) {
  std::string plan = Plan(
      "MATCH (n:function {short_name: 'helper_a'}) -[:calls]-> m RETURN m");
  EXPECT_NE(plan.find("NodeIndexSeek(short_name = 'helper_a')"),
            std::string::npos);
  EXPECT_NE(plan.find("~1 candidates"), std::string::npos);
}

TEST(DescribeExprTest, RendersAllNodeKinds) {
  auto parsed = Parse(
      "START n=node(1) WHERE (n.a = 1 AND NOT n.b <> 'x') OR "
      "has(n.c) RETURN n");
  ASSERT_TRUE(parsed.ok());
  const auto& where = std::get<WhereClause>(parsed->clauses[1]);
  std::string text = DescribeExpr(*where.predicate);
  EXPECT_NE(text.find("n.a = 1"), std::string::npos);
  EXPECT_NE(text.find("NOT"), std::string::npos);
  EXPECT_NE(text.find("'x'"), std::string::npos);
  EXPECT_NE(text.find("has(n.c)"), std::string::npos);
  EXPECT_NE(text.find(" OR "), std::string::npos);
}

}  // namespace
}  // namespace frappe::query
