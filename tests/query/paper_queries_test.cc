// Integration tests running the paper's example queries (Figures 3-6)
// verbatim (modulo the RETURN clauses the paper's listings elide) against
// the miniature kernel fixture.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using graph::NodeId;
using testing::PaperFixture;

class PaperQueriesTest : public ::testing::Test {
 protected:
  PaperQueriesTest() : session_(fixture_.graph) {}

  PaperFixture fixture_;
  Session session_;
};

// Figure 3: symbol search constrained by module — fields named `id`
// reachable from wakeup.elf via compiled_from/linked_from edges.
TEST_F(PaperQueriesTest, Figure3SymbolSearchConstrainedByModule) {
  auto result = session_.Run(R"(
    START m=node:node_auto_index('short_name: wakeup.elf')
    MATCH m -[:compiled_from|linked_from*]-> f
    WITH distinct f
    MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
    RETURN n
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].node, fixture_.id_in_wakeup);
  // The other `id` field (in sr.c, outside the module) must be excluded.
}

// Figure 4: go-to-definition — the symbol named `id` whose reference's
// name token sits at sr.c:104:16.
TEST_F(PaperQueriesTest, Figure4GoToDefinition) {
  std::string query =
      "START n=node:node_auto_index('short_name: id') "
      "WHERE (n) <-[{NAME_FILE_ID: " +
      std::to_string(fixture_.NodeFile()) +
      ", NAME_START_LINE: 104, NAME_START_COLUMN: 16}]- () RETURN n";
  auto result = session_.Run(query);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].node, fixture_.id_in_sr);
}

// Figure 5: debugging — writers of packet_command.cmd executed (by the
// line-number approximation) before the call from sr_media_change to
// get_sectorsize at line 236.
TEST_F(PaperQueriesTest, Figure5DebuggingWritersOfCmd) {
  auto result = session_.Run(R"(
    START from=node:node_auto_index('short_name: sr_media_change'),
          to=node:node_auto_index('short_name: get_sectorsize'),
          b=node:node_auto_index('short_name: packet_command')
    MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
    WITH to, from, writer, write
    MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
    WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
    RETURN distinct writer, write.use_start_line
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  // Only sr_do_ioctl qualifies: it is reached from the helper_a call site
  // (line 100 <= 236). helper_b's call site is at line 300 (too late), and
  // stale_writer is not reachable from any call site at all.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].node, fixture_.sr_do_ioctl);
  EXPECT_EQ(result->rows[0][1].value.AsInt(), 150);
}

// Figure 6: code comprehension — transitive closure of outgoing calls.
TEST_F(PaperQueriesTest, Figure6TransitiveClosure) {
  auto result = session_.Run(R"(
    START n=node:node_auto_index('short_name: sr_media_change')
    MATCH n -[:calls*]-> m
    RETURN distinct m
  )");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<NodeId> nodes;
  for (const auto& row : result->rows) nodes.insert(row[0].node);
  EXPECT_EQ(nodes,
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b,
                              fixture_.get_sectorsize, fixture_.sr_do_ioctl}));
}

// Table 6 (Cypher 2.x syntax): group labels intersect.
TEST_F(PaperQueriesTest, Table6GroupLabels) {
  auto result = session_.Run(
      "MATCH (n:container:symbol {short_name: 'packet_command'}) RETURN n");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].node, fixture_.packet_command);
}

TEST_F(PaperQueriesTest, Table6GroupLabelExcludesNonMembers) {
  // Functions are symbols but not containers.
  auto result = session_.Run(
      "MATCH (n:container:symbol {short_name: 'helper_a'}) RETURN n");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
}

// Table 6 (Cypher 1.x syntax): the same query via the lucene index with an
// explicit type alternation.
TEST_F(PaperQueriesTest, Table6LuceneTypeAlternation) {
  auto result = session_.Run(
      "START n=node:node_auto_index('(type: struct OR type: union OR "
      "type: enum_def) AND short_name: packet_command') RETURN n");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].node, fixture_.packet_command);
}

// Find-references (Section 4.2): all incoming reference edges of the
// definition found by go-to-definition.
TEST_F(PaperQueriesTest, FindReferencesAfterGoToDefinition) {
  auto result = session_.Run(
      "START n=node:node_auto_index('short_name: cmd') "
      "MATCH n <-[r:writes_member]- writer RETURN writer, r");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);  // sr_do_ioctl and stale_writer
}

}  // namespace
}  // namespace frappe::query
