#ifndef FRAPPE_TESTS_QUERY_FIXTURE_H_
#define FRAPPE_TESTS_QUERY_FIXTURE_H_

#include "model/code_graph.h"

namespace frappe::query::testing {

// A miniature kernel-shaped code graph exercising every paper query
// (Figures 3-6). Node handles are exposed so tests can assert exact
// results.
//
// Build/link structure (Figure 3):
//   wakeup.elf -linked_from-> wakeup.o -compiled_from-> wakeup.c
//   wakeup.c -file_contains-> field `id` (in struct `message`)
//   sr.elf    -compiled_from-> sr.c -file_contains-> another field `id`
// Call/debug structure (Figures 4-6):
//   sr_media_change -calls(line 100)-> helper_a -calls-> sr_do_ioctl
//   sr_media_change -calls(line 236)-> get_sectorsize
//   sr_media_change -calls(line 300)-> helper_b -calls-> sr_do_ioctl
//   sr_do_ioctl -writes_member(line 150)-> cmd  <-contains- packet_command
//   stale_writer -writes_member-> cmd   (not reachable from any call site)
struct PaperFixture {
  model::CodeGraph graph;

  graph::NodeId wakeup_elf, wakeup_o, wakeup_c, sr_elf, sr_c;
  graph::NodeId message_struct, id_in_wakeup, id_in_sr;
  graph::NodeId packet_command, cmd_field;
  graph::NodeId sr_media_change, get_sectorsize, helper_a, helper_b;
  graph::NodeId sr_do_ioctl, stale_writer;
  graph::EdgeId write_edge;  // sr_do_ioctl -writes_member-> cmd

  PaperFixture() {
    using model::EdgeKind;
    using model::NodeKind;
    auto& g = graph;

    // Files and modules.
    wakeup_elf = g.AddNode(NodeKind::kModule, "wakeup.elf");
    wakeup_o = g.AddNode(NodeKind::kModule, "wakeup.o");
    wakeup_c = g.AddNode(NodeKind::kFile, "wakeup.c");
    sr_elf = g.AddNode(NodeKind::kModule, "sr.elf");
    sr_c = g.AddNode(NodeKind::kFile, "sr.c");
    Must(g.AddEdge(EdgeKind::kLinkedFrom, wakeup_elf, wakeup_o));
    Must(g.AddEdge(EdgeKind::kCompiledFrom, wakeup_o, wakeup_c));
    Must(g.AddEdge(EdgeKind::kCompiledFrom, sr_elf, sr_c));

    // Two fields named `id`, one per module (Figure 3 needs the module
    // constraint to discriminate).
    message_struct = g.AddNode(NodeKind::kStruct, "message");
    id_in_wakeup = g.AddNode(NodeKind::kField, "id");
    g.SetName(id_in_wakeup, "message::id");
    Must(g.AddEdge(EdgeKind::kContains, message_struct, id_in_wakeup));
    Must(g.AddEdge(EdgeKind::kFileContains, wakeup_c, message_struct));
    Must(g.AddEdge(EdgeKind::kFileContains, wakeup_c, id_in_wakeup));
    id_in_sr = g.AddNode(NodeKind::kField, "id");
    Must(g.AddEdge(EdgeKind::kFileContains, sr_c, id_in_sr));

    // Struct packet_command with field cmd (Figure 5).
    packet_command = g.AddNode(NodeKind::kStruct, "packet_command");
    cmd_field = g.AddNode(NodeKind::kField, "cmd");
    Must(g.AddEdge(EdgeKind::kContains, packet_command, cmd_field));
    Must(g.AddEdge(EdgeKind::kFileContains, sr_c, packet_command));

    // Functions.
    sr_media_change = g.AddNode(NodeKind::kFunction, "sr_media_change");
    get_sectorsize = g.AddNode(NodeKind::kFunction, "get_sectorsize");
    helper_a = g.AddNode(NodeKind::kFunction, "helper_a");
    helper_b = g.AddNode(NodeKind::kFunction, "helper_b");
    sr_do_ioctl = g.AddNode(NodeKind::kFunction, "sr_do_ioctl");
    stale_writer = g.AddNode(NodeKind::kFunction, "stale_writer");
    for (graph::NodeId fn : {sr_media_change, get_sectorsize, helper_a,
                             helper_b, sr_do_ioctl, stale_writer}) {
      Must(g.AddEdge(EdgeKind::kFileContains, sr_c, fn));
    }

    // Call sites with source lines (the Figure 5 control-flow
    // approximation compares USE_START_LINE values).
    AddCall(sr_media_change, helper_a, 100);
    AddCall(sr_media_change, get_sectorsize, 236);
    AddCall(sr_media_change, helper_b, 300);
    AddCall(helper_a, sr_do_ioctl, 12);
    AddCall(helper_b, sr_do_ioctl, 20);

    // Writers of packet_command.cmd.
    write_edge = Must(
        g.AddEdge(EdgeKind::kWritesMember, sr_do_ioctl, cmd_field));
    g.SetUseRange(write_edge, {NodeFile(), 150, 3, 150, 20});
    graph::EdgeId stale = Must(
        g.AddEdge(EdgeKind::kWritesMember, stale_writer, cmd_field));
    g.SetUseRange(stale, {NodeFile(), 400, 3, 400, 20});

    // A reference to `id` (go-to-definition target for Figure 4): the
    // name token sits at sr.c:104:16.
    graph::EdgeId read = Must(
        g.AddEdge(EdgeKind::kReadsMember, sr_media_change, id_in_sr));
    g.SetNameRange(read, {NodeFile(), 104, 16, 104, 18});
    g.SetUseRange(read, {NodeFile(), 104, 10, 104, 18});
  }

  int64_t NodeFile() const { return static_cast<int64_t>(sr_c); }

  void AddCall(graph::NodeId from, graph::NodeId to, int64_t line) {
    graph::EdgeId e = Must(
        graph.AddEdge(model::EdgeKind::kCalls, from, to));
    graph.SetUseRange(e, {NodeFile(), line, 9, line, 40});
    graph.SetNameRange(e, {NodeFile(), line, 9, line, 25});
  }

  static graph::EdgeId Must(Result<graph::EdgeId> result) {
    if (!result.ok()) std::abort();
    return *result;
  }
};

}  // namespace frappe::query::testing

#endif  // FRAPPE_TESTS_QUERY_FIXTURE_H_
