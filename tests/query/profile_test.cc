// PROFILE mode: executes for real, returns rows plus a plan annotated with
// per-operator stats. The db-hit and row counts must be deterministic
// across lane counts (only timings may differ), the annotated tree must be
// the EXPLAIN tree modulo the stats columns, and the slow-query log must
// fire when FRAPPE_SLOW_QUERY_MS says everything is slow.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using graph::NodeId;
using testing::PaperFixture;

// The paper's query set: Figures 3-6 plus the Table 6 variants, the corpus
// every observability claim is checked against.
std::vector<std::string> PaperQueries(const PaperFixture& fixture) {
  return {
      // Figure 3: symbol search constrained by module.
      "START m=node:node_auto_index('short_name: wakeup.elf') "
      "MATCH m -[:compiled_from|linked_from*]-> f "
      "WITH distinct f "
      "MATCH f -[:file_contains]-> (n:field{short_name: 'id'}) "
      "RETURN n",
      // Figure 4: go-to-definition.
      "START n=node:node_auto_index('short_name: id') "
      "WHERE (n) <-[{NAME_FILE_ID: " +
          std::to_string(fixture.NodeFile()) +
          ", NAME_START_LINE: 104, NAME_START_COLUMN: 16}]- () RETURN n",
      // Figure 5: debugging — writers of packet_command.cmd.
      "START from=node:node_auto_index('short_name: sr_media_change'), "
      "to=node:node_auto_index('short_name: get_sectorsize'), "
      "b=node:node_auto_index('short_name: packet_command') "
      "MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) "
      "<-[:contains]- b "
      "WITH to, from, writer, write "
      "MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to "
      "WHERE r.use_start_line >= s.use_start_line AND "
      "direct -[:calls*]-> writer "
      "RETURN distinct writer, write.use_start_line",
      // Figure 6: transitive closure of outgoing calls.
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN distinct m",
      // Table 6: group labels (Cypher 2.x syntax).
      "MATCH (n:container:symbol {short_name: 'packet_command'}) RETURN n",
      "MATCH (n:container:symbol {short_name: 'helper_a'}) RETURN n",
      // Table 6: lucene type alternation (Cypher 1.x syntax).
      "START n=node:node_auto_index('(type: struct OR type: union OR "
      "type: enum_def) AND short_name: packet_command') RETURN n",
  };
}

class ProfileTest : public ::testing::Test {
 protected:
  ProfileTest() : session_(fixture_.graph) {}

  QueryResult Run(const std::string& text, const ExecOptions& options = {}) {
    auto result = session_.Run(text, options);
    EXPECT_TRUE(result.ok()) << text << " => " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  // Canonical, timing-free digest of a result: sorted row renderings.
  std::vector<std::string> RowDigest(const QueryResult& result) {
    std::vector<std::string> rows;
    for (const auto& row : result.rows) {
      std::string line;
      for (const auto& value : row) {
        line += value.ToString(session_.database()) + "|";
      }
      rows.push_back(std::move(line));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  // Per-operator stats with the timing fields zeroed out.
  static std::string OperatorDigest(const ExecStats& stats) {
    std::string out;
    for (const OperatorStats& op : stats.operators) {
      out += "clause=" + std::to_string(op.clause_index) +
             " rows=" + std::to_string(op.rows) +
             " hits=" + std::to_string(op.db_hits.nodes) + "/" +
             std::to_string(op.db_hits.edges) + "/" +
             std::to_string(op.db_hits.properties) +
             " steps=" + std::to_string(op.steps) +
             " fp=" + std::to_string(op.fast_path) + "\n";
    }
    return out;
  }

  // Strips the " // est_rows=... rows=..." annotation suffix (plus the
  // column-alignment padding before it), recovering the bare operator tree.
  static std::string StripStats(const std::string& plan) {
    std::string out;
    size_t pos = 0;
    while (pos < plan.size()) {
      size_t eol = plan.find('\n', pos);
      if (eol == std::string::npos) eol = plan.size();
      std::string line = plan.substr(pos, eol - pos);
      size_t cut = line.find(" //");
      if (cut != std::string::npos) line.resize(cut);
      while (!line.empty() && line.back() == ' ') line.pop_back();
      out += line + "\n";
      pos = eol + 1;
    }
    return out;
  }

  PaperFixture fixture_;
  Session session_;
};

TEST_F(ProfileTest, ExplainReturnsPlanWithoutExecuting) {
  QueryResult r = Run(
      "EXPLAIN START n=node:node_auto_index('short_name: cmd') RETURN n");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.columns.empty());
  EXPECT_NE(r.plan.find("NodeByIndexSeek n"), std::string::npos) << r.plan;
  EXPECT_TRUE(r.stats.operators.empty());
}

TEST_F(ProfileTest, ProfileReturnsRowsAndAnnotatedPlan) {
  QueryResult r = Run(
      "PROFILE START n=node:node_auto_index('short_name: cmd') RETURN n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].node, fixture_.cmd_field);
  EXPECT_NE(r.plan.find("NodeByIndexSeek n"), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("est_rows="), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find(" rows="), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("db_hits="), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("time="), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find(" q="), std::string::npos) << r.plan;
  ASSERT_FALSE(r.stats.operators.empty());
  EXPECT_GT(r.stats.db_hits.Total(), 0u);
}

// Acceptance bar: PROFILE works on every paper query, on both execution
// paths, with non-zero db-hits and a stats entry per clause.
TEST_F(ProfileTest, EveryPaperQueryProfilesOnBothPaths) {
  for (const std::string& query : PaperQueries(fixture_)) {
    for (bool fast_path : {true, false}) {
      ExecOptions options;
      options.use_csr_fast_path = fast_path;
      QueryResult profiled = Run("PROFILE " + query, options);
      SCOPED_TRACE(query + (fast_path ? " [fast path]" : " [enumerate]"));
      EXPECT_FALSE(profiled.plan.empty());
      ASSERT_FALSE(profiled.stats.operators.empty());
      EXPECT_GT(profiled.stats.db_hits.Total(), 0u);
      EXPECT_NE(profiled.plan.find(" rows="), std::string::npos)
          << profiled.plan;
      EXPECT_NE(profiled.plan.find("est_rows="), std::string::npos)
          << profiled.plan;
      // Rows and columns must match the unprofiled run exactly.
      QueryResult plain = Run(query, options);
      EXPECT_EQ(RowDigest(profiled), RowDigest(plain));
      EXPECT_EQ(profiled.columns, plain.columns);
      // The final operator's row count is the result cardinality.
      EXPECT_EQ(profiled.stats.operators.back().rows, profiled.rows.size());
    }
  }
}

// db-hits and per-operator rows are execution facts, not timing artifacts:
// they must be identical across lane counts 1, 2 and 8.
TEST_F(ProfileTest, StatsDeterministicAcrossThreadCounts) {
  for (const std::string& query : PaperQueries(fixture_)) {
    SCOPED_TRACE(query);
    std::string baseline_ops;
    std::vector<std::string> baseline_rows;
    uint64_t baseline_hits = 0;
    bool first = true;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ExecOptions options;
      options.threads = threads;
      QueryResult r = Run("PROFILE " + query, options);
      std::string ops = OperatorDigest(r.stats);
      if (first) {
        baseline_ops = ops;
        baseline_rows = RowDigest(r);
        baseline_hits = r.stats.db_hits.Total();
        first = false;
        continue;
      }
      EXPECT_EQ(ops, baseline_ops) << "threads=" << threads;
      EXPECT_EQ(RowDigest(r), baseline_rows) << "threads=" << threads;
      EXPECT_EQ(r.stats.db_hits.Total(), baseline_hits)
          << "threads=" << threads;
    }
  }
}

// The PROFILE tree is the EXPLAIN tree: stripping the " // ..." stats
// columns must recover the same bare operator tree from both renderings.
TEST_F(ProfileTest, ProfilePlanMatchesExplainModuloStats) {
  for (const std::string& query : PaperQueries(fixture_)) {
    SCOPED_TRACE(query);
    QueryResult explained = Run("EXPLAIN " + query);
    QueryResult profiled = Run("PROFILE " + query);
    EXPECT_EQ(StripStats(profiled.plan), StripStats(explained.plan));
    // Both renderings carry the estimator's est_rows annotation; only
    // PROFILE adds the actual-row stats columns.
    EXPECT_NE(explained.plan.find("est_rows="), std::string::npos)
        << explained.plan;
    EXPECT_EQ(explained.plan.find(" db_hits="), std::string::npos)
        << explained.plan;
  }
}

// The shared renderer pads every annotated line to one column: on each
// plan, all " //" annotation markers start at the same offset, for both
// EXPLAIN and PROFILE (the satellite fix for the mis-aligned renderer).
TEST_F(ProfileTest, AnnotationsAlignToOneColumn) {
  for (const std::string& prefix : {std::string("EXPLAIN "),
                                    std::string("PROFILE ")}) {
    QueryResult r = Run(
        prefix +
        "START n=node:node_auto_index('short_name: sr_media_change') "
        "MATCH n -[:calls*]-> m RETURN distinct m");
    SCOPED_TRACE(prefix + "=> " + r.plan);
    size_t column = std::string::npos;
    size_t annotated = 0;
    size_t pos = 0;
    while (pos < r.plan.size()) {
      size_t eol = r.plan.find('\n', pos);
      if (eol == std::string::npos) eol = r.plan.size();
      std::string line = r.plan.substr(pos, eol - pos);
      size_t cut = line.find(" //");
      if (cut != std::string::npos) {
        if (column == std::string::npos) column = cut;
        EXPECT_EQ(cut, column) << line;
        ++annotated;
      }
      pos = eol + 1;
    }
    EXPECT_GT(annotated, 1u);
  }
}

TEST_F(ProfileTest, Figure6FastPathReportsFrontiersAndLanes) {
  const std::string fig6 =
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN distinct m";
  QueryResult r = Run("PROFILE " + fig6);
  EXPECT_TRUE(r.stats.fast_path_taken);
  const OperatorStats* fp = nullptr;
  for (const OperatorStats& op : r.stats.operators) {
    if (op.fast_path) fp = &op;
  }
  ASSERT_NE(fp, nullptr) << r.plan;
  // sr_media_change reaches {helper_a, get_sectorsize, helper_b} then
  // {sr_do_ioctl}: two BFS levels past the seed, non-empty frontiers.
  EXPECT_GE(fp->frontier_sizes.size(), 2u);
  for (uint64_t f : fp->frontier_sizes) EXPECT_GT(f, 0u);
  EXPECT_GE(fp->lanes, 1u);
  EXPECT_NE(r.plan.find("frontier=["), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("lanes="), std::string::npos) << r.plan;
  // Direction-optimizing kernel: each level's push/pull decision and the
  // switch count are annotated next to the frontier trajectory.
  EXPECT_EQ(fp->level_pull.size(), fp->frontier_sizes.size());
  EXPECT_EQ(fp->level_bitmap.size(), fp->frontier_sizes.size());
  EXPECT_NE(r.plan.find("direction=["), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("switches="), std::string::npos) << r.plan;

  // Forcing enumeration must produce the same rows without the fast path.
  ExecOptions options;
  options.use_csr_fast_path = false;
  QueryResult slow = Run("PROFILE " + fig6, options);
  EXPECT_FALSE(slow.stats.fast_path_taken);
  EXPECT_EQ(RowDigest(slow), RowDigest(r));
}

TEST_F(ProfileTest, ExecStatsAlwaysPopulated) {
  QueryResult r = Run("MATCH (n:module) RETURN n");
  EXPECT_GT(r.stats.db_hits.Total(), 0u);
  EXPECT_GT(r.stats.steps, 0u);
  EXPECT_GE(r.stats.elapsed_ms, 0.0);
  EXPECT_TRUE(r.stats.operators.empty());  // only PROFILE collects these
}

TEST_F(ProfileTest, SlowQueryLogFiresAtThresholdZero) {
  ::setenv("FRAPPE_SLOW_QUERY_MS", "0", 1);
  std::vector<std::string> logged;
  SetSlowQueryLogSinkForTesting(
      [&logged](const std::string& line) { logged.push_back(line); });
  auto result = session_.Run(
      "START n=node:node_auto_index('short_name: cmd') RETURN n");
  SetSlowQueryLogSinkForTesting(nullptr);
  ::unsetenv("FRAPPE_SLOW_QUERY_MS");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_NE(logged[0].find("slow query"), std::string::npos) << logged[0];
  // The entry is keyed by fingerprint + normalized text — the same key the
  // /stats fingerprint table and the query log use, so the three views
  // join on fp. The headline line strips the literal ('cmd' -> '?'); the
  // appended plan may still show it (operators want the real plan).
  EXPECT_NE(logged[0].find("fp="), std::string::npos) << logged[0];
  EXPECT_NE(logged[0].find("'short_name: ?'"), std::string::npos)
      << logged[0];
  std::string headline = logged[0].substr(0, logged[0].find('\n'));
  EXPECT_EQ(headline.find("short_name: cmd"), std::string::npos) << headline;
  // The log carries the plan so the on-call reader sees *why* it was slow.
  EXPECT_NE(logged[0].find("NodeByIndexSeek"), std::string::npos)
      << logged[0];
}

TEST_F(ProfileTest, SlowQueryLogSilentWhenUnset) {
  ::unsetenv("FRAPPE_SLOW_QUERY_MS");
  std::vector<std::string> logged;
  SetSlowQueryLogSinkForTesting(
      [&logged](const std::string& line) { logged.push_back(line); });
  auto result = session_.Run(
      "START n=node:node_auto_index('short_name: cmd') RETURN n");
  SetSlowQueryLogSinkForTesting(nullptr);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(logged.empty());
}

}  // namespace
}  // namespace frappe::query
