#include "query/lexer.h"

#include <gtest/gtest.h>

#include <vector>

namespace frappe::query {
namespace {

std::vector<TokenType> Types(std::string_view input) {
  auto tokens = Lex(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenType> out;
  for (const Token& t : *tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("START match RETURN pci_read_bases _x9");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 6u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kIdent);
  }
  EXPECT_TRUE((*tokens)[0].IsKeyword("start"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("START"));
  EXPECT_FALSE((*tokens)[3].IsKeyword("start"));
  EXPECT_EQ((*tokens)[3].text, "pci_read_bases");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("236 3.14 0");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 236);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.14);
  EXPECT_EQ((*tokens)[2].int_value, 0);
}

TEST(LexerTest, RangeDoesNotLexAsFloat) {
  // `*1..3` must produce STAR INT DOTDOT INT.
  EXPECT_EQ(Types("*1..3"),
            (std::vector<TokenType>{TokenType::kStar, TokenType::kInt,
                                    TokenType::kDotDot, TokenType::kInt,
                                    TokenType::kEnd}));
}

TEST(LexerTest, Strings) {
  auto tokens = Lex("'single' \"double\" 'wakeup.elf'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "single");
  EXPECT_EQ((*tokens)[1].text, "double");
  EXPECT_EQ((*tokens)[2].text, "wakeup.elf");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex(R"('it\'s')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, RelationshipPatternTokens) {
  // `-[:calls*]->` : MINUS LBRACKET COLON IDENT STAR RBRACKET MINUS GT.
  EXPECT_EQ(Types("-[:calls*]->"),
            (std::vector<TokenType>{
                TokenType::kMinus, TokenType::kLBracket, TokenType::kColon,
                TokenType::kIdent, TokenType::kStar, TokenType::kRBracket,
                TokenType::kMinus, TokenType::kGt, TokenType::kEnd}));
}

TEST(LexerTest, IncomingRelTokens) {
  // `<-[]-` : LT MINUS LBRACKET RBRACKET MINUS.
  EXPECT_EQ(Types("<-[]-"),
            (std::vector<TokenType>{TokenType::kLt, TokenType::kMinus,
                                    TokenType::kLBracket,
                                    TokenType::kRBracket, TokenType::kMinus,
                                    TokenType::kEnd}));
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(Types("= <> < <= > >="),
            (std::vector<TokenType>{TokenType::kEq, TokenType::kNe,
                                    TokenType::kLt, TokenType::kLe,
                                    TokenType::kGt, TokenType::kGe,
                                    TokenType::kEnd}));
}

TEST(LexerTest, LessThanNegativeNumberStaysSeparate) {
  // `a < -5` must not fuse `<-` into an arrow.
  EXPECT_EQ(Types("a < -5"),
            (std::vector<TokenType>{TokenType::kIdent, TokenType::kLt,
                                    TokenType::kMinus, TokenType::kInt,
                                    TokenType::kEnd}));
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(Types("( ) [ ] { } : , . | *"),
            (std::vector<TokenType>{
                TokenType::kLParen, TokenType::kRParen, TokenType::kLBracket,
                TokenType::kRBracket, TokenType::kLBrace, TokenType::kRBrace,
                TokenType::kColon, TokenType::kComma, TokenType::kDot,
                TokenType::kPipe, TokenType::kStar, TokenType::kEnd}));
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("a // trailing comment\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  auto result = Lex("a @ b");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = Lex("ab  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

}  // namespace
}  // namespace frappe::query
