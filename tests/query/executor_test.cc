#include "query/executor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "query/parser.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using graph::NodeId;
using testing::PaperFixture;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : session_(fixture_.graph) {}

  QueryResult Run(std::string_view text) {
    auto result = session_.Run(text);
    EXPECT_TRUE(result.ok()) << text << " => " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::set<NodeId> NodeColumn(const QueryResult& result, size_t col = 0) {
    std::set<NodeId> out;
    for (const auto& row : result.rows) {
      EXPECT_EQ(row[col].kind, ResultValue::Kind::kNode);
      out.insert(row[col].node);
    }
    return out;
  }

  PaperFixture fixture_;
  Session session_;
};

TEST_F(ExecutorTest, StartByIndexReturnsNodes) {
  QueryResult r = Run("START n=node:node_auto_index('short_name: cmd') "
                      "RETURN n");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.cmd_field});
  EXPECT_EQ(r.columns, std::vector<std::string>{"n"});
}

TEST_F(ExecutorTest, StartByIdAndAllNodes) {
  QueryResult by_id = Run("START n=node(0) RETURN n");
  EXPECT_EQ(NodeColumn(by_id), std::set<NodeId>{0});

  QueryResult all = Run("START n=node(*) RETURN count(*)");
  ASSERT_EQ(all.rows.size(), 1u);
  EXPECT_EQ(all.rows[0][0].value.AsInt(),
            static_cast<int64_t>(fixture_.graph.store().NodeCount()));
}

TEST_F(ExecutorTest, StartMissingIdFails) {
  auto result = session_.Run("START n=node(99999) RETURN n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, MatchOutgoingSingleHop) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls]-> m RETURN m");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.helper_a, fixture_.get_sectorsize,
                              fixture_.helper_b}));
}

TEST_F(ExecutorTest, MatchIncomingHop) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH n <-[:calls]- caller RETURN caller");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b}));
}

TEST_F(ExecutorTest, MatchUndirectedHop) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: helper_a') "
      "MATCH n -[:calls]- other RETURN other");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.sr_media_change, fixture_.sr_do_ioctl}));
}

TEST_F(ExecutorTest, MatchLabelFilter) {
  QueryResult r = Run("MATCH (n:module) RETURN n");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.wakeup_elf, fixture_.wakeup_o,
                              fixture_.sr_elf}));
}

TEST_F(ExecutorTest, MatchPropertyFilter) {
  QueryResult r = Run("MATCH (n:function {short_name: 'helper_a'}) RETURN n");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.helper_a});
}

TEST_F(ExecutorTest, MatchUnknownLabelMatchesNothing) {
  QueryResult r = Run("MATCH (n:no_such_label) RETURN n");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, MatchUnknownStringValueMatchesNothing) {
  QueryResult r = Run("MATCH (n {short_name: 'never_interned_xyz'}) RETURN n");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, MatchEdgePropertyFilter) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls {use_start_line: 236}]-> m RETURN m");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.get_sectorsize});
}

TEST_F(ExecutorTest, VarLengthClosure) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN distinct m");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b,
                              fixture_.get_sectorsize, fixture_.sr_do_ioctl}));
}

TEST_F(ExecutorTest, VarLengthBounded) {
  QueryResult two = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*2]-> m RETURN distinct m");
  EXPECT_EQ(NodeColumn(two), std::set<NodeId>{fixture_.sr_do_ioctl});
}

TEST_F(ExecutorTest, VarLengthWithoutDistinctYieldsPathCount) {
  // Two distinct edge paths reach sr_do_ioctl (via helper_a and helper_b):
  // without DISTINCT, Cypher path-enumeration semantics surface both.
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*2]-> m RETURN m");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, ChainThroughMiddleBoundNode) {
  // Anchor selection must handle chains whose bound variable is in the
  // middle: direct <-[s:calls]- from -[r:calls]-> to.
  QueryResult r = Run(
      "START from=node:node_auto_index('short_name: sr_media_change') "
      "MATCH direct <-[s:calls]- from -[r:calls {use_start_line: 236}]-> to "
      "RETURN direct, to");
  // r must be the line-236 call to get_sectorsize; s any *other* call edge
  // (relationship uniqueness), so direct is helper_a or helper_b.
  EXPECT_EQ(NodeColumn(r, 0),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b}));
  EXPECT_EQ(NodeColumn(r, 1), std::set<NodeId>{fixture_.get_sectorsize});
}

TEST_F(ExecutorTest, RelationshipUniquenessWithinMatch) {
  // a -[r1]-> b <-[r2]- a with a single edge between a and b can only match
  // if r1 != r2 — impossible here, so zero rows.
  QueryResult r = Run(
      "START a=node:node_auto_index('short_name: helper_a') "
      "MATCH a -[r1:calls]-> b, a -[r2:calls]-> b RETURN b");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, RelationshipsReusableAcrossMatchClauses) {
  QueryResult r = Run(
      "START a=node:node_auto_index('short_name: helper_a') "
      "MATCH a -[r1:calls]-> b WITH a, b MATCH a -[r2:calls]-> b RETURN b");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.sr_do_ioctl});
}

TEST_F(ExecutorTest, WhereComparison) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[r:calls]-> m WHERE r.use_start_line > 150 RETURN m");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.get_sectorsize, fixture_.helper_b}));
}

TEST_F(ExecutorTest, WhereNullComparisonIsFalse) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[r:calls]-> m WHERE r.no_such_prop > 0 RETURN m");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, WhereStringComparison) {
  QueryResult r = Run(
      "MATCH (n:function) WHERE n.short_name = 'helper_b' RETURN n");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.helper_b});
}

TEST_F(ExecutorTest, WherePatternPredicate) {
  // Functions that transitively call sr_do_ioctl.
  QueryResult r = Run(
      "START w=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH (n:function) WHERE n -[:calls*]-> w RETURN n");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.sr_media_change, fixture_.helper_a,
                              fixture_.helper_b}));
}

TEST_F(ExecutorTest, WhereNotPattern) {
  QueryResult r = Run(
      "START w=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH (n:function) WHERE NOT n -[:calls*]-> w RETURN n");
  EXPECT_EQ(NodeColumn(r),
            (std::set<NodeId>{fixture_.get_sectorsize, fixture_.sr_do_ioctl,
                              fixture_.stale_writer}));
}

TEST_F(ExecutorTest, WhereHasProperty) {
  QueryResult r = Run("MATCH (n:field) WHERE has(n.name) RETURN n");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.id_in_wakeup});
}

TEST_F(ExecutorTest, WithProjectsAndRenames) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: helper_a') "
      "MATCH n -[:calls]-> m WITH m AS callee RETURN callee");
  EXPECT_EQ(r.columns, std::vector<std::string>{"callee"});
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.sr_do_ioctl});
}

TEST_F(ExecutorTest, WithDistinctCollapses) {
  // Both helpers call sr_do_ioctl; WITH distinct m collapses to one row.
  QueryResult r = Run(
      "MATCH (n:function) -[:calls]-> m "
      "WITH distinct m MATCH m -[:calls]-> k RETURN m, k");
  // m with outgoing calls: sr_media_change's callees that call again:
  // helper_a and helper_b (both -> sr_do_ioctl).
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, ReturnDistinct) {
  QueryResult with = Run(
      "MATCH (n:function) -[:calls]-> (m {short_name: 'sr_do_ioctl'}) "
      "RETURN distinct m");
  EXPECT_EQ(with.rows.size(), 1u);
}

TEST_F(ExecutorTest, ReturnEdgePropertyOfCarriedEdgeVar) {
  QueryResult r = Run(
      "START w=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH w -[write:writes_member]-> f "
      "WITH write RETURN write.use_start_line");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(), 150);
}

TEST_F(ExecutorTest, CountStarAndGrouping) {
  QueryResult r = Run(
      "MATCH (caller:function) -[:calls]-> m RETURN caller, count(*) "
      "ORDER BY caller");
  // sr_media_change: 3 calls, helper_a: 1, helper_b: 1.
  ASSERT_EQ(r.rows.size(), 3u);
  int64_t total = 0;
  for (const auto& row : r.rows) total += row[1].value.AsInt();
  EXPECT_EQ(total, 5);
}

TEST_F(ExecutorTest, CountDistinct) {
  // Both helpers call the same target: 2 edges, 1 distinct callee.
  QueryResult r = Run(
      "MATCH (n {short_name: 'sr_do_ioctl'}) <-[:calls]- caller "
      "RETURN count(distinct n), count(*)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].value.AsInt(), 2);
}

TEST_F(ExecutorTest, OrderByPropertyAndLimit) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[r:calls]-> m "
      "RETURN m, r.use_start_line ORDER BY r.use_start_line DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].value.AsInt(), 300);
  EXPECT_EQ(r.rows[1][1].value.AsInt(), 236);
}

TEST_F(ExecutorTest, OrderBySkip) {
  QueryResult r = Run(
      "MATCH (n:module) RETURN n.short_name AS name ORDER BY name SKIP 1");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, IdFunction) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: cmd') RETURN id(n)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(),
            static_cast<int64_t>(fixture_.cmd_field));
}

TEST_F(ExecutorTest, UndefinedVariableFails) {
  auto result = session_.Run("START n=node(0) RETURN bogus_var");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, MissingReturnFails) {
  auto result = session_.Run("START n=node(0) MATCH n --> m");
  ASSERT_FALSE(result.ok());
}

TEST_F(ExecutorTest, StepBudgetAborts) {
  ExecOptions options;
  options.max_steps = 5;
  auto result = session_.Run("MATCH (n:function) -[:calls*]-> m RETURN m",
                             options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecutorTest, DeadlineFiresWithinTolerance) {
  // The deadline is only checked every kDeadlineCheckInterval (1024) steps
  // to keep Tick() a mask test on the hot path. This regression test pins
  // the consequence: on a query with millions of cheap candidate steps
  // (a 5-way cartesian product over all nodes), the deadline must still
  // abort execution promptly — 1024 cheap steps are microseconds, so the
  // enforcement lag stays far under the test's tolerance.
  ExecOptions options;
  options.deadline_ms = 50;
  auto start = std::chrono::steady_clock::now();
  auto result = session_.Run(
      "START a=node(*), b=node(*), c=node(*), d=node(*), e=node(*) "
      "RETURN count(*)",
      options);
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Generous bound (10x the deadline) so sanitizer builds pass, yet tight
  // enough to catch the interval degenerating into seconds of lag.
  EXPECT_LT(elapsed_ms, 500.0);
}

TEST_F(ExecutorTest, StepsReportedOnSuccess) {
  QueryResult r = Run("MATCH (n:module) RETURN n");
  EXPECT_GT(r.steps, 0u);
}

TEST_F(ExecutorTest, PropertyNameAliasesResolve) {
  // Paper Figure 4 writes NAME_START_COLUMN for the key Table 2 calls
  // NAME_START_COL; the Frappé database accepts both.
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[r:reads_member]-> f "
      "WHERE r.NAME_START_COLUMN = 16 RETURN f");
  EXPECT_EQ(NodeColumn(r), std::set<NodeId>{fixture_.id_in_sr});
}


TEST_F(ExecutorTest, ShortestPathBindsFewestEdges) {
  // a->c->d (2 hops) beats a->b->c->d: sr_media_change -> sr_do_ioctl is
  // 2 hops via either helper.
  QueryResult r = Run(
      "START a=node:node_auto_index('short_name: sr_media_change'), "
      "b=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH shortestPath(a -[r:calls*]-> b) RETURN length(r)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(), 2);
}

TEST_F(ExecutorTest, ShortestPathUnreachableYieldsNoRow) {
  QueryResult r = Run(
      "START a=node:node_auto_index('short_name: get_sectorsize'), "
      "b=node:node_auto_index('short_name: sr_media_change') "
      "MATCH shortestPath(a -[:calls*]-> b) RETURN a");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, ShortestPathRespectsMaxLength) {
  QueryResult r = Run(
      "START a=node:node_auto_index('short_name: sr_media_change'), "
      "b=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH shortestPath(a -[:calls*..1]-> b) RETURN a");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, ShortestPathRequiresBoundEndpoints) {
  auto result = session_.Run(
      "MATCH shortestPath((a:function) -[:calls*]-> (b:function)) RETURN a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, ShortestPathRejectsFixedLengthRel) {
  auto result = session_.Run(
      "START a=node(0), b=node(1) "
      "MATCH shortestPath(a -[:calls]-> b) RETURN a");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecutorTest, LengthOfStringProperty) {
  QueryResult r = Run(
      "START n=node:node_auto_index('short_name: cmd') "
      "RETURN length(n.short_name)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(), 3);
}

TEST_F(ExecutorTest, GlobalCountOverNoMatchesIsZeroRow) {
  QueryResult r = Run(
      "MATCH (n:function {short_name: 'does_not_exist'}) RETURN count(*)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value.AsInt(), 0);
}


TEST_F(ExecutorTest, IndexBackedMatchAnchorReturnsSameResults) {
  // MATCH with an indexed string property must use the auto index (few
  // engine steps) and agree with the label-scan answer.
  QueryResult seek = Run(
      "MATCH (n {short_name: 'helper_a'}) -[:calls]-> m RETURN m");
  EXPECT_EQ(NodeColumn(seek), std::set<NodeId>{fixture_.sr_do_ioctl});
  // Far fewer candidates tested than a full node scan would need.
  EXPECT_LT(seek.steps, fixture_.graph.store().NodeCount());
}

}  // namespace
}  // namespace frappe::query
