#include "query/fast_path.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using testing::PaperFixture;

class FastPathTest : public ::testing::Test {
 protected:
  FastPathTest() : session_(fixture_.graph) {}

  // Runs `text` and returns the rows rendered to strings, sorted — a
  // representation independent of emission order.
  std::vector<std::string> Rows(std::string_view text,
                                const ExecOptions& options) {
    auto result = session_.Run(text, options);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> rows;
    if (!result.ok()) return rows;
    for (const auto& row : result->rows) {
      std::string line;
      for (const auto& value : row) {
        line += value.ToString(session_.database()) + "|";
      }
      rows.push_back(std::move(line));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  // Asserts the query produces identical rows with the fast path on (at
  // several thread counts) and off.
  void ExpectFastPathTransparent(std::string_view text) {
    ExecOptions off;
    off.use_csr_fast_path = false;
    std::vector<std::string> expected = Rows(text, off);
    for (size_t threads : {1u, 2u, 8u}) {
      ExecOptions on;
      on.use_csr_fast_path = true;
      on.threads = threads;
      EXPECT_EQ(Rows(text, on), expected)
          << text << " threads=" << threads;
    }
  }

  PaperFixture fixture_;
  Session session_;
};

constexpr const char* kFigure6 =
    "START n=node:node_auto_index('short_name: sr_media_change') "
    "MATCH n -[:calls*]-> m RETURN distinct m";

TEST_F(FastPathTest, Figure6SameRowsWithAndWithoutFastPath) {
  ExpectFastPathTransparent(kFigure6);
  // And the closure is the expected one.
  std::vector<std::string> rows = Rows(kFigure6, {});
  EXPECT_EQ(rows.size(), 4u);  // helper_a, helper_b, get_sectorsize, ioctl
}

TEST_F(FastPathTest, ReversedDirectionAnchorsOnBoundTarget) {
  // The bound endpoint is on the right: traverse against the arrow.
  ExpectFastPathTransparent(
      "START w=node:node_auto_index('short_name: sr_do_ioctl') "
      "MATCH m -[:calls*]-> w RETURN distinct m");
}

TEST_F(FastPathTest, CountDistinctAggregation) {
  ExpectFastPathTransparent(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN count(distinct m) AS c");
}

TEST_F(FastPathTest, ZeroMinLengthIncludesSeed) {
  ExpectFastPathTransparent(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*0..]-> m RETURN distinct m");
}

TEST_F(FastPathTest, WithDistinctPipeline) {
  ExpectFastPathTransparent(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m WITH distinct m AS callee "
      "RETURN callee");
}

TEST_F(FastPathTest, MultiplicityObservingQueryUnaffected) {
  // RETURN m (no DISTINCT) counts one row per path — ineligible, but must
  // still execute correctly with the fast-path switch on.
  ExpectFastPathTransparent(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN m");
}

TEST_F(FastPathTest, EligibilityRules) {
  auto eligibility = [](std::string_view text) {
    auto parsed = Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    for (size_t i = 0; i < parsed->clauses.size(); ++i) {
      if (const auto* match =
              std::get_if<MatchClause>(&parsed->clauses[i])) {
        return ChainEligibleForCsrClosure(*parsed, i, match->chains[0]);
      }
    }
    ADD_FAILURE() << "no MATCH clause in " << text;
    return FastPathDecision{};
  };
  EXPECT_TRUE(eligibility(kFigure6).eligible);
  // One row per path reaches RETURN.
  EXPECT_FALSE(
      eligibility("MATCH n -[:calls*]-> m RETURN m").eligible);
  // count(*) observes multiplicity.
  EXPECT_FALSE(
      eligibility("MATCH n -[:calls*]-> m RETURN count(*) AS c").eligible);
  // count(distinct m) does not.
  EXPECT_TRUE(
      eligibility("MATCH n -[:calls*]-> m RETURN count(distinct m) AS c")
          .eligible);
  // The relationship variable binds the path edges.
  EXPECT_FALSE(
      eligibility("MATCH n -[r:calls*]-> m RETURN distinct m").eligible);
  // Fixed-length hop.
  EXPECT_FALSE(
      eligibility("MATCH n -[:calls]-> m RETURN distinct m").eligible);
  // Shallow bounded expansion stays on the enumerator.
  EXPECT_FALSE(
      eligibility("MATCH n -[:calls*1..2]-> m RETURN distinct m").eligible);
  // Deep bounded expansion qualifies.
  EXPECT_TRUE(
      eligibility("MATCH n -[:calls*1..20]-> m RETURN distinct m").eligible);
  // A filter between MATCH and the collapse is scanned through.
  EXPECT_TRUE(
      eligibility("MATCH n -[:calls*]-> m WHERE m.short_name = 'x' "
                  "RETURN distinct m")
          .eligible);
}

TEST_F(FastPathTest, ExplainReportsFastPath) {
  auto plan = ExplainText(session_.database(), kFigure6);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("CSR closure fast path"), std::string::npos) << *plan;
}

TEST_F(FastPathTest, StepBudgetSurfacesThroughFastPath) {
  ExecOptions options;
  options.max_steps = 2;
  options.use_csr_fast_path = true;
  auto result = session_.Run(kFigure6, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("step budget"),
            std::string::npos);
}

TEST_F(FastPathTest, TargetLabelFilterApplies) {
  // Post-filtering the closure members by the target pattern's label must
  // match the enumerating path.
  ExpectFastPathTransparent(
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> (m:function) RETURN distinct m");
}

}  // namespace
}  // namespace frappe::query
