// Status plumbing for the live-diagnostics control plane: cancelled and
// deadline-exceeded queries must land in the per-fingerprint stats and the
// structured query log with the right status string, and the active-query
// registry must be empty afterwards — on every exit path, under
// concurrency included (run under TSan via the `parallel` label).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "extractor/synthetic.h"
#include "gtest/gtest.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::query {
namespace {

using obs::QueryRegistry;

// A generated kernel-shaped graph big enough that the slow-path closure
// enumeration runs well past the executor's 1024-step check cadence.
// Shared across tests — generation dominates the suite's runtime.
model::CodeGraph& KernelGraph() {
  static model::CodeGraph* graph = [] {
    auto* g = new model::CodeGraph();
    extractor::GraphScale scale;
    scale.factor = 0.02;
    extractor::GenerateKernelGraph(scale, g);
    return g;
  }();
  return *graph;
}

// A function with outgoing calls, so `-[:calls*]->` from it does real work.
std::string ClosureSeedName() {
  const model::CodeGraph& g = KernelGraph();
  const graph::GraphView& view = g.view();
  graph::TypeId calls = g.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = g.schema().key(model::PropKey::kShortName);
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name = view.GetNodeString(view.GetEdge(e).src,
                                               short_name);
    if (!name.empty()) return std::string(name);
  }
  return "";
}

std::string ClosureQuery(const std::string& seed) {
  return "START n=node:node_auto_index('short_name: " + seed +
         "') MATCH n -[:calls*]-> m RETURN distinct m";
}

uint64_t ErrorsForFingerprint(uint64_t fingerprint) {
  for (const obs::QueryStats::Snapshot& s :
       obs::QueryStats::Global().SnapshotAll()) {
    if (s.fingerprint == fingerprint) return s.errors;
  }
  return 0;
}

TEST(CancelTest, PreTrippedTokenCancelsSlowPathEnumeration) {
  std::string seed = ClosureSeedName();
  ASSERT_FALSE(seed.empty());
  Session session(KernelGraph());

  std::string query = ClosureQuery(seed);
  uint64_t fp = obs::NormalizeQuery(query).fingerprint;
  uint64_t errors_before = ErrorsForFingerprint(fp);

  std::atomic<bool> cancel{true};  // tripped before the query starts
  ExecOptions options;
  options.use_csr_fast_path = false;  // force edge-distinct enumeration
  options.deadline_ms = 60000;        // backstop: broken cancel still ends
  options.cancel = &cancel;
  auto result = session.Run(query, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_STREQ(StatusCodeName(result.status().code()), "Cancelled");

  // The failure is aggregated into the fingerprint stats table...
  EXPECT_EQ(ErrorsForFingerprint(fp), errors_before + 1);
  // ...and the registry entry is gone.
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
}

TEST(CancelTest, PreTrippedTokenCancelsCsrFastPath) {
  // The fast path hands the token to the analytics kernel, which polls it
  // per BFS level — a pre-tripped token cancels even the tiny fixture.
  testing::PaperFixture fixture;
  Session session(fixture.graph);
  std::atomic<bool> cancel{true};
  ExecOptions options;
  options.cancel = &cancel;
  auto result = session.Run(
      "START n=node:node_auto_index('short_name: sr_media_change')"
      " MATCH n -[:calls*]-> m RETURN distinct m",
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
}

TEST(CancelTest, MidFlightCancelThroughTheRegistry) {
  std::string seed = ClosureSeedName();
  ASSERT_FALSE(seed.empty());
  Session session(KernelGraph());

  Result<QueryResult> result = Status::Internal("runner never finished");
  std::thread runner([&] {
    ExecOptions options;
    options.use_csr_fast_path = false;
    options.deadline_ms = 60000;  // backstop if cancellation is broken
    result = session.Run(ClosureQuery(seed), options);
  });

  // Wait until the query is visible in the registry, then kill it the way
  // /debug/cancel does.
  uint64_t id = 0;
  for (int i = 0; i < 2000 && id == 0; ++i) {
    for (const QueryRegistry::Snapshot& s :
         QueryRegistry::Global().SnapshotAll()) {
      id = s.id;
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u) << "query never appeared in the registry";
  EXPECT_TRUE(QueryRegistry::Global().Cancel(id));
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
}

TEST(CancelTest, CancelledAndDeadlineStatusesReachTheQueryLog) {
  std::string seed = ClosureSeedName();
  ASSERT_FALSE(seed.empty());
  Session session(KernelGraph());
  std::string query = ClosureQuery(seed);
  uint64_t fp = obs::NormalizeQuery(query).fingerprint;

  const std::string path = "cancel_test_qlog.jsonl";
  std::remove(path.c_str());
  obs::QueryLog::Options qlog_options;
  qlog_options.path = path;
  ASSERT_TRUE(obs::QueryLog::Global().Enable(qlog_options).ok());

  {
    std::atomic<bool> cancel{true};
    ExecOptions options;
    options.use_csr_fast_path = false;
    options.deadline_ms = 60000;
    options.cancel = &cancel;
    auto result = session.Run(query, options);
    ASSERT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  {
    ExecOptions options;
    options.use_csr_fast_path = false;
    options.deadline_ms = 1;  // expires almost immediately
    auto result = session.Run(query, options);
    ASSERT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().ToString();
  }
  ASSERT_TRUE(obs::QueryLog::Global().Flush().ok());
  obs::QueryLog::Global().Disable();

  auto records = obs::ReadQueryLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  int cancelled = 0, deadline = 0;
  for (const obs::QueryLogRecord& r : *records) {
    if (r.fingerprint != fp) continue;
    if (r.status == "Cancelled") ++cancelled;
    if (r.status == "DeadlineExceeded") ++deadline;
  }
  EXPECT_EQ(cancelled, 1);
  EXPECT_EQ(deadline, 1);
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
  std::remove(path.c_str());
}

TEST(CancelTest, ConcurrentRunsLeaveNoRegistryEntriesBehind) {
  testing::PaperFixture fixture;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> cancelled_runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fixture, &cancelled_runs] {
      Session session(fixture.graph);
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 3 == 0) {
          // Pre-tripped token through the CSR fast path: exercises the
          // registry's token aliasing + the analytics cancel under load.
          std::atomic<bool> cancel{true};
          ExecOptions options;
          options.cancel = &cancel;
          auto result = session.Run(
              "START n=node:node_auto_index('short_name: sr_media_change')"
              " MATCH n -[:calls*]-> m RETURN distinct m",
              options);
          if (!result.ok() &&
              result.status().code() == StatusCode::kCancelled) {
            cancelled_runs.fetch_add(1);
          }
        } else {
          auto result = session.Run("MATCH (f:function) RETURN f");
          EXPECT_TRUE(result.ok()) << result.status().ToString();
        }
      }
    });
  }
  // A concurrent observer, like the stats server scraping /debug/queryz.
  std::thread observer([] {
    for (int i = 0; i < 100; ++i) {
      QueryRegistry::Global().DumpJson();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (std::thread& t : threads) t.join();
  observer.join();
  EXPECT_GT(cancelled_runs.load(), 0);
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
}

}  // namespace
}  // namespace frappe::query
