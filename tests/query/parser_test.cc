#include "query/parser.h"

#include <gtest/gtest.h>

namespace frappe::query {
namespace {

const StartClause& AsStart(const Clause& c) {
  return std::get<StartClause>(c);
}
const MatchClause& AsMatch(const Clause& c) {
  return std::get<MatchClause>(c);
}
const WhereClause& AsWhere(const Clause& c) {
  return std::get<WhereClause>(c);
}
const ReturnClause& AsReturn(const Clause& c) {
  return std::get<ReturnClause>(c);
}

TEST(ParserTest, StartIndexQuery) {
  auto q = Parse("START n=node:node_auto_index('short_name: id') RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->clauses.size(), 2u);
  const StartClause& start = AsStart(q->clauses[0]);
  ASSERT_EQ(start.items.size(), 1u);
  EXPECT_EQ(start.items[0].var, "n");
  EXPECT_EQ(start.items[0].kind, StartItem::Kind::kIndexQuery);
  EXPECT_EQ(start.items[0].index_query, "short_name: id");
}

TEST(ParserTest, StartMultipleItems) {
  auto q = Parse(
      "START from=node:node_auto_index('short_name: a'),"
      "      to=node:node_auto_index('short_name: b') RETURN from");
  ASSERT_TRUE(q.ok()) << q.status();
  const StartClause& start = AsStart(q->clauses[0]);
  ASSERT_EQ(start.items.size(), 2u);
  EXPECT_EQ(start.items[0].var, "from");
  EXPECT_EQ(start.items[1].var, "to");
}

TEST(ParserTest, StartByIdAndAll) {
  auto q = Parse("START a=node(3, 5), b=node(*) RETURN a");
  ASSERT_TRUE(q.ok()) << q.status();
  const StartClause& start = AsStart(q->clauses[0]);
  EXPECT_EQ(start.items[0].kind, StartItem::Kind::kByIds);
  EXPECT_EQ(start.items[0].ids, (std::vector<uint64_t>{3, 5}));
  EXPECT_EQ(start.items[1].kind, StartItem::Kind::kAllNodes);
}

TEST(ParserTest, MatchSimpleOutgoing) {
  auto q = Parse("MATCH n -[:calls]-> m RETURN m");
  ASSERT_TRUE(q.ok()) << q.status();
  const MatchClause& match = AsMatch(q->clauses[0]);
  ASSERT_EQ(match.chains.size(), 1u);
  const PatternChain& chain = match.chains[0];
  ASSERT_EQ(chain.nodes.size(), 2u);
  ASSERT_EQ(chain.rels.size(), 1u);
  EXPECT_EQ(chain.nodes[0].var, "n");
  EXPECT_EQ(chain.nodes[1].var, "m");
  EXPECT_EQ(chain.rels[0].types, std::vector<std::string>{"calls"});
  EXPECT_EQ(chain.rels[0].direction, graph::Direction::kOut);
  EXPECT_FALSE(chain.rels[0].var_length);
}

TEST(ParserTest, MatchIncomingAndUndirected) {
  auto q = Parse("MATCH a <-[:x]- b -- c RETURN a");
  ASSERT_TRUE(q.ok()) << q.status();
  const PatternChain& chain = AsMatch(q->clauses[0]).chains[0];
  ASSERT_EQ(chain.rels.size(), 2u);
  EXPECT_EQ(chain.rels[0].direction, graph::Direction::kIn);
  EXPECT_EQ(chain.rels[1].direction, graph::Direction::kBoth);
  EXPECT_TRUE(chain.rels[1].types.empty());
}

TEST(ParserTest, MatchBareArrow) {
  auto q = Parse("MATCH a --> b RETURN b");
  ASSERT_TRUE(q.ok()) << q.status();
  const PatternChain& chain = AsMatch(q->clauses[0]).chains[0];
  EXPECT_EQ(chain.rels[0].direction, graph::Direction::kOut);
  EXPECT_TRUE(chain.rels[0].types.empty());
}

TEST(ParserTest, TypeAlternation) {
  auto q = Parse("MATCH m -[:compiled_from|linked_from*]-> f RETURN f");
  ASSERT_TRUE(q.ok()) << q.status();
  const RelPattern& rel = AsMatch(q->clauses[0]).chains[0].rels[0];
  EXPECT_EQ(rel.types,
            (std::vector<std::string>{"compiled_from", "linked_from"}));
  EXPECT_TRUE(rel.var_length);
  EXPECT_EQ(rel.min_length, 1u);
  EXPECT_EQ(rel.max_length, kUnboundedLength);
}

TEST(ParserTest, TypeAlternationWithRepeatedColon) {
  auto q = Parse("MATCH m -[:a|:b]-> f RETURN f");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(AsMatch(q->clauses[0]).chains[0].rels[0].types,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, VarLengthRanges) {
  auto q = Parse("MATCH a -[*2]-> b, c -[*1..3]-> d, e -[*..4]-> f RETURN a");
  ASSERT_TRUE(q.ok()) << q.status();
  const MatchClause& match = AsMatch(q->clauses[0]);
  ASSERT_EQ(match.chains.size(), 3u);
  EXPECT_EQ(match.chains[0].rels[0].min_length, 2u);
  EXPECT_EQ(match.chains[0].rels[0].max_length, 2u);
  EXPECT_EQ(match.chains[1].rels[0].min_length, 1u);
  EXPECT_EQ(match.chains[1].rels[0].max_length, 3u);
  EXPECT_EQ(match.chains[2].rels[0].min_length, 1u);
  EXPECT_EQ(match.chains[2].rels[0].max_length, 4u);
}

TEST(ParserTest, NodeLabelsAndProps) {
  auto q = Parse("MATCH (n:container:symbol {name: 'foo'}) RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  const NodePattern& node = AsMatch(q->clauses[0]).chains[0].nodes[0];
  EXPECT_EQ(node.var, "n");
  EXPECT_EQ(node.labels, (std::vector<std::string>{"container", "symbol"}));
  ASSERT_EQ(node.props.size(), 1u);
  EXPECT_EQ(node.props[0].key, "name");
  EXPECT_EQ(node.props[0].value.kind, Literal::Kind::kString);
  EXPECT_EQ(node.props[0].value.string_value, "foo");
}

TEST(ParserTest, AnonymousNodeWithProps) {
  auto q = Parse("MATCH writer -[w:writes_member]-> ({SHORT_NAME:'cmd'}) "
                 "RETURN writer");
  ASSERT_TRUE(q.ok()) << q.status();
  const PatternChain& chain = AsMatch(q->clauses[0]).chains[0];
  EXPECT_TRUE(chain.nodes[1].var.empty());
  ASSERT_EQ(chain.nodes[1].props.size(), 1u);
  EXPECT_EQ(chain.nodes[1].props[0].key, "SHORT_NAME");
  EXPECT_EQ(chain.rels[0].var, "w");
}

TEST(ParserTest, RelPropertyMap) {
  auto q = Parse("MATCH a -[r:calls {use_start_line: 236}]-> b RETURN r");
  ASSERT_TRUE(q.ok()) << q.status();
  const RelPattern& rel = AsMatch(q->clauses[0]).chains[0].rels[0];
  ASSERT_EQ(rel.props.size(), 1u);
  EXPECT_EQ(rel.props[0].key, "use_start_line");
  EXPECT_EQ(rel.props[0].value.int_value, 236);
}

TEST(ParserTest, NegativeNumberLiteralInProps) {
  auto q = Parse("MATCH (n {value: -3}) RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(AsMatch(q->clauses[0]).chains[0].nodes[0].props[0].value.int_value,
            -3);
}

TEST(ParserTest, WherePatternPredicate) {
  auto q = Parse("START n=node(1) WHERE (n) <-[{name_start_line: 104}]- () "
                 "RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  const WhereClause& where = AsWhere(q->clauses[1]);
  const auto* pattern = std::get_if<PatternExpr>(&where.predicate->node);
  ASSERT_NE(pattern, nullptr);
  EXPECT_EQ(pattern->chain.rels.size(), 1u);
  EXPECT_EQ(pattern->chain.rels[0].direction, graph::Direction::kIn);
  EXPECT_EQ(pattern->chain.rels[0].props.size(), 1u);
}

TEST(ParserTest, WhereComparisonAndPattern) {
  auto q = Parse(
      "START n=node(1) "
      "WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> w "
      "RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  const WhereClause& where = AsWhere(q->clauses[1]);
  const auto* boolean = std::get_if<BoolExpr>(&where.predicate->node);
  ASSERT_NE(boolean, nullptr);
  EXPECT_EQ(boolean->op, BoolOp::kAnd);
  EXPECT_NE(std::get_if<CompareExpr>(&boolean->left->node), nullptr);
  EXPECT_NE(std::get_if<PatternExpr>(&boolean->right->node), nullptr);
}

TEST(ParserTest, WhereOperatorPrecedenceOrOverAnd) {
  auto q = Parse("START n=node(1) WHERE a = 1 AND b = 2 OR c = 3 RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto* top = std::get_if<BoolExpr>(&AsWhere(q->clauses[1])
                                              .predicate->node);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->op, BoolOp::kOr);
  const auto* left = std::get_if<BoolExpr>(&top->left->node);
  ASSERT_NE(left, nullptr);
  EXPECT_EQ(left->op, BoolOp::kAnd);
}

TEST(ParserTest, WhereNot) {
  auto q = Parse("START n=node(1) WHERE NOT n.flag = true RETURN n");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_NE(std::get_if<NotExpr>(&AsWhere(q->clauses[1]).predicate->node),
            nullptr);
}

TEST(ParserTest, WithDistinctAndReturnDistinct) {
  auto q = Parse(
      "START n=node(1) MATCH n --> f WITH distinct f "
      "MATCH f --> g RETURN distinct g");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->clauses.size(), 5u);
  const WithClause& with = std::get<WithClause>(q->clauses[2]);
  EXPECT_TRUE(with.distinct);
  ASSERT_EQ(with.items.size(), 1u);
  EXPECT_EQ(with.items[0].alias, "f");
  EXPECT_TRUE(AsReturn(q->clauses[4]).distinct);
}

TEST(ParserTest, ReturnItemsWithAliasesAndProps) {
  auto q = Parse("START n=node(1) RETURN n AS node_alias, n.short_name");
  ASSERT_TRUE(q.ok()) << q.status();
  const ReturnClause& ret = AsReturn(q->clauses[1]);
  ASSERT_EQ(ret.items.size(), 2u);
  EXPECT_EQ(ret.items[0].alias, "node_alias");
  EXPECT_EQ(ret.items[1].alias, "n.short_name");
}

TEST(ParserTest, ReturnOrderSkipLimit) {
  auto q = Parse(
      "START n=node(*) RETURN n ORDER BY n.short_name DESC, n.name "
      "SKIP 2 LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status();
  const ReturnClause& ret = AsReturn(q->clauses[1]);
  ASSERT_EQ(ret.order_by.size(), 2u);
  EXPECT_FALSE(ret.order_by[0].ascending);
  EXPECT_TRUE(ret.order_by[1].ascending);
  EXPECT_EQ(ret.skip, 2);
  EXPECT_EQ(ret.limit, 10);
}

TEST(ParserTest, CountVariants) {
  auto q = Parse("START n=node(*) RETURN count(*), count(n), "
                 "count(distinct n)");
  ASSERT_TRUE(q.ok()) << q.status();
  const ReturnClause& ret = AsReturn(q->clauses[1]);
  const auto& star = std::get<CallExpr>(ret.items[0].expr->node);
  EXPECT_TRUE(star.star);
  const auto& plain = std::get<CallExpr>(ret.items[1].expr->node);
  EXPECT_FALSE(plain.star);
  EXPECT_FALSE(plain.distinct);
  const auto& distinct = std::get<CallExpr>(ret.items[2].expr->node);
  EXPECT_TRUE(distinct.distinct);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto q = Parse("start n=node(1) match n --> m return m");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->clauses.size(), 3u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("BOGUS n").ok());
  EXPECT_FALSE(Parse("START n node(1) RETURN n").ok());          // missing =
  EXPECT_FALSE(Parse("START n=node(1) RETURN").ok());            // no items
  EXPECT_FALSE(Parse("MATCH n -[:x> m RETURN m").ok());          // bad rel
  EXPECT_FALSE(Parse("MATCH (n RETURN n").ok());                 // unclosed
  EXPECT_FALSE(Parse("MATCH a -[*3..1]-> b RETURN a").ok());     // empty range
  EXPECT_FALSE(Parse("START n=node(1) WHERE RETURN n").ok());    // no expr
  EXPECT_FALSE(Parse("START n=node(1) RETURN n LIMIT x").ok());  // bad limit
}

TEST(ParserTest, PaperFigure3Parses) {
  auto q = Parse(R"(
    START m=node:node_auto_index('short_name: wakeup.elf')
    MATCH m -[:compiled_from|linked_from*]-> f
    WITH distinct f
    MATCH f -[:file_contains]-> (n:field{short_name: 'id'})
    RETURN n
  )");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->clauses.size(), 5u);
}

TEST(ParserTest, PaperFigure5Parses) {
  auto q = Parse(R"(
    START from=node:node_auto_index('short_name: sr_media_change'),
          to=node:node_auto_index('short_name: get_sectorsize'),
          b=node:node_auto_index('short_name: packet_command')
    MATCH writer -[write:writes_member]-> ({SHORT_NAME:'cmd'}) <-[:contains]- b
    WITH to, from, writer, write
    MATCH direct <-[s:calls]- from -[r:calls{use_start_line: 236}]-> to
    WHERE r.use_start_line >= s.use_start_line AND direct -[:calls*]-> writer
    RETURN distinct writer, write.use_start_line
  )");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->clauses.size(), 6u);
}

}  // namespace
}  // namespace frappe::query
