// Cross-validation property tests: the declarative engine and the direct
// traversal/analysis APIs must agree on random graphs. This is the
// strongest correctness check we have for the executor — any divergence in
// path semantics, direction handling or filtering shows up here.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "graph/traversal.h"
#include "model/code_graph.h"
#include "query/session.h"

namespace frappe::query {
namespace {

using graph::NodeId;

struct RandomGraph {
  model::CodeGraph graph{model::CodeGraph::Validation::kOff};
  std::vector<NodeId> functions;

  // `acyclic` keeps the number of edge-distinct paths manageable for the
  // unbounded path-enumeration tests (a dense cyclic core has
  // exponentially many paths — correct, but minutes-slow).
  explicit RandomGraph(uint64_t seed, size_t n = 30, size_t edges = 60,
                       bool acyclic = false) {
    frappe::Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      functions.push_back(graph.AddNode(model::NodeKind::kFunction,
                                        "fn_" + std::to_string(i)));
    }
    for (size_t i = 0; i < edges; ++i) {
      size_t a = rng.Uniform(n);
      size_t b = rng.Uniform(n);
      if (acyclic) {
        if (a == b) continue;
        if (a > b) std::swap(a, b);
      }
      graph.AddEdgeUnchecked(model::EdgeKind::kCalls, functions[a],
                             functions[b]);
    }
  }
};

class CrossValidationTest : public ::testing::TestWithParam<uint64_t> {};

std::set<NodeId> Nodes(const QueryResult& result) {
  std::set<NodeId> out;
  for (const auto& row : result.rows) out.insert(row[0].node);
  return out;
}

TEST_P(CrossValidationTest, VarLengthClosureMatchesDirectTraversal) {
  RandomGraph rg(GetParam(), 30, 60, /*acyclic=*/true);
  Session session(rg.graph);
  NodeId seed = rg.functions[GetParam() % rg.functions.size()];

  auto fql = session.Run("START n=node(" + std::to_string(seed) + ") " +
                         "MATCH n -[:calls*]-> m RETURN distinct m");
  ASSERT_TRUE(fql.ok()) << fql.status();

  auto direct = graph::TransitiveClosure(
      rg.graph.view(), seed,
      graph::EdgeFilter::Of({rg.graph.type_id(model::EdgeKind::kCalls)}));
  EXPECT_EQ(Nodes(*fql), std::set<NodeId>(direct.begin(), direct.end()));
}

TEST_P(CrossValidationTest, IncomingClosureMatchesForwardSlice) {
  RandomGraph rg(GetParam(), 30, 60, /*acyclic=*/true);
  Session session(rg.graph);
  NodeId seed = rg.functions[(GetParam() * 7) % rg.functions.size()];

  auto fql = session.Run("START n=node(" + std::to_string(seed) + ") " +
                         "MATCH n <-[:calls*]- m RETURN distinct m");
  ASSERT_TRUE(fql.ok()) << fql.status();
  auto direct = graph::TransitiveClosure(
      rg.graph.view(), seed,
      graph::EdgeFilter::Of({rg.graph.type_id(model::EdgeKind::kCalls)},
                            graph::Direction::kIn));
  EXPECT_EQ(Nodes(*fql), std::set<NodeId>(direct.begin(), direct.end()));
}

TEST_P(CrossValidationTest, SingleHopMatchesAdjacency) {
  RandomGraph rg(GetParam());
  Session session(rg.graph);
  NodeId seed = rg.functions[(GetParam() * 3) % rg.functions.size()];

  auto fql = session.Run("START n=node(" + std::to_string(seed) + ") " +
                         "MATCH n -[:calls]-> m RETURN distinct m");
  ASSERT_TRUE(fql.ok()) << fql.status();
  std::set<NodeId> expected;
  rg.graph.view().ForEachEdge(seed, graph::Direction::kOut,
                              [&](graph::EdgeId, NodeId neighbor) {
                                expected.insert(neighbor);
                                return true;
                              });
  EXPECT_EQ(Nodes(*fql), expected);
}

TEST_P(CrossValidationTest, DepthLimitedClosureMatches) {
  RandomGraph rg(GetParam(), 30, 45);
  Session session(rg.graph);
  NodeId seed = rg.functions[(GetParam() * 11) % rg.functions.size()];

  auto fql = session.Run("START n=node(" + std::to_string(seed) + ") " +
                         "MATCH n -[:calls*1..3]-> m RETURN distinct m");
  ASSERT_TRUE(fql.ok()) << fql.status();
  auto direct = graph::TransitiveClosure(
      rg.graph.view(), seed,
      graph::EdgeFilter::Of({rg.graph.type_id(model::EdgeKind::kCalls)}), 3);
  EXPECT_EQ(Nodes(*fql), std::set<NodeId>(direct.begin(), direct.end()));
}

TEST_P(CrossValidationTest, PatternPredicateMatchesReachability) {
  RandomGraph rg(GetParam());
  Session session(rg.graph);
  NodeId target = rg.functions[(GetParam() * 13) % rg.functions.size()];

  // WHERE n -[:calls*]-> target: the reachability short-circuit path.
  auto fql = session.Run(
      "START t=node(" + std::to_string(target) + ") " +
      "MATCH (n:function) WHERE n -[:calls*]-> t RETURN n");
  ASSERT_TRUE(fql.ok()) << fql.status();

  graph::EdgeFilter filter = graph::EdgeFilter::Of(
      {rg.graph.type_id(model::EdgeKind::kCalls)}, graph::Direction::kIn);
  auto callers = graph::TransitiveClosure(rg.graph.view(), target, filter);
  EXPECT_EQ(Nodes(*fql), std::set<NodeId>(callers.begin(), callers.end()));
}

TEST_P(CrossValidationTest, ShortestPathReachabilityConsistent) {
  RandomGraph rg(GetParam());
  graph::EdgeFilter filter = graph::EdgeFilter::Of(
      {rg.graph.type_id(model::EdgeKind::kCalls)});
  NodeId from = rg.functions[GetParam() % rg.functions.size()];
  for (NodeId to : rg.functions) {
    bool reachable = graph::IsReachable(rg.graph.view(), from, to, filter);
    auto path = graph::ShortestPath(rg.graph.view(), from, to, filter);
    EXPECT_EQ(reachable, path.has_value());
    if (path.has_value() && from != to) {
      // Path edges all satisfy the filter and connect consecutively.
      for (size_t i = 0; i < path->edges.size(); ++i) {
        graph::Edge e = rg.graph.store().GetEdge(path->edges[i]);
        EXPECT_EQ(e.src, path->nodes[i]);
        EXPECT_EQ(e.dst, path->nodes[i + 1]);
      }
    }
  }
}

TEST_P(CrossValidationTest, CountStarMatchesRowCount) {
  RandomGraph rg(GetParam());
  Session session(rg.graph);
  auto rows = session.Run("MATCH (n:function) -[:calls]-> m RETURN m");
  auto count = session.Run(
      "MATCH (n:function) -[:calls]-> m RETURN count(*)");
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].value.AsInt(),
            static_cast<int64_t>(rows->rows.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace frappe::query
