#include "common/fault_injector.h"

#include <gtest/gtest.h>

namespace frappe::common {
namespace {

// Each test uses its own injector instance: Global() is reserved for
// cross-library wiring (file_io) and touched only via Reset-guarded tests.
TEST(FaultInjectorTest, UnarmedNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.AnyArmed());
  EXPECT_FALSE(inj.ShouldFail("snapshot.fsync"));
  EXPECT_EQ(inj.HitCount("snapshot.fsync"), 0u);
}

TEST(FaultInjectorTest, CountdownFiresNthCall) {
  FaultInjector inj;
  inj.Arm("site", /*countdown=*/3);
  EXPECT_TRUE(inj.AnyArmed());
  EXPECT_FALSE(inj.ShouldFail("site"));
  EXPECT_FALSE(inj.ShouldFail("site"));
  EXPECT_TRUE(inj.ShouldFail("site"));   // third call fires
  EXPECT_FALSE(inj.ShouldFail("site"));  // times=1: spent
  EXPECT_EQ(inj.HitCount("site"), 4u);
  EXPECT_EQ(inj.FireCount("site"), 1u);
}

TEST(FaultInjectorTest, TimesFiresConsecutively) {
  FaultInjector inj;
  inj.Arm("site", /*countdown=*/1, /*times=*/2);
  EXPECT_TRUE(inj.ShouldFail("site"));
  EXPECT_TRUE(inj.ShouldFail("site"));
  EXPECT_FALSE(inj.ShouldFail("site"));
  EXPECT_EQ(inj.FireCount("site"), 2u);
}

TEST(FaultInjectorTest, NegativeTimesFiresForever) {
  FaultInjector inj;
  inj.Arm("site", 1, /*times=*/-1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.ShouldFail("site"));
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  FaultInjector inj;
  inj.Arm("a");
  inj.Arm("b", 2);
  EXPECT_TRUE(inj.ShouldFail("a"));
  EXPECT_FALSE(inj.ShouldFail("b"));
  EXPECT_TRUE(inj.ShouldFail("b"));
  EXPECT_FALSE(inj.ShouldFail("c"));
}

TEST(FaultInjectorTest, DisarmAndReset) {
  FaultInjector inj;
  inj.Arm("a");
  inj.Disarm("a");
  EXPECT_FALSE(inj.ShouldFail("a"));
  inj.Arm("b");
  inj.Reset();
  EXPECT_FALSE(inj.AnyArmed());
  EXPECT_FALSE(inj.ShouldFail("b"));
  EXPECT_EQ(inj.HitCount("b"), 0u);
}

TEST(FaultInjectorTest, RearmReplacesState) {
  FaultInjector inj;
  inj.Arm("a", 5);
  EXPECT_FALSE(inj.ShouldFail("a"));
  inj.Arm("a", 1);  // re-arm: fire immediately
  EXPECT_TRUE(inj.ShouldFail("a"));
}

TEST(FaultInjectorTest, ParsesEnvStyleSpecs) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Parse("snapshot.fsync:1,snapshot.rename:3").ok());
  EXPECT_TRUE(inj.ShouldFail("snapshot.fsync"));
  EXPECT_FALSE(inj.ShouldFail("snapshot.rename"));
  EXPECT_FALSE(inj.ShouldFail("snapshot.rename"));
  EXPECT_TRUE(inj.ShouldFail("snapshot.rename"));
}

TEST(FaultInjectorTest, ParseDefaultsCountdownToOne) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Parse("snapshot.write_short").ok());
  EXPECT_TRUE(inj.ShouldFail("snapshot.write_short"));
}

TEST(FaultInjectorTest, ParseRejectsMalformedSpecsAtomically) {
  FaultInjector inj;
  // The second entry is bad, so the first must not arm either.
  EXPECT_FALSE(inj.Parse("good:1,bad:zero").ok());
  EXPECT_FALSE(inj.Parse("site:0").ok());
  EXPECT_FALSE(inj.Parse(":3").ok());
  EXPECT_FALSE(inj.Parse(",").ok());
  EXPECT_FALSE(inj.AnyArmed());
  EXPECT_FALSE(inj.ShouldFail("good"));
}

TEST(FaultInjectorTest, ArmedSitesListsNames) {
  FaultInjector inj;
  inj.Arm("x");
  inj.Arm("y");
  auto sites = inj.ArmedSites();
  EXPECT_EQ(sites.size(), 2u);
}

}  // namespace
}  // namespace frappe::common
