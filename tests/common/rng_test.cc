#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace frappe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.03);
}

TEST(RngTest, PowerLawBoundsAndSkew) {
  Rng rng(13);
  const uint64_t kMax = 1000;
  std::map<uint64_t, int> hist;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.PowerLaw(2.2, kMax);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, kMax);
    ++hist[k];
  }
  // Heavy head: degree-1 samples dominate degree-10 samples, which dominate
  // degree-100. (The defining property of the Figure 7 shape.)
  int low = 0, mid = 0, high = 0;
  for (const auto& [k, count] : hist) {
    if (k <= 2) low += count;
    else if (k <= 50) mid += count;
    else high += count;
  }
  EXPECT_GT(low, mid);
  EXPECT_GT(mid, high);
  EXPECT_GT(high, 0);  // but the tail is populated
}

}  // namespace
}  // namespace frappe
