#include "common/string_util.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace frappe {
namespace {

TEST(SplitTest, KeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyPiece) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, SkipEmptyDropsBlanks) {
  auto parts = SplitSkipEmpty("/usr//lib/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "usr");
  EXPECT_EQ(parts[1], "lib");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join(std::vector<std::string>{}, "/"), "");
  EXPECT_EQ(Join(std::vector<std::string>{"only"}, "/"), "only");
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("Pci_Read_BASES"), "pci_read_bases");
  EXPECT_EQ(ToLower("already_lower123"), "already_lower123");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SHORT_NAME", "short_name"));
  EXPECT_FALSE(EqualsIgnoreCase("short_name", "short_names"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("wakeup.elf", "wake"));
  EXPECT_FALSE(StartsWith("wakeup.elf", "elf"));
  EXPECT_TRUE(EndsWith("wakeup.elf", ".elf"));
  EXPECT_FALSE(EndsWith("wakeup.elf", ".o"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StripTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  foo bar\t\n"), "foo bar");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

struct WildcardCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class WildcardMatchTest : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardMatchTest, Matches) {
  const WildcardCase& c = GetParam();
  EXPECT_EQ(WildcardMatch(c.pattern, c.text), c.expect)
      << "pattern=" << c.pattern << " text=" << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WildcardMatchTest,
    ::testing::Values(
        WildcardCase{"pci_*", "pci_read_bases", true},
        WildcardCase{"pci_*", "pc_read", false},
        WildcardCase{"*_bases", "pci_read_bases", true},
        WildcardCase{"*read*", "pci_read_bases", true},
        WildcardCase{"pci_?ead_bases", "pci_read_bases", true},
        WildcardCase{"pci_?ead_bases", "pci_rread_bases", false},
        WildcardCase{"*", "", true},
        WildcardCase{"", "", true},
        WildcardCase{"", "x", false},
        WildcardCase{"a*b*c", "aXXbYYc", true},
        WildcardCase{"a*b*c", "aXXcYYb", false},
        WildcardCase{"exact", "exact", true},
        WildcardCase{"exact", "exact!", false},
        WildcardCase{"**", "anything", true},
        WildcardCase{"a**z", "az", true}));

TEST(WildcardTest, CaseInsensitiveFlag) {
  EXPECT_TRUE(WildcardMatch("PCI_*", "pci_read", /*ignore_case=*/true));
  EXPECT_FALSE(WildcardMatch("PCI_*", "pci_read", /*ignore_case=*/false));
}

TEST(WildcardTest, HasWildcards) {
  EXPECT_TRUE(HasWildcards("foo*"));
  EXPECT_TRUE(HasWildcards("f?o"));
  EXPECT_FALSE(HasWildcards("foo"));
}

TEST(EditDistanceTest, ExactAndSimpleEdits) {
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 2), 0u);
  EXPECT_EQ(BoundedEditDistance("abc", "abd", 2), 1u);   // substitution
  EXPECT_EQ(BoundedEditDistance("abc", "abcd", 2), 1u);  // insertion
  EXPECT_EQ(BoundedEditDistance("abc", "ac", 2), 1u);    // deletion
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
}

TEST(EditDistanceTest, EarlyExitBeyondLimit) {
  // Distance is 5; with limit 2 the function must report limit+1.
  EXPECT_EQ(BoundedEditDistance("aaaaa", "bbbbb", 2), 3u);
  // Length difference alone exceeds the limit.
  EXPECT_EQ(BoundedEditDistance("a", "abcdefgh", 2), 3u);
}

TEST(EditDistanceTest, EmptyStrings) {
  EXPECT_EQ(BoundedEditDistance("", "", 2), 0u);
  EXPECT_EQ(BoundedEditDistance("", "ab", 2), 2u);
  EXPECT_EQ(BoundedEditDistance("ab", "", 2), 2u);
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-45", &v));
  EXPECT_EQ(v, -45);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(HumanBytesTest, Formats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(800ull * 1024 * 1024), "800.00 MB");
}

}  // namespace
}  // namespace frappe
