#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

namespace frappe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::NotFound("no such node");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such node");
  EXPECT_EQ(s.ToString(), "NotFound: no such node");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Corruption("x"), Status::Corruption("x"));
  EXPECT_FALSE(Status::Corruption("x") == Status::Corruption("y"));
  EXPECT_FALSE(Status::Corruption("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,

      StatusCode::kInvalidArgument,   StatusCode::kNotFound,
      StatusCode::kAlreadyExists,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,  StatusCode::kCorruption,
      StatusCode::kUnimplemented,     StatusCode::kInternal,
      StatusCode::kParseError,
  };
  std::set<std::string> names;
  for (StatusCode c : codes) names.insert(StatusCodeName(c));
  EXPECT_EQ(names.size(), std::size(codes));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FRAPPE_ASSIGN_OR_RETURN(int half, Half(x));
  FRAPPE_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> inner_fail = Quarter(6);  // 6/2=3, then 3 is odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(std::initializer_list<int> xs) {
  for (int x : xs) {
    FRAPPE_RETURN_IF_ERROR(FailIfNegative(x));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_EQ(CheckAll({1, -2, 3}).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace frappe
