#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace frappe::common {
namespace {

TEST(Crc32cTest, KnownCheckValue) {
  // The CRC32C check value from RFC 3720 / the Castagnoli paper.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, SingleBitChangesCrc) {
  std::string data(1024, 'x');
  uint32_t base = Crc32c(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; bit += 97) {
    std::string flipped = data;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(flipped.data(), flipped.size()), base) << bit;
  }
}

TEST(Crc32cTest, ExtendComposes) {
  // Crc32cExtend(Crc32c(a), b) must equal Crc32c(a ++ b) for any split,
  // including empty halves and splits not aligned to the slice-by-8 width.
  std::string data = "The quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t composed = Crc32cExtend(Crc32c(data.data(), split),
                                     data.data() + split, data.size() - split);
    EXPECT_EQ(composed, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, LargeBufferAllAlignments) {
  // Exercise the slice-by-8 / hardware paths across start alignments.
  std::string data(4096 + 7, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + 17);
  }
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t off = 1; off < 8; ++off) {
    uint32_t composed =
        Crc32cExtend(Crc32c(data.data(), off), data.data() + off,
                     data.size() - off);
    EXPECT_EQ(composed, whole) << off;
  }
}

// Independent bit-at-a-time implementation to pin the optimized paths
// (including the three-lane interleaved hardware kernel) to the spec.
uint32_t ReferenceCrc32c(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~0u;
  for (size_t i = 0; i < size; ++i) {
    crc ^= p[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
  }
  return ~crc;
}

TEST(Crc32cTest, MatchesBitwiseReferenceAcrossBlockBoundaries) {
  // Sizes straddling the interleaved kernel's 6144-byte block: below one
  // block, exactly one, one ± a few bytes, several blocks + remainder.
  std::string data(20000, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  for (size_t size : {0u, 1u, 8u, 6143u, 6144u, 6145u, 6151u, 12288u,
                      12289u, 18432u, 20000u}) {
    EXPECT_EQ(Crc32c(data.data(), size), ReferenceCrc32c(data.data(), size))
        << "size=" << size;
  }
}

}  // namespace
}  // namespace frappe::common
