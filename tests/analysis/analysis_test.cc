// Tests for the direct-API use cases (search, navigation, slicing,
// debugging) against the shared paper fixture — each mirrors one of the
// paper's Section 4 scenarios and must agree with the FQL results in
// paper_queries_test.cc.

#include <gtest/gtest.h>

#include <set>

#include "analysis/debugging.h"
#include "analysis/navigation.h"
#include "analysis/search.h"
#include "analysis/slicing.h"
#include "tests/query/fixture.h"

namespace frappe::analysis {
namespace {

using graph::NodeId;
using model::NodeKind;
using query::testing::PaperFixture;

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest()
      : index_(fixture_.graph.BuildNameIndex()),
        view_(fixture_.graph.view()),
        schema_(fixture_.graph.schema()) {}

  std::set<NodeId> ToSet(const std::vector<NodeId>& v) {
    return std::set<NodeId>(v.begin(), v.end());
  }

  PaperFixture fixture_;
  graph::NameIndex index_;
  const graph::GraphView& view_;
  const model::Schema& schema_;
};

// --- Code search (Section 4.1) ---

TEST_F(AnalysisTest, ModuleFilesFollowsBuildEdges) {
  auto files = ModuleFiles(view_, schema_, fixture_.wakeup_elf);
  EXPECT_EQ(ToSet(files), std::set<NodeId>{fixture_.wakeup_c});
}

TEST_F(AnalysisTest, SearchByNameOnly) {
  SearchQuery query;
  query.name = "id";
  auto results = CodeSearch(view_, schema_, index_, query);
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(AnalysisTest, SearchConstrainedByModuleMatchesFigure3) {
  SearchQuery query;
  query.name = "id";
  query.kind = NodeKind::kField;
  query.module = fixture_.wakeup_elf;
  auto results = CodeSearch(view_, schema_, index_, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].node, fixture_.id_in_wakeup);
}

TEST_F(AnalysisTest, SearchWithWildcard) {
  SearchQuery query;
  query.name = "sr_*";
  auto results = CodeSearch(view_, schema_, index_, query);
  std::set<NodeId> nodes;
  for (const auto& r : results) nodes.insert(r.node);
  // "sr_*" matches the underscore names, not "sr.c" / "sr.elf".
  EXPECT_EQ(nodes, (std::set<NodeId>{fixture_.sr_media_change,
                                     fixture_.sr_do_ioctl}));
}

TEST_F(AnalysisTest, SearchFuzzy) {
  SearchQuery query;
  query.name = "sr_media_chnge~";  // missing 'a'
  auto results = CodeSearch(view_, schema_, index_, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].node, fixture_.sr_media_change);
}

TEST_F(AnalysisTest, SearchByGroup) {
  SearchQuery query;
  query.name = "packet_command";
  query.group = model::NodeGroup::kContainer;
  auto results = CodeSearch(view_, schema_, index_, query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].node, fixture_.packet_command);
}

TEST_F(AnalysisTest, SearchLimit) {
  SearchQuery query;
  query.name = "*";
  query.limit = 3;
  auto results = CodeSearch(view_, schema_, index_, query);
  EXPECT_EQ(results.size(), 3u);
}

// --- Navigation (Section 4.2) ---

TEST_F(AnalysisTest, GoToDefinitionMatchesFigure4) {
  CursorPosition cursor{fixture_.NodeFile(), 104, 16};
  auto defs = GoToDefinition(view_, schema_, index_, "id", cursor);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0], fixture_.id_in_sr);
}

TEST_F(AnalysisTest, GoToDefinitionWrongPositionFindsNothing) {
  CursorPosition cursor{fixture_.NodeFile(), 104, 17};
  EXPECT_TRUE(GoToDefinition(view_, schema_, index_, "id", cursor).empty());
}

TEST_F(AnalysisTest, FindReferencesListsReferenceEdgesOnly) {
  auto refs = FindReferences(view_, schema_, fixture_.cmd_field);
  // Two writes_member references; the `contains` edge from the struct is
  // structural and must be excluded.
  ASSERT_EQ(refs.size(), 2u);
  for (const auto& ref : refs) {
    EXPECT_EQ(ref.kind, model::EdgeKind::kWritesMember);
    EXPECT_TRUE(ref.use.valid());
  }
}

// --- Slicing (Section 4.4) ---

TEST_F(AnalysisTest, BackwardSliceIsFigure6Closure) {
  auto slice = BackwardSlice(view_, schema_, fixture_.sr_media_change);
  EXPECT_EQ(ToSet(slice),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b,
                              fixture_.get_sectorsize,
                              fixture_.sr_do_ioctl}));
}

TEST_F(AnalysisTest, ForwardSliceFindsCallers) {
  auto slice = ForwardSlice(view_, schema_, fixture_.sr_do_ioctl);
  EXPECT_EQ(ToSet(slice),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b,
                              fixture_.sr_media_change}));
}

TEST_F(AnalysisTest, SliceDepthLimit) {
  auto slice = BackwardSlice(view_, schema_, fixture_.sr_media_change, 1);
  EXPECT_EQ(ToSet(slice),
            (std::set<NodeId>{fixture_.helper_a, fixture_.helper_b,
                              fixture_.get_sectorsize}));
}

TEST_F(AnalysisTest, ImpactSetGeneralizesOverEdgeKinds) {
  // Forward impact over writes_member: who writes cmd.
  auto writers = ImpactSet(view_, schema_, {fixture_.cmd_field},
                           {model::EdgeKind::kWritesMember},
                           graph::Direction::kIn, 1);
  EXPECT_EQ(ToSet(writers),
            (std::set<NodeId>{fixture_.sr_do_ioctl, fixture_.stale_writer}));
}

// --- Debugging (Section 4.3) ---

TEST_F(AnalysisTest, SuspectWritesMatchFigure5) {
  auto suspects = FindSuspectWrites(view_, schema_,
                                    fixture_.sr_media_change,
                                    fixture_.get_sectorsize,
                                    fixture_.cmd_field,
                                    /*bounding_call_line=*/236);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].writer, fixture_.sr_do_ioctl);
  EXPECT_EQ(suspects[0].write_line, 150);
}

TEST_F(AnalysisTest, SuspectWritesEmptyWhenBoundMissing) {
  auto suspects = FindSuspectWrites(view_, schema_,
                                    fixture_.sr_media_change,
                                    fixture_.get_sectorsize,
                                    fixture_.cmd_field,
                                    /*bounding_call_line=*/999);
  EXPECT_TRUE(suspects.empty());
}

TEST_F(AnalysisTest, SuspectWritesBoundExcludesLateCalls) {
  // With the bound at line 300 (helper_b's call site is at 300), both
  // paths are early enough, but stale_writer remains unreachable.
  auto all_calls = FindSuspectWrites(view_, schema_,
                                     fixture_.sr_media_change,
                                     fixture_.get_sectorsize,
                                     fixture_.cmd_field, 236);
  ASSERT_EQ(all_calls.size(), 1u);
}

}  // namespace
}  // namespace frappe::analysis
