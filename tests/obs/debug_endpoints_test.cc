// End-to-end tests for the stats server's /debug control plane: queryz,
// cancel, tracez, storagez, logz — all over real HTTP against a port-0
// server — plus the cancel integration test (start a slow query, observe
// it on /debug/queryz, POST /debug/cancel, assert Status::Cancelled
// promptly with the registry empty afterwards).
//
// Exports the fixture files tools/debugz_check.py and tools/trace_check.py
// validate from ctest: debugz_queryz.json, debugz_storagez.json,
// debugz_logz.json, tracez_export.json.

#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "extractor/synthetic.h"
#include "gtest/gtest.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

// Minimal HTTP/1.0 client: one request, read to EOF (the server closes).
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET", path);
}

std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

void ExportFixtureFile(const std::string& name, const std::string& body) {
  std::FILE* f = std::fopen(name.c_str(), "w");
  ASSERT_NE(f, nullptr) << name;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

class DebugEndpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Structured log output goes to a scratch file, not the test output.
    ::setenv("FRAPPE_LOG_FILE", "debug_endpoints_scratch.log", 1);
    Log::ResetForTesting();
    auto server = StatsServer::Start();
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_.reset();
    StatsServer::SetStorageStatsProvider(nullptr);
    Log::ResetForTesting();
    ::unsetenv("FRAPPE_LOG_FILE");
    std::remove("debug_endpoints_scratch.log");
  }

  uint16_t port() const { return server_->port(); }

  std::unique_ptr<StatsServer> server_;
};

TEST_F(DebugEndpointsTest, QueryzListsInFlightQueries) {
  QueryRegistry::Handle active = QueryRegistry::Global().Register(
      0x0123456789abcdefull, "match (f:function) return f",
      "MATCH (f:function) RETURN f", nullptr);
  ASSERT_NE(active.entry(), nullptr);

  std::string response = HttpGet(port(), "/debug/queryz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"now_us\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"fp\": \"0123456789abcdef\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"raw\": \"MATCH (f:function) RETURN f\""),
            std::string::npos)
      << body;

  // Fixture for tools/debugz_check.py --queryz (captured with a live
  // entry, so the schema of a populated queries array is what's checked).
  ExportFixtureFile("debugz_queryz.json", body);
}

TEST_F(DebugEndpointsTest, CancelEndpointContract) {
  QueryRegistry::Handle active =
      QueryRegistry::Global().Register(7, "q", "q", nullptr);
  ASSERT_NE(active.entry(), nullptr);
  uint64_t id = active.entry()->id;

  // GET cannot cancel — a crawler or browser prefetch must be harmless.
  std::string get = HttpGet(
      port(), "/debug/cancel?id=" + std::to_string(id));
  EXPECT_NE(get.find("405"), std::string::npos) << get;
  EXPECT_FALSE(active.entry()->cancel_token->load());

  std::string post = HttpRequest(
      port(), "POST", "/debug/cancel?id=" + std::to_string(id));
  EXPECT_NE(post.find("200 OK"), std::string::npos) << post;
  EXPECT_EQ(Body(post), "{\"cancelled\": " + std::to_string(id) + "}\n");
  EXPECT_TRUE(active.entry()->cancel_token->load());

  // Missing / malformed / unknown ids are distinct, all JSON.
  std::string missing = HttpRequest(port(), "POST", "/debug/cancel");
  EXPECT_NE(missing.find("400"), std::string::npos) << missing;
  EXPECT_NE(missing.find("application/json"), std::string::npos);
  std::string bad = HttpRequest(port(), "POST", "/debug/cancel?id=banana");
  EXPECT_NE(bad.find("400"), std::string::npos) << bad;
  std::string unknown =
      HttpRequest(port(), "POST", "/debug/cancel?id=999999999");
  EXPECT_NE(unknown.find("404"), std::string::npos) << unknown;
}

TEST_F(DebugEndpointsTest, StoragezServesTable4Breakdown) {
  // No provider registered: an embedder without a graph store gets a clean
  // JSON 404, not an empty page.
  StatsServer::SetStorageStatsProvider(nullptr);
  std::string absent = HttpGet(port(), "/debug/storagez");
  EXPECT_NE(absent.find("404"), std::string::npos) << absent;
  EXPECT_NE(absent.find("application/json"), std::string::npos);

  query::testing::PaperFixture fixture;
  const graph::GraphStore& store = fixture.graph.store();
  StatsServer::SetStorageStatsProvider(
      [&store]() -> StatsServer::StorageSections {
        graph::GraphStore::MemoryBreakdown m = store.EstimateMemory();
        return {{"nodes", m.nodes},
                {"relationships", m.relationships},
                {"properties", m.properties}};
      });
  std::string response = HttpGet(port(), "/debug/storagez");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"sections\": {"), std::string::npos) << body;
  EXPECT_NE(body.find("\"nodes\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"relationships\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"properties\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"total\": "), std::string::npos) << body;
  ExportFixtureFile("debugz_storagez.json", body);

  // The same sections surface as gauges on /metrics, refreshed per scrape.
  std::string metrics = Body(HttpGet(port(), "/metrics"));
  EXPECT_NE(metrics.find("# TYPE frappe_storage_bytes gauge"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("frappe_storage_bytes{section=\"nodes\"} "),
            std::string::npos)
      << metrics;
  StatsServer::SetStorageStatsProvider(nullptr);
}

TEST_F(DebugEndpointsTest, LogzServesTheRecentRing) {
  Log::SetThreshold(LogLevel::kInfo);
  LogWarn("debugz", "something to see on logz");
  std::string response = HttpGet(port(), "/debug/logz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"entries\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"component\": \"debugz\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"message\": \"something to see on logz\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"dropped\": "), std::string::npos) << body;
  ExportFixtureFile("debugz_logz.json", body);
}

TEST_F(DebugEndpointsTest, TracezServesTheRingWithoutBlocking) {
  // Capture spans in-process first: the endpoint answers from whatever the
  // ring already holds. (The old semantics — enable, sleep the requested
  // window, export — wedged the single serving thread for the duration.)
  Trace::Clear();
  Trace::Enable();
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  ASSERT_TRUE(session.Run("MATCH (f:function) RETURN f").ok());
  Trace::Disable();

  auto start = std::chrono::steady_clock::now();
  std::string response = HttpGet(port(), "/debug/tracez?ms=5000");
  double waited_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  // Far under the requested window: the serving thread never slept.
  EXPECT_LT(waited_ms, 2000.0) << "tracez blocked the serving thread";
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos) << body;
  EXPECT_NE(body.find("session.run"), std::string::npos) << body;
  // Chrome-trace validity is checked by tools/trace_check.py from ctest.
  ExportFixtureFile("tracez_export.json", body);

  // A bad window is rejected, and tracez never toggles tracing itself.
  std::string bad = HttpGet(port(), "/debug/tracez?ms=banana");
  EXPECT_NE(bad.find("400"), std::string::npos) << bad;
  EXPECT_FALSE(Trace::enabled());
  Trace::Clear();
}

TEST_F(DebugEndpointsTest, TracezServesRetainedTracesById) {
  TraceStore& store = TraceStore::Global();
  store.Clear();
  StoredTrace retained;
  retained.trace_hi = 0x0123456789abcdefull;
  retained.trace_lo = 0xfedcba9876543210ull;
  retained.reason = "slow";
  retained.status = "ok";
  retained.fingerprint = "00000000deadbeef";
  retained.ts_us = 1;
  retained.latency_ms = 12.5;
  CollectedSpan root;
  root.name = "server.request";
  root.span_id = 0x10;
  root.parent_id = 0;
  root.start_us = 100;
  root.dur_us = 500;
  CollectedSpan child;
  child.name = "server.queue_wait";
  child.span_id = 0x11;
  child.parent_id = 0x10;
  child.start_us = 100;
  child.dur_us = 40;
  retained.spans = {root, child};
  store.Retain(retained);

  // The index lists the retained tail, newest first.
  std::string index = HttpGet(port(), "/debug/tracez");
  EXPECT_NE(index.find("200 OK"), std::string::npos) << index;
  std::string index_body = Body(index);
  EXPECT_NE(index_body.find("\"retained\": 1"), std::string::npos)
      << index_body;
  EXPECT_NE(index_body.find("0123456789abcdeffedcba9876543210"),
            std::string::npos)
      << index_body;
  EXPECT_NE(index_body.find("\"reason\": \"slow\""), std::string::npos)
      << index_body;

  // Lookup by trace id serves the span tree as Chrome trace events.
  std::string by_id = HttpGet(
      port(), "/debug/tracez?trace_id=0123456789abcdeffedcba9876543210");
  EXPECT_NE(by_id.find("200 OK"), std::string::npos) << by_id;
  std::string tree = Body(by_id);
  EXPECT_NE(tree.find("\"traceEvents\""), std::string::npos) << tree;
  EXPECT_NE(tree.find("server.request"), std::string::npos) << tree;
  EXPECT_NE(tree.find("server.queue_wait"), std::string::npos) << tree;
  EXPECT_NE(tree.find("0123456789abcdeffedcba9876543210"), std::string::npos)
      << tree;

  // Malformed ids are 400, unknown-but-well-formed ids are 404 — both JSON.
  std::string bad = HttpGet(port(), "/debug/tracez?trace_id=xyz");
  EXPECT_NE(bad.find("400"), std::string::npos) << bad;
  EXPECT_NE(bad.find("application/json"), std::string::npos) << bad;
  std::string unknown = HttpGet(
      port(), "/debug/tracez?trace_id=00000000000000000000000000000001");
  EXPECT_NE(unknown.find("404"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("application/json"), std::string::npos) << unknown;
  store.Clear();
}

TEST_F(DebugEndpointsTest, ErrorResponsesAreNormalizedJson) {
  std::string unknown = HttpGet(port(), "/nope");
  EXPECT_NE(unknown.find("404 Not Found"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("Content-Type: application/json"),
            std::string::npos)
      << unknown;
  std::string body = Body(unknown);
  EXPECT_NE(body.find("\"error\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"status\": 404"), std::string::npos) << body;

  std::string bad_method = HttpRequest(port(), "DELETE", "/healthz");
  EXPECT_NE(bad_method.find("405 Method Not Allowed"), std::string::npos)
      << bad_method;
  EXPECT_NE(bad_method.find("Content-Type: application/json"),
            std::string::npos)
      << bad_method;
  EXPECT_NE(Body(bad_method).find("\"status\": 405"), std::string::npos);
}

// The acceptance integration test: a slow query on a generated kernel
// graph becomes visible on /debug/queryz, is killed via POST
// /debug/cancel, and lands Status::Cancelled within 250 ms — with the
// registry empty afterwards.
TEST_F(DebugEndpointsTest, CancelOverHttpKillsARunningQuery) {
  model::CodeGraph graph;
  extractor::GraphScale scale;
  scale.factor = 0.02;
  extractor::GenerateKernelGraph(scale, &graph);
  query::Session session(graph);

  // A function with outgoing calls: the slow-path (edge-distinct path
  // enumeration) closure from it runs effectively forever at this scale.
  graph::TypeId calls = graph.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = graph.schema().key(model::PropKey::kShortName);
  std::string seed;
  const graph::GraphView& view = graph.view();
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound() && seed.empty();
       ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    seed = std::string(view.GetNodeString(view.GetEdge(e).src, short_name));
  }
  ASSERT_FALSE(seed.empty());
  std::string query = "START n=node:node_auto_index('short_name: " + seed +
                      "') MATCH n -[:calls*]-> m RETURN distinct m";

  Result<query::QueryResult> result = Status::Internal("never ran");
  std::chrono::steady_clock::time_point finished;
  std::thread runner([&] {
    query::ExecOptions options;
    options.use_csr_fast_path = false;
    options.deadline_ms = 60000;  // a broken cancel fails, not hangs
    result = session.Run(query, options);
    finished = std::chrono::steady_clock::now();
  });

  // Observe the query on /debug/queryz and pull its id out of the JSON.
  uint64_t id = 0;
  for (int i = 0; i < 5000 && id == 0; ++i) {
    std::string body = Body(HttpGet(port(), "/debug/queryz"));
    if (body.find(seed) != std::string::npos) {
      size_t at = body.find("\"id\": ");
      if (at != std::string::npos) {
        id = std::strtoull(body.c_str() + at + 6, nullptr, 10);
      }
    }
    if (id == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(id, 0u) << "query never showed up on /debug/queryz";

  std::string cancel = HttpRequest(
      port(), "POST", "/debug/cancel?id=" + std::to_string(id));
  std::chrono::steady_clock::time_point cancel_sent =
      std::chrono::steady_clock::now();
  EXPECT_NE(cancel.find("200 OK"), std::string::npos) << cancel;
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  double cancel_latency_ms =
      std::chrono::duration<double, std::milli>(finished - cancel_sent)
          .count();
  EXPECT_LE(cancel_latency_ms, 250.0)
      << "cancellation took " << cancel_latency_ms << " ms";
  EXPECT_EQ(QueryRegistry::Global().size(), 0u);
}

}  // namespace
}  // namespace frappe::obs
