// Sampling profiler (obs/profiler.h): SIGPROF capture of a known CPU
// burner symbolizes to its exported name in the folded output, the
// Start/Stop/CaptureFor state machine rejects misuse, and the
// /debug/profilez + /debug/memz endpoints serve valid exports over real
// HTTP under closure load.
//
// Exports the fixture files tools/profilez_check.py validates from
// ctest: profilez_export.folded, memz_export.json.
//
// Deliberately NOT in the TSan (`parallel`) lane: the SIGPROF handler
// calls backtrace(), which is not on TSan's async-signal-safe whitelist
// and would be flagged even though the handler touches only
// pre-allocated memory via atomics.

#include "obs/profiler.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "extractor/synthetic.h"
#include "graph/graph_store.h"
#include "gtest/gtest.h"
#include "model/code_graph.h"
#include "obs/stats_server.h"
#include "query/session.h"
#include "tests/query/fixture.h"

// The sampling target: an exported (extern "C", so dladdr sees an
// unmangled global symbol even without full debug info) CPU burner that
// the optimizer can neither inline nor elide. `noipa` (gcc) forbids the
// constprop/isra clones gcc otherwise emits for the constant call site —
// clones are local symbols, invisible to dladdr, and the samples would
// fall back to hex addresses.
#if defined(__GNUC__) && !defined(__clang__)
#define FRAPPE_TEST_NOIPA __attribute__((noipa))
#else
#define FRAPPE_TEST_NOIPA __attribute__((noinline))
#endif
extern "C" FRAPPE_TEST_NOIPA uint64_t frappe_profiler_test_burn(
    uint64_t iters) {
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < iters; ++i) acc += i * 2654435761ull;
  return acc;
}

namespace frappe::obs {
namespace {

// Burns roughly `ms` of this thread's CPU (the thread spins, so wall
// time tracks CPU time) through the exported burner.
void BurnCpuMs(int ms) {
  auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    frappe_profiler_test_burn(1u << 16);
  }
}

TEST(ProfilerTest, SamplesAndSymbolizesABusyLoop) {
  Profiler& profiler = Profiler::Global();
  ASSERT_TRUE(profiler.Start().ok());
  BurnCpuMs(400);
  // The ring is freed at Stop(), so live counters must be read while the
  // capture is still running.
  uint64_t samples = profiler.sample_count();
  uint64_t dropped = profiler.dropped();
  std::string folded = profiler.Stop();
  EXPECT_FALSE(profiler.running());

  // 400 ms at 250 Hz of CPU time is ~100 samples; demand a tenth of
  // that so loaded CI hosts do not flake.
  EXPECT_GE(samples, 10u) << folded;
  EXPECT_EQ(dropped, 0u);
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("frappe_profiler_test_burn"), std::string::npos)
      << folded;

  // Every line is "stack count" with a positive integer count and no
  // whitespace inside the stack (the symbolizer sanitizes frames).
  size_t start = 0;
  while (start < folded.size()) {
    size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), space) << "stack contains whitespace: " << line;
    std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_GT(std::strtoull(count.c_str(), nullptr, 10), 0u) << line;
  }
}

TEST(ProfilerTest, StartWhileRunningIsFailedPrecondition) {
  Profiler& profiler = Profiler::Global();
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());

  Status again = profiler.Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition)
      << again.ToString();
  Result<std::string> capture = profiler.CaptureFor(0.01);
  ASSERT_FALSE(capture.ok());
  EXPECT_EQ(capture.status().code(), StatusCode::kFailedPrecondition);

  (void)profiler.Stop();
  EXPECT_FALSE(profiler.running());
}

TEST(ProfilerTest, StopWhenIdleReturnsEmpty) {
  Profiler& profiler = Profiler::Global();
  ASSERT_FALSE(profiler.running());
  EXPECT_EQ(profiler.Stop(), "");
}

TEST(ProfilerTest, CaptureForRejectsBadWindows) {
  Profiler& profiler = Profiler::Global();
  for (double seconds : {0.0, -1.0, 61.0}) {
    Result<std::string> capture = profiler.CaptureFor(seconds);
    ASSERT_FALSE(capture.ok()) << seconds;
    EXPECT_EQ(capture.status().code(), StatusCode::kInvalidArgument)
        << capture.status().ToString();
  }
}

TEST(ProfilerTest, BadOptionsAreRejected) {
  Profiler& profiler = Profiler::Global();
  Profiler::Options bad_hz;
  bad_hz.hz = 0;
  EXPECT_EQ(profiler.Start(bad_hz).code(), StatusCode::kInvalidArgument);
  Profiler::Options bad_ring;
  bad_ring.max_samples = 0;
  EXPECT_EQ(profiler.Start(bad_ring).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(profiler.running());
}

// ---------------------------------------------------------------------------
// HTTP end to end: /debug/profilez and /debug/memz against a port-0
// stats server with closure load running.

// Minimal HTTP/1.0 client: one request, read to EOF (the server closes).
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET", path);
}

std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

void ExportFixtureFile(const std::string& name, const std::string& body) {
  std::FILE* f = std::fopen(name.c_str(), "w");
  ASSERT_NE(f, nullptr) << name;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

class ProfilezEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = StatsServer::Start();
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_.reset();
    StatsServer::SetStorageStatsProvider(nullptr);
  }

  uint16_t port() const { return server_->port(); }

  std::unique_ptr<StatsServer> server_;
};

// The acceptance test: under closure load the blocking capture returns
// >= 100 folded samples dominated by traversal frames (validated in
// depth by tools/profilez_check.py against the exported file), and
// /debug/memz attributes per-subsystem bytes.
TEST_F(ProfilezEndpointTest, ProfilezAndMemzUnderClosureLoad) {
  model::CodeGraph graph;
  extractor::GraphScale scale;
  scale.factor = 0.05;
  extractor::GenerateKernelGraph(scale, &graph);

  graph::TypeId calls = graph.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = graph.schema().key(model::PropKey::kShortName);
  std::string seed;
  const graph::GraphView& view = graph.view();
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound() && seed.empty();
       ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    seed = std::string(view.GetNodeString(view.GetEdge(e).src, short_name));
  }
  ASSERT_FALSE(seed.empty());
  std::string query = "START n=node:node_auto_index('short_name: " + seed +
                      "') MATCH n -[:calls*]-> m RETURN distinct m";

  const graph::GraphStore& store = graph.store();
  StatsServer::SetStorageStatsProvider(
      [&store]() -> StatsServer::StorageSections {
        graph::GraphStore::MemoryBreakdown m = store.EstimateMemory();
        return {{"nodes", m.nodes},
                {"relationships", m.relationships},
                {"properties", m.properties}};
      });

  // Two load threads running single-lane closures: the sequential fast
  // path keeps FrontierEngine/CSR frames on the query threads, which are
  // the only CPU consumers SIGPROF can land on.
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int t = 0; t < 2; ++t) {
    load.emplace_back([&graph, &query, &stop] {
      query::Session session(graph);
      query::ExecOptions options;
      options.threads = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = session.Run(query, options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }

  std::string response = HttpGet(port(), "/debug/profilez?seconds=1");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos) << response;
  std::string folded = Body(response);
  EXPECT_FALSE(folded.empty());
  // Depth validation (format, >= 100 samples, traversal dominance) is
  // tools/profilez_check.py's job via this fixture file.
  ExportFixtureFile("profilez_export.folded", folded);

  std::string memz = HttpGet(port(), "/debug/memz");
  EXPECT_NE(memz.find("200 OK"), std::string::npos) << memz;
  EXPECT_NE(memz.find("application/json"), std::string::npos) << memz;
  std::string memz_body = Body(memz);
  EXPECT_NE(memz_body.find("\"rss_bytes\": "), std::string::npos)
      << memz_body;
  EXPECT_NE(memz_body.find("\"sections\": {"), std::string::npos)
      << memz_body;
  EXPECT_NE(memz_body.find("\"trace_store\": "), std::string::npos)
      << memz_body;
  EXPECT_NE(memz_body.find("\"nodes\": "), std::string::npos) << memz_body;
  EXPECT_NE(memz_body.find("\"total\": "), std::string::npos) << memz_body;
  ExportFixtureFile("memz_export.json", memz_body);

  stop.store(true);
  for (std::thread& t : load) t.join();
}

TEST_F(ProfilezEndpointTest, ActionStateMachineOverHttp) {
  std::string started = HttpGet(port(), "/debug/profilez?action=start");
  EXPECT_NE(started.find("200 OK"), std::string::npos) << started;
  EXPECT_NE(Body(started).find("\"profiling\": true"), std::string::npos)
      << started;

  // A second start collides with the running capture: 409, not a silent
  // restart that would drop the ring.
  std::string again = HttpGet(port(), "/debug/profilez?action=start");
  EXPECT_NE(again.find("409"), std::string::npos) << again;

  std::string status = HttpGet(port(), "/debug/profilez?action=status");
  EXPECT_NE(status.find("200 OK"), std::string::npos) << status;
  EXPECT_NE(Body(status).find("\"running\": true"), std::string::npos)
      << status;

  std::string stopped = HttpGet(port(), "/debug/profilez?action=stop");
  EXPECT_NE(stopped.find("200 OK"), std::string::npos) << stopped;
  EXPECT_NE(stopped.find("text/plain"), std::string::npos) << stopped;

  std::string idle_stop = HttpGet(port(), "/debug/profilez?action=stop");
  EXPECT_NE(idle_stop.find("409"), std::string::npos) << idle_stop;

  std::string idle_status = HttpGet(port(), "/debug/profilez?action=status");
  EXPECT_NE(Body(idle_status).find("\"running\": false"), std::string::npos)
      << idle_status;
}

TEST_F(ProfilezEndpointTest, BadRequestsAreRejected) {
  for (const char* path :
       {"/debug/profilez?seconds=0", "/debug/profilez?seconds=banana",
        "/debug/profilez?seconds=-2", "/debug/profilez?seconds=3600",
        "/debug/profilez?action=bogus"}) {
    std::string response = HttpGet(port(), path);
    EXPECT_NE(response.find("400"), std::string::npos) << path << "\n"
                                                       << response;
  }
  EXPECT_FALSE(Profiler::Global().running());
}

}  // namespace
}  // namespace frappe::obs
