// Metrics registry: sharded counters/histograms must merge exactly under
// concurrent recording (the TSan target for the ctest `parallel` label),
// bucket math must respect power-of-two boundaries, and the registry must
// hand out process-lifetime-stable references.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace frappe::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() { Registry::Global().ResetForTesting(); }
  ~MetricsTest() override { Registry::Global().ResetForTesting(); }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = Registry::Global().GetCounter("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = Registry::Global().GetGauge("test.gauge");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST_F(MetricsTest, RegistryInternsByName) {
  Counter& a = Registry::Global().GetCounter("test.same");
  Counter& b = Registry::Global().GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5u);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket b covers [2^(b-1), 2^b); 0 lands in bucket 0.
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Values past the last bucket boundary clamp into the final bucket.
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
  // BucketUpperBound is inclusive: bucket b covers [2^(b-1), 2^b - 1].
  for (size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    uint64_t upper = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketOf(upper), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketOf(upper + 1), b + 1) << "bucket " << b;
  }
}

TEST_F(MetricsTest, HistogramSnapshotStats) {
  Histogram& h = Registry::Global().GetHistogram("test.hist");
  for (uint64_t v : {1u, 2u, 3u, 100u}) h.Record(v);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_DOUBLE_EQ(s.Mean(), 106.0 / 4.0);
  // p50 of {1,2,3,100}: rank 2 sits in bucket [2,3] -> inclusive bound 3.
  EXPECT_EQ(s.PercentileUpperBound(0.5), 3u);
  // p100 lands in 100's bucket [64,127].
  EXPECT_EQ(s.PercentileUpperBound(1.0), 127u);
}

// Regression pins for the interpolated quantile: the stats server's
// Prometheus summaries and the fingerprint table's p99 are built on these
// exact values — drift here is drift in every exported quantile.
TEST_F(MetricsTest, QuantileInterpolatesWithinBuckets) {
  Histogram& h = Registry::Global().GetHistogram("test.quantile");
  for (uint64_t v : {1u, 2u, 3u, 100u}) h.Record(v);
  Histogram::Snapshot s = h.Snap();
  // Rank q*count walks the pow2 buckets; interpolation is linear across
  // the landing bucket's [2^(b-1), 2^b - 1] value range.
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 1.0);   // rank 1 in bucket [1,1]
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 2.5);    // rank 2 is 1/2 into [2,3]
  EXPECT_DOUBLE_EQ(s.Quantile(0.75), 3.0);   // rank 3 tops out [2,3]
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 127.0);  // rank 4 tops out [64,127]
  // Convenience overload reads the same snapshot.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.5);
  // Degenerate inputs stay in range.
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), s.Quantile(0.0));
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), 127.0);
  Histogram::Snapshot empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.99), 0.0);
}

TEST_F(MetricsTest, QuantileOfZeroOnlyDistributionIsZero) {
  Histogram& h = Registry::Global().GetHistogram("test.quantile.zero");
  for (int i = 0; i < 5; ++i) h.Record(0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);  // bucket 0 is exactly {0}
}

TEST_F(MetricsTest, DumpsCarryInterpolatedPercentiles) {
  Registry::Global().GetHistogram("test.pct.hist").Record(10);
  std::string text = Registry::Global().DumpText();
  EXPECT_NE(text.find("p50="), std::string::npos) << text;
  EXPECT_NE(text.find("p95="), std::string::npos) << text;
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
  std::string json = Registry::Global().DumpJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

// The ctest `parallel`-label target: N threads hammer the same counter and
// histogram; after join the merged totals must be exact (no lost updates,
// no torn shard reads). Runs TSan-clean under FRAPPE_SANITIZE=thread.
TEST_F(MetricsTest, ConcurrentRecordingMergesExactly) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  Counter& c = Registry::Global().GetCounter("test.mt.counter");
  Histogram& h = Registry::Global().GetHistogram("test.mt.hist");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Record(static_cast<uint64_t>(t) + 1);  // per-thread bucket
      }
    });
  }
  // Read concurrently with the writers: totals must be torn-free
  // (monotonic, never above the final value).
  uint64_t last = 0;
  for (int probe = 0; probe < 100; ++probe) {
    uint64_t v = c.Value();
    EXPECT_GE(v, last);
    EXPECT_LE(v, kThreads * kPerThread);
    last = v;
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum = expected_sum + (static_cast<uint64_t>(t) + 1) * kPerThread;
  }
  EXPECT_EQ(s.sum, expected_sum);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST_F(MetricsTest, DumpTextListsInstruments) {
  Registry::Global().GetCounter("test.dump.counter").Add(3);
  Registry::Global().GetGauge("test.dump.gauge").Set(-7);
  Registry::Global().GetHistogram("test.dump.hist").Record(16);
  std::string text = Registry::Global().DumpText();
  EXPECT_NE(text.find("test.dump.counter"), std::string::npos) << text;
  EXPECT_NE(text.find("test.dump.gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("test.dump.hist"), std::string::npos) << text;
  EXPECT_NE(text.find('3'), std::string::npos) << text;
}

TEST_F(MetricsTest, DumpJsonIsWellFormedEnough) {
  Registry::Global().GetCounter("test.json.counter").Add(1);
  std::string json = Registry::Global().DumpJson();
  // Balanced braces and the instrument name present — full JSON validation
  // happens in tools/trace_check.py territory; this is a smoke check.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos) << json;
  size_t open = 0, close = 0;
  for (char ch : json) {
    if (ch == '{') ++open;
    if (ch == '}') ++close;
  }
  EXPECT_EQ(open, close);
}

TEST_F(MetricsTest, ResetKeepsReferencesValidAndZeroed) {
  Counter& c = Registry::Global().GetCounter("test.reset");
  c.Add(9);
  Registry::Global().ResetForTesting();
  // The old reference must stay safe to touch (parked, not freed)...
  c.Add(1);
  // ...while a fresh lookup starts from zero.
  Counter& fresh = Registry::Global().GetCounter("test.reset");
  EXPECT_EQ(fresh.Value(), 0u);
  fresh.Add(2);
  EXPECT_EQ(fresh.Value(), 2u);
}

}  // namespace
}  // namespace frappe::obs
