#include "obs/log.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/log_hook.h"
#include "gtest/gtest.h"

namespace frappe::obs {
namespace {

// Every test routes the file sink to a scratch file so the suite doesn't
// spray structured lines over the gtest output, and resets the singleton
// state (ring, threshold cache, sink probe) around itself.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("FRAPPE_LOG_FILE", kScratchPath, 1);
    ::unsetenv("FRAPPE_LOG_LEVEL");
    Log::ResetForTesting();
  }
  void TearDown() override {
    Log::ResetForTesting();
    ::unsetenv("FRAPPE_LOG_FILE");
    ::unsetenv("FRAPPE_LOG_LEVEL");
    std::remove(kScratchPath);
  }

  static constexpr const char* kScratchPath = "log_test_scratch.log";
};

TEST_F(LogTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "off");
}

TEST_F(LogTest, ParseLogLevelAcceptsAliasesAndCase) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(ParseLogLevel("none", &level));
  EXPECT_EQ(level, LogLevel::kOff);

  level = LogLevel::kDebug;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // untouched on failure
}

TEST_F(LogTest, ThresholdComesFromEnv) {
  ::setenv("FRAPPE_LOG_LEVEL", "error", 1);
  Log::ResetForTesting();
  EXPECT_EQ(Log::Threshold(), LogLevel::kError);
  EXPECT_FALSE(Log::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::Enabled(LogLevel::kError));

  // Unknown values warn and fall back to the default.
  ::setenv("FRAPPE_LOG_LEVEL", "shouty", 1);
  Log::ResetForTesting();
  EXPECT_EQ(Log::Threshold(), LogLevel::kInfo);

  ::unsetenv("FRAPPE_LOG_LEVEL");
  Log::ResetForTesting();
  EXPECT_EQ(Log::Threshold(), LogLevel::kInfo);
  EXPECT_FALSE(Log::Enabled(LogLevel::kDebug));
}

TEST_F(LogTest, WritesBelowThresholdAreDropped) {
  Log::SetThreshold(LogLevel::kWarn);
  LogInfo("test", "too quiet");
  LogWarn("test", "loud enough");
  std::vector<LogEntry> recent = Log::Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].level, LogLevel::kWarn);
  EXPECT_EQ(recent[0].component, "test");
  EXPECT_EQ(recent[0].message, "loud enough");
  EXPECT_GT(recent[0].ts_us, 0u);
}

TEST_F(LogTest, OffSuppressesEverything) {
  Log::SetThreshold(LogLevel::kOff);
  LogError("test", "even errors");
  EXPECT_TRUE(Log::Recent().empty());
}

TEST_F(LogTest, FormatLogLineIsCanonicalKeyValue) {
  LogEntry entry;
  entry.ts_us = 1234567890123456ull;  // 2009-02-13T23:31:30.123456Z
  entry.level = LogLevel::kWarn;
  entry.component = "qlog";
  entry.message = "rotation failed: \"disk\" full";
  EXPECT_EQ(FormatLogLine(entry),
            "ts=2009-02-13T23:31:30.123456Z level=warn component=qlog "
            "msg=\"rotation failed: \\\"disk\\\" full\"");
}

TEST_F(LogTest, TestSinkMirrorsPassingEntries) {
  Log::SetThreshold(LogLevel::kInfo);
  std::vector<LogEntry> seen;
  Log::SetSinkForTesting([&seen](const LogEntry& e) { seen.push_back(e); });
  LogDebug("test", "filtered");
  LogInfo("test", "mirrored");
  Log::SetSinkForTesting(nullptr);
  LogInfo("test", "after clear");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].message, "mirrored");
}

TEST_F(LogTest, RingIsBoundedAndOldestFirst) {
  Log::SetThreshold(LogLevel::kInfo);
  const size_t total = Log::kRingCapacity + 44;
  for (size_t i = 0; i < total; ++i) {
    LogInfo("ring", "m" + std::to_string(i));
  }
  std::vector<LogEntry> recent = Log::Recent();
  ASSERT_EQ(recent.size(), Log::kRingCapacity);
  EXPECT_EQ(recent.front().message, "m44");
  EXPECT_EQ(recent.back().message, "m" + std::to_string(total - 1));
  EXPECT_EQ(Log::Dropped(), 44u);
}

TEST_F(LogTest, DumpJsonCarriesEntriesAndDropped) {
  Log::SetThreshold(LogLevel::kInfo);
  LogWarn("dump", "hello \"world\"");
  std::string json = Log::DumpJson();
  EXPECT_NE(json.find("\"entries\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"level\": \"warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"component\": \"dump\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"message\": \"hello \\\"world\\\"\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos) << json;
}

TEST_F(LogTest, FileSinkAppendsFormattedLines) {
  Log::SetThreshold(LogLevel::kInfo);
  LogWarn("filetest", "to the file");
  // Write() flushes file sinks, so the line is on disk already.
  std::ifstream in(kScratchPath);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("level=warn component=filetest "
                               "msg=\"to the file\""),
            std::string::npos)
      << content.str();
}

// The common-layer hook (fault injector, file I/O) routes through the full
// obs pipeline via the handler the obs library installs at static init.
TEST_F(LogTest, CommonLayerHookReachesTheRing) {
  Log::SetThreshold(LogLevel::kInfo);
  common::LogMessage(common::kLogWarn, "fault_injector", "via the hook");
  std::vector<LogEntry> recent = Log::Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].level, LogLevel::kWarn);
  EXPECT_EQ(recent[0].component, "fault_injector");
  EXPECT_EQ(recent[0].message, "via the hook");
}

TEST_F(LogTest, ConcurrentWritersNeverTearTheRing) {
  Log::SetThreshold(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogInfo("t" + std::to_string(t), "m" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Log::Recent().size(), Log::kRingCapacity);
  EXPECT_EQ(Log::Dropped(),
            static_cast<uint64_t>(kThreads * kPerThread) - Log::kRingCapacity);
}

}  // namespace
}  // namespace frappe::obs
