// Unit tests for the request-tracing primitives: W3C traceparent
// parsing/formatting, trace/span id hex codecs, the per-request
// SpanCollector, the TraceScope thread-state plumbing, and the bounded
// tail-sampled TraceStore.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "obs/trace_store.h"

namespace frappe::obs {
namespace {

constexpr char kValid[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

TEST(TraceparentTest, ParsesAValidHeader) {
  auto ctx = ParseTraceparent(kValid);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace_hi, 0x4bf92f3577b34da6ull);
  EXPECT_EQ(ctx->trace_lo, 0xa3ce929d0e0e4736ull);
  EXPECT_EQ(ctx->span_id, 0x00f067aa0ba902b7ull);
  EXPECT_TRUE(ctx->valid());
}

TEST(TraceparentTest, RejectsEveryMalformedShape) {
  const char* kBad[] = {
      "",
      "garbage",
      // Truncated / overlong.
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-012",
      // Wrong delimiters.
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",
      // Non-hex and uppercase (the spec requires lowercase).
      "00-zbf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
      // Version 0xff is forbidden.
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      // All-zero trace id / span id are invalid.
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
  };
  for (const char* header : kBad) {
    EXPECT_FALSE(ParseTraceparent(header).has_value()) << header;
  }
}

TEST(TraceparentTest, FutureVersionsStillParse) {
  // Per the spec, an unknown (non-ff) version with the 00-shaped tail is
  // accepted so traces survive intermediaries newer than this code.
  std::string header(kValid);
  header[0] = '4';
  header[1] = '2';
  EXPECT_TRUE(ParseTraceparent(header).has_value());
}

TEST(TraceparentTest, FormatRoundTrips) {
  auto ctx = ParseTraceparent(kValid);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(FormatTraceparent(*ctx), kValid);
  auto again = ParseTraceparent(FormatTraceparent(*ctx));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->trace_hi, ctx->trace_hi);
  EXPECT_EQ(again->trace_lo, ctx->trace_lo);
  EXPECT_EQ(again->span_id, ctx->span_id);
}

TEST(TraceparentTest, HexCodecsRoundTrip) {
  EXPECT_EQ(TraceIdHex(0x4bf92f3577b34da6ull, 0xa3ce929d0e0e4736ull),
            "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(SpanIdHex(0x00f067aa0ba902b7ull), "00f067aa0ba902b7");
  EXPECT_EQ(SpanIdHex(0), "0000000000000000");
  uint64_t hi = 0, lo = 0;
  ASSERT_TRUE(
      ParseTraceIdHex("4bf92f3577b34da6a3ce929d0e0e4736", &hi, &lo));
  EXPECT_EQ(hi, 0x4bf92f3577b34da6ull);
  EXPECT_EQ(lo, 0xa3ce929d0e0e4736ull);
  EXPECT_FALSE(ParseTraceIdHex("4bf92f3577b34da6", &hi, &lo));  // short
  EXPECT_FALSE(
      ParseTraceIdHex("4bf92f3577b34da6a3ce929d0e0e473g", &hi, &lo));
}

TEST(TraceparentTest, GeneratedContextsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceContext ctx = GenerateTraceContext();
    EXPECT_TRUE(ctx.valid());
    // span_id stays 0: a minted context has no remote parent — the server
    // allocates its own root span id on top.
    EXPECT_EQ(ctx.span_id, 0u);
    seen.insert(TraceIdHex(ctx));
  }
  EXPECT_EQ(seen.size(), 64u) << "generated trace ids collided";
}

TEST(SpanCollectorTest, CollectsUpToCapacityThenCountsDrops) {
  SpanCollector collector(/*capacity=*/4);
  CollectedSpan span;
  span.name = "s";
  for (int i = 0; i < 7; ++i) {
    span.span_id = static_cast<uint64_t>(i + 1);
    collector.Add(span);
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 3u);
  std::vector<CollectedSpan> spans = collector.TakeSpans();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceScopeTest, InstallsContextAndCollectsParentedSpans) {
  ASSERT_FALSE(Trace::HasRequestContext());
  EXPECT_FALSE(Trace::CurrentContext().valid());

  TraceContext ctx;
  ctx.trace_hi = 0x1111;
  ctx.trace_lo = 0x2222;
  ctx.span_id = 0x3333;
  SpanCollector sink;
  {
    TraceScope scope(ctx, &sink, /*queue_wait_us=*/42);
    EXPECT_TRUE(Trace::HasRequestContext());
    EXPECT_EQ(Trace::CurrentContext().trace_hi, 0x1111u);
    EXPECT_EQ(Trace::CurrentQueueWaitUs(), 42u);
    {
      Span outer("outer");
      Span inner("inner");
      EXPECT_NE(inner.span_id(), outer.span_id());
    }
  }
  // The scope is popped: spans no longer record, context is gone.
  EXPECT_FALSE(Trace::HasRequestContext());
  EXPECT_EQ(Trace::CurrentQueueWaitUs(), 0u);

  std::vector<CollectedSpan> spans = sink.TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: inner recorded first, then outer.
  EXPECT_EQ(std::string_view(spans[0].name), "inner");
  EXPECT_EQ(std::string_view(spans[1].name), "outer");
  EXPECT_EQ(spans[1].parent_id, 0x3333u);  // outer parents under the root
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);  // inner under outer
}

TEST(TraceScopeTest, NoSpansRecordedWithoutScopeOrGlobalEnable) {
  ASSERT_FALSE(Trace::enabled());
  SpanCollector sink;
  {
    Span span("ignored");
    EXPECT_EQ(span.span_id(), 0u);
  }
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceStoreTest, RetainLookupReplaceAndEvict) {
  TraceStore store(/*capacity=*/2);
  StoredTrace a;
  a.trace_hi = 1;
  a.trace_lo = 1;
  a.reason = "slow";
  a.latency_ms = 10;
  store.Retain(a);
  StoredTrace out;
  ASSERT_TRUE(store.Lookup(1, 1, &out));
  EXPECT_EQ(out.reason, "slow");
  EXPECT_FALSE(store.Lookup(9, 9, &out));

  // Same trace id replaces rather than duplicating.
  a.reason = "error";
  store.Retain(a);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Lookup(1, 1, &out));
  EXPECT_EQ(out.reason, "error");

  // Past capacity the oldest retained trace is evicted.
  StoredTrace b = a;
  b.trace_lo = 2;
  store.Retain(b);
  StoredTrace c = a;
  c.trace_lo = 3;
  store.Retain(c);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_FALSE(store.Lookup(1, 1, &out));
  EXPECT_TRUE(store.Lookup(1, 2, &out));
  EXPECT_TRUE(store.Lookup(1, 3, &out));
}

TEST(TraceStoreTest, IndexAndTraceJsonCarryIdentity) {
  TraceStore store;
  StoredTrace t;
  t.trace_hi = 0x4bf92f3577b34da6ull;
  t.trace_lo = 0xa3ce929d0e0e4736ull;
  t.reason = "requested";
  t.status = "ok";
  t.fingerprint = "0123456789abcdef";
  t.latency_ms = 1.5;
  CollectedSpan span;
  span.name = "server.request";
  span.span_id = 7;
  span.start_us = 10;
  span.dur_us = 20;
  t.spans.push_back(span);
  store.Retain(t);

  std::string index = store.IndexJson();
  EXPECT_NE(index.find("\"retained\": 1"), std::string::npos) << index;
  EXPECT_NE(index.find("4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos)
      << index;
  EXPECT_NE(index.find("\"reason\": \"requested\""), std::string::npos)
      << index;

  std::string tree = TraceStore::TraceJson(t);
  EXPECT_NE(tree.find("\"traceEvents\""), std::string::npos) << tree;
  EXPECT_NE(tree.find("server.request"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\"span_id\": \"0000000000000007\""),
            std::string::npos)
      << tree;
  EXPECT_NE(tree.find("4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos)
      << tree;
}

}  // namespace
}  // namespace frappe::obs
