#include "obs/query_log.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace frappe::obs {
namespace {

QueryLogRecord MakeRecord(int i) {
  QueryLogRecord record;
  record.ts_us = 1700000000000000 + i;
  record.fingerprint = 0xDEADBEEF00000000ull + static_cast<uint64_t>(i);
  record.trace_id = TraceIdHex(0x1000 + static_cast<uint64_t>(i), 0x2000);
  record.query = "match(f:function{name:?})return f";
  record.raw = "MATCH (f:function {name: 'fn_" + std::to_string(i) +
               "'}) RETURN f";
  record.status = "ok";
  record.latency_us = 100 + static_cast<uint64_t>(i);
  record.rows = static_cast<uint64_t>(i);
  record.db_hits = static_cast<uint64_t>(i) * 3;
  record.fast_path = i % 2 == 0;
  return record;
}

int64_t FileSize(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

TEST(QueryLogRecordTest, JsonLineRoundTrips) {
  QueryLogRecord record = MakeRecord(7);
  record.status = "DeadlineExceeded";
  std::string line = ToJsonLine(record);
  ASSERT_EQ(line.back(), '\n');

  auto parsed = ParseJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ts_us, record.ts_us);
  EXPECT_EQ(parsed->fingerprint, record.fingerprint);
  EXPECT_EQ(parsed->query, record.query);
  EXPECT_EQ(parsed->raw, record.raw);
  EXPECT_EQ(parsed->status, "DeadlineExceeded");
  EXPECT_EQ(parsed->latency_us, record.latency_us);
  EXPECT_EQ(parsed->rows, record.rows);
  EXPECT_EQ(parsed->db_hits, record.db_hits);
  EXPECT_EQ(parsed->fast_path, record.fast_path);
}

TEST(QueryLogRecordTest, JsonEscapesSurvive) {
  QueryLogRecord record;
  record.fingerprint = 1;
  record.query = "match(n{name:?})";
  record.raw = "MATCH (n {name: 'quote\"back\\slash\ttab\nnewline'})";
  auto parsed = ParseJsonLine(ToJsonLine(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->raw, record.raw);
}

TEST(QueryLogRecordTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJsonLine("not json").ok());
  EXPECT_FALSE(ParseJsonLine("{\"ts_us\": 1}").ok());  // missing fp/query
  EXPECT_FALSE(ParseJsonLine("").ok());
}

class QueryLogTest : public ::testing::Test {
 protected:
  void TearDown() override { QueryLog::Global().Disable(); }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(QueryLogTest, RecordsReachDiskInOrder) {
  std::string path = TempPath("qlog_basic.jsonl");
  std::remove(path.c_str());
  QueryLog::Options options;
  options.path = path;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  uint64_t written_before = QueryLog::Global().written();
  uint64_t dropped_before = QueryLog::Global().dropped();

  constexpr int kRecords = 100;
  for (int i = 0; i < kRecords; ++i) {
    QueryLog::Global().Record(MakeRecord(i));
  }
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  EXPECT_EQ(QueryLog::Global().written() - written_before,
            static_cast<uint64_t>(kRecords));
  EXPECT_EQ(QueryLog::Global().dropped() - dropped_before, 0u);
  QueryLog::Global().Disable();

  auto records = ReadQueryLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ((*records)[i].rows, static_cast<uint64_t>(i));
  }
}

TEST_F(QueryLogTest, EnableTwiceFails) {
  QueryLog::Options options;
  options.path = TempPath("qlog_twice.jsonl");
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  EXPECT_FALSE(QueryLog::Global().Enable(options).ok());
}

TEST_F(QueryLogTest, DisabledLogDropsSilently) {
  // No Enable: Record must be a no-op, not a crash or a queue-up.
  QueryLog::Global().Record(MakeRecord(0));
  EXPECT_FALSE(QueryLog::Global().enabled());
}

// Satellite: rotation honors the size cap, renames atomically, and never
// tears a line.
TEST_F(QueryLogTest, RotationHonorsSizeCapWithoutTearingLines) {
  std::string path = TempPath("qlog_rotate.jsonl");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  QueryLog::Options options;
  options.path = path;
  options.max_bytes = 2048;  // a handful of ~200-byte records per file
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  uint64_t written_before = QueryLog::Global().written();
  uint64_t rotations_before = QueryLog::Global().rotations();

  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    QueryLog::Global().Record(MakeRecord(i));
    // Keep the ring shallow so the writer interleaves with production and
    // rotation happens mid-stream, not in one terminal drain.
    if (i % 16 == 0) {
      ASSERT_TRUE(QueryLog::Global().Flush().ok());
    }
  }
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  EXPECT_GE(QueryLog::Global().rotations() - rotations_before, 1u);
  EXPECT_EQ(QueryLog::Global().written() - written_before,
            static_cast<uint64_t>(kRecords));
  QueryLog::Global().Disable();

  // The live file never exceeds the cap (rotate happens *before* the
  // breaching write), and the rotated generation exists.
  EXPECT_LE(FileSize(path), static_cast<int64_t>(options.max_bytes));
  EXPECT_GT(FileSize(path + ".1"), 0);

  // No torn lines in either file: every line parses, and the records that
  // survived (the newest file plus one rotated generation) are a suffix of
  // what was logged — contiguous, in order.
  auto rotated = ReadQueryLogFile(path + ".1");
  ASSERT_TRUE(rotated.ok()) << rotated.status().ToString();
  auto live = ReadQueryLogFile(path);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  std::vector<QueryLogRecord> survived = *rotated;
  survived.insert(survived.end(), live->begin(), live->end());
  ASSERT_FALSE(survived.empty());
  EXPECT_EQ(survived.back().rows, static_cast<uint64_t>(kRecords - 1));
  for (size_t i = 1; i < survived.size(); ++i) {
    EXPECT_EQ(survived[i].rows, survived[i - 1].rows + 1);
  }
}

TEST_F(QueryLogTest, FullRingShedsLoadAndCountsDrops) {
  std::string path = TempPath("qlog_drop.jsonl");
  std::remove(path.c_str());
  QueryLog::Options options;
  options.path = path;
  options.ring_capacity = 8;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  uint64_t dropped_before = QueryLog::Global().dropped();

  QueryLog::Global().PauseWriterForTesting(true);
  for (int i = 0; i < 20; ++i) {
    QueryLog::Global().Record(MakeRecord(i));
  }
  // 8 slots filled, 12 shed — the query path never blocked.
  EXPECT_EQ(QueryLog::Global().dropped() - dropped_before, 12u);
  QueryLog::Global().PauseWriterForTesting(false);
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  QueryLog::Global().Disable();

  auto records = ReadQueryLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 8u);
}

// Exports the fixture file tools/qlog_check.py validates from ctest (the
// `qlog_check` entry; WORKING_DIRECTORY pins where it lands).
TEST_F(QueryLogTest, ExportsSchemaFixture) {
  const std::string path = "qlog_export.jsonl";
  std::remove(path.c_str());
  QueryLog::Options options;
  options.path = path;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());
  for (int i = 0; i < 10; ++i) {
    QueryLogRecord record = MakeRecord(i);
    if (i == 9) record.status = "InvalidArgument";
    QueryLog::Global().Record(std::move(record));
  }
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  QueryLog::Global().Disable();
  EXPECT_GT(FileSize(path), 0);
}

}  // namespace
}  // namespace frappe::obs
