#include "obs/query_registry.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace frappe::obs {
namespace {

// The registry is a process-lifetime singleton; each test leaves it empty
// (handles are scoped) and re-enabled. Logging goes to a scratch file so
// the Cancel/watchdog lines don't interleave with gtest output.
class QueryRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("FRAPPE_LOG_FILE", "registry_test_scratch.log", 1);
    Log::ResetForTesting();
    registry().set_enabled(true);
    ASSERT_EQ(registry().size(), 0u);
  }
  void TearDown() override {
    registry().StopWatchdog();
    registry().set_enabled(true);
    EXPECT_EQ(registry().size(), 0u);
    Log::ResetForTesting();
    ::unsetenv("FRAPPE_LOG_FILE");
    std::remove("registry_test_scratch.log");
  }

  static QueryRegistry& registry() { return QueryRegistry::Global(); }
};

TEST_F(QueryRegistryTest, RegisterSnapshotUnregister) {
  uint64_t id = 0;
  {
    QueryRegistry::Handle handle = registry().Register(
        0xabcdefull, "match (f:function) return f",
        "MATCH (f:function) RETURN f", nullptr);
    ASSERT_NE(handle.entry(), nullptr);
    id = handle.entry()->id;
    EXPECT_GT(id, 0u);
    EXPECT_EQ(registry().size(), 1u);

    std::vector<QueryRegistry::Snapshot> all = registry().SnapshotAll();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].id, id);
    EXPECT_EQ(all[0].fingerprint, 0xabcdefull);
    EXPECT_EQ(all[0].normalized, "match (f:function) return f");
    EXPECT_EQ(all[0].raw, "MATCH (f:function) RETURN f");
    EXPECT_GT(all[0].start_unix_us, 0u);
    EXPECT_GE(all[0].elapsed_ms, 0.0);
    EXPECT_EQ(all[0].steps, 0u);
    EXPECT_EQ(all[0].op, nullptr);
    EXPECT_FALSE(all[0].cancel_requested);
  }
  EXPECT_EQ(registry().size(), 0u);
  EXPECT_FALSE(registry().Cancel(id));  // gone
}

TEST_F(QueryRegistryTest, IdsAreUniqueAndIncreasing) {
  QueryRegistry::Handle a = registry().Register(1, "a", "a", nullptr);
  QueryRegistry::Handle b = registry().Register(2, "b", "b", nullptr);
  ASSERT_NE(a.entry(), nullptr);
  ASSERT_NE(b.entry(), nullptr);
  EXPECT_LT(a.entry()->id, b.entry()->id);
  EXPECT_EQ(registry().size(), 2u);
}

TEST_F(QueryRegistryTest, CancelTripsOwnToken) {
  QueryRegistry::Handle handle =
      registry().Register(7, "q", "q", /*external_token=*/nullptr);
  ASSERT_NE(handle.entry(), nullptr);
  // No caller token: the entry owns its own.
  EXPECT_EQ(handle.entry()->cancel_token, &handle.entry()->own_cancel);
  EXPECT_FALSE(handle.entry()->cancel_token->load());

  EXPECT_TRUE(registry().Cancel(handle.entry()->id));
  EXPECT_TRUE(handle.entry()->cancel_token->load());
  std::vector<QueryRegistry::Snapshot> all = registry().SnapshotAll();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].cancel_requested);
}

TEST_F(QueryRegistryTest, CancelAliasesExternalToken) {
  std::atomic<bool> token{false};
  QueryRegistry::Handle handle = registry().Register(7, "q", "q", &token);
  ASSERT_NE(handle.entry(), nullptr);
  EXPECT_EQ(handle.entry()->cancel_token, &token);
  EXPECT_TRUE(registry().Cancel(handle.entry()->id));
  // /debug/cancel and the caller share one switch.
  EXPECT_TRUE(token.load());
}

TEST_F(QueryRegistryTest, CancelUnknownIdFails) {
  EXPECT_FALSE(registry().Cancel(123456789));
}

TEST_F(QueryRegistryTest, DisabledRegistryHandsOutEmptyHandles) {
  registry().set_enabled(false);
  QueryRegistry::Handle handle = registry().Register(1, "q", "q", nullptr);
  EXPECT_EQ(handle.entry(), nullptr);
  EXPECT_EQ(registry().size(), 0u);
  registry().set_enabled(true);
}

TEST_F(QueryRegistryTest, HandleMoveTransfersOwnership) {
  QueryRegistry::Handle a = registry().Register(1, "q", "q", nullptr);
  ASSERT_NE(a.entry(), nullptr);
  QueryRegistry::Handle b = std::move(a);
  EXPECT_EQ(a.entry(), nullptr);
  ASSERT_NE(b.entry(), nullptr);
  EXPECT_EQ(registry().size(), 1u);
  QueryRegistry::Handle c;
  c = std::move(b);
  EXPECT_EQ(registry().size(), 1u);
}

TEST_F(QueryRegistryTest, DumpJsonHasTheQueryzSchema) {
  QueryRegistry::Handle handle = registry().Register(
      0x0123456789abcdefull, "match (f:function) return f",
      "MATCH (f:function) RETURN f", nullptr);
  ASSERT_NE(handle.entry(), nullptr);
  handle.entry()->progress.steps.store(42);
  std::string json = registry().DumpJson();
  EXPECT_NE(json.find("\"now_us\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"fp\": \"0123456789abcdef\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"raw\": \"MATCH (f:function) RETURN f\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"steps\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"operator\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cancel_requested\": false"), std::string::npos)
      << json;
}

TEST_F(QueryRegistryTest, WatchdogWarnsOncePerStuckQuery) {
  Log::SetThreshold(LogLevel::kWarn);
  std::vector<LogEntry> warnings;
  std::mutex mu;
  Log::SetSinkForTesting([&](const LogEntry& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e.component == "watchdog") warnings.push_back(e);
  });

  QueryRegistry::Handle handle =
      registry().Register(9, "slow query", "slow query", nullptr);
  ASSERT_NE(handle.entry(), nullptr);
  registry().StartWatchdog(/*threshold_ms=*/1, /*interval_ms=*/5);
  EXPECT_TRUE(registry().watchdog_running());
  // Several watchdog scan intervals pass; the query stays "stuck".
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  registry().StopWatchdog();
  EXPECT_FALSE(registry().watchdog_running());
  Log::SetSinkForTesting(nullptr);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(warnings.size(), 1u) << "warn-once per query, not per scan";
  EXPECT_NE(warnings[0].message.find("stuck query"), std::string::npos);
  EXPECT_NE(warnings[0].message.find(
                "id=" + std::to_string(handle.entry()->id)),
            std::string::npos)
      << warnings[0].message;
}

TEST_F(QueryRegistryTest, WatchdogIgnoresFastQueries) {
  Log::SetThreshold(LogLevel::kWarn);
  std::vector<LogEntry> warnings;
  std::mutex mu;
  Log::SetSinkForTesting([&](const LogEntry& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e.component == "watchdog") warnings.push_back(e);
  });
  registry().StartWatchdog(/*threshold_ms=*/60000, /*interval_ms=*/5);
  {
    QueryRegistry::Handle handle =
        registry().Register(9, "fast", "fast", nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  registry().StopWatchdog();
  Log::SetSinkForTesting(nullptr);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(warnings.empty());
}

TEST_F(QueryRegistryTest, WatchdogCancelActionTripsTheToken) {
  Log::SetThreshold(LogLevel::kWarn);
  std::vector<LogEntry> warnings;
  std::mutex mu;
  Log::SetSinkForTesting([&](const LogEntry& e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e.component == "watchdog") warnings.push_back(e);
  });
  uint64_t cancelled_before =
      Registry::Global().GetCounter("query.watchdog_cancelled").Value();

  QueryRegistry::Handle handle =
      registry().Register(9, "stuck query", "stuck query", nullptr);
  ASSERT_NE(handle.entry(), nullptr);
  registry().StartWatchdog(/*threshold_ms=*/1, /*interval_ms=*/5,
                           QueryRegistry::WatchdogAction::kCancel);
  // Give the watchdog several scan intervals: it must cancel exactly once.
  for (int i = 0; i < 100 && !handle.entry()->cancel_token->load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  registry().StopWatchdog();
  Log::SetSinkForTesting(nullptr);

  // The stuck query's cancel token is tripped — the executor's next poll
  // ends it with kCancelled, same as /debug/cancel.
  EXPECT_TRUE(handle.entry()->cancel_token->load());
  EXPECT_TRUE(handle.entry()->cancel_requested.load());
  EXPECT_EQ(
      Registry::Global().GetCounter("query.watchdog_cancelled").Value(),
      cancelled_before + 1);

  std::lock_guard<std::mutex> lock(mu);
  // One warn + one cancelled line, both exactly once despite many scans.
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_NE(warnings[0].message.find("stuck query"), std::string::npos);
  EXPECT_NE(warnings[1].message.find("cancelled"), std::string::npos);
}

TEST_F(QueryRegistryTest, WatchdogActionFromEnv) {
  ::setenv("FRAPPE_STUCK_QUERY_MS", "30000", 1);
  ::setenv("FRAPPE_STUCK_QUERY_ACTION", "cancel", 1);
  EXPECT_TRUE(registry().MaybeStartWatchdogFromEnv());
  EXPECT_TRUE(registry().watchdog_running());
  registry().StopWatchdog();

  // Unknown action values warn and fall back to warn-only.
  ::setenv("FRAPPE_STUCK_QUERY_ACTION", "explode", 1);
  EXPECT_TRUE(registry().MaybeStartWatchdogFromEnv());
  registry().StopWatchdog();
  ::unsetenv("FRAPPE_STUCK_QUERY_ACTION");
  ::unsetenv("FRAPPE_STUCK_QUERY_MS");
}

TEST_F(QueryRegistryTest, WatchdogFromEnv) {
  ::unsetenv("FRAPPE_STUCK_QUERY_MS");
  EXPECT_FALSE(registry().MaybeStartWatchdogFromEnv());
  EXPECT_FALSE(registry().watchdog_running());

  ::setenv("FRAPPE_STUCK_QUERY_MS", "not-a-number", 1);
  EXPECT_FALSE(registry().MaybeStartWatchdogFromEnv());

  ::setenv("FRAPPE_STUCK_QUERY_MS", "30000", 1);
  EXPECT_TRUE(registry().MaybeStartWatchdogFromEnv());
  EXPECT_TRUE(registry().watchdog_running());
  registry().StopWatchdog();
  ::unsetenv("FRAPPE_STUCK_QUERY_MS");
}

TEST_F(QueryRegistryTest, ConcurrentRegisterCancelSnapshot) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::atomic<uint64_t> cancelled{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &cancelled] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRegistry::Handle handle = registry().Register(
            static_cast<uint64_t>(t), "q", "q" + std::to_string(i), nullptr);
        ASSERT_NE(handle.entry(), nullptr);
        handle.entry()->progress.steps.fetch_add(1);
        if (i % 7 == 0 && registry().Cancel(handle.entry()->id)) {
          cancelled.fetch_add(1);
        }
      }
    });
  }
  // Readers race the writers: snapshots and dumps must stay coherent.
  std::thread reader([this] {
    for (int i = 0; i < 50; ++i) {
      registry().SnapshotAll();
      registry().DumpJson();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  for (std::thread& t : threads) t.join();
  reader.join();
  EXPECT_EQ(registry().size(), 0u);  // every handle released
  EXPECT_GT(cancelled.load(), 0u);
}

}  // namespace
}  // namespace frappe::obs
