#include "obs/fingerprint.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace frappe::obs {
namespace {

// ---------------------------------------------------------------------------
// Normalization: the query's *shape* survives, its parameters don't.

TEST(NormalizeQueryTest, CollapsesWhitespaceAndCase) {
  EXPECT_EQ(NormalizeQuery("MATCH   (f:Function)\n\tRETURN f").text,
            "match(f:function)return f");
}

TEST(NormalizeQueryTest, StripsComments) {
  EXPECT_EQ(NormalizeQuery("MATCH (f) // find everything\nRETURN f").text,
            "match(f)return f");
}

TEST(NormalizeQueryTest, NumericLiteralsBecomePlaceholders) {
  EXPECT_EQ(NormalizeQuery("WHERE f.line > 100 AND f.col < 2.5").text,
            "where f.line > ? and f.col < ?");
}

TEST(NormalizeQueryTest, RangeStaysFusedNextToInts) {
  // `1..3` must not lex as the float `1.` — the lexer rule the normalizer
  // mirrors only consumes '.' when a digit follows.
  EXPECT_EQ(NormalizeQuery("-[:calls*1..3]->").text, "-[:calls*?..?]->");
}

TEST(NormalizeQueryTest, StringLiteralsBecomePlaceholders) {
  EXPECT_EQ(NormalizeQuery("MATCH (n {name: 'vfs_read'}) RETURN n").text,
            "match(n{name:?})return n");
}

TEST(NormalizeQueryTest, IndexLookupStringsKeepTheField) {
  // The Figure 6 START shape: the index field is part of the query shape,
  // the looked-up value is a parameter.
  EXPECT_EQ(
      NormalizeQuery("START n=node:node_auto_index('short_name: cmd')"
                     " MATCH n RETURN n")
          .text,
      "start n = node:node_auto_index('short_name: ?')match n return n");
}

TEST(NormalizeQueryTest, SameShapeDifferentLiteralsSameFingerprint) {
  auto a = NormalizeQuery(
      "START n=node:node_auto_index('short_name: sr_do_ioctl') RETURN n");
  auto b = NormalizeQuery(
      "START n=node:node_auto_index('short_name: vfs_read') RETURN n");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(NormalizeQueryTest, DifferentIndexFieldsDifferentFingerprint) {
  auto a = NormalizeQuery("START n=node:node_auto_index('short_name: x')");
  auto b = NormalizeQuery("START n=node:node_auto_index('name: x')");
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(NormalizeQueryTest, DifferentShapesDifferentFingerprint) {
  EXPECT_NE(NormalizeQuery("MATCH (f:function) RETURN f").fingerprint,
            NormalizeQuery("MATCH (f:struct) RETURN f").fingerprint);
}

TEST(NormalizeQueryTest, FingerprintIsStableAcrossRuns) {
  // FNV-1a over the normalized text: pin one value so an accidental change
  // to the hash or the normalizer shows up as a diff, not silent drift
  // (fingerprints are persisted in query logs — they must not change
  // between builds).
  EXPECT_EQ(Fingerprint64("match(f:function)return f"),
            NormalizeQuery("MATCH (f:function) RETURN f").fingerprint);
  EXPECT_EQ(Fingerprint64(""), 14695981039346656037ull);  // FNV offset basis
}

TEST(NormalizeQueryTest, FingerprintHexIsFixedWidthLowerCase) {
  EXPECT_EQ(FingerprintHex(0), "0000000000000000");
  EXPECT_EQ(FingerprintHex(0xABCDEF0123456789ull), "abcdef0123456789");
}

// ---------------------------------------------------------------------------
// QueryStats: the per-fingerprint table.

class QueryStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { QueryStats::Global().ResetForTesting(); }
  void TearDown() override { QueryStats::Global().ResetForTesting(); }
};

TEST_F(QueryStatsTest, RecordsAccumulate) {
  auto& entry = QueryStats::Global().GetOrCreate(42, "match(f)return f");
  entry.Record(/*ok=*/true, /*latency=*/100, /*row_count=*/7,
               /*hit_count=*/50);
  entry.Record(/*ok=*/false, /*latency=*/300, /*row_count=*/0,
               /*hit_count=*/10);
  auto all = QueryStats::Global().SnapshotAll();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].fingerprint, 42u);
  EXPECT_EQ(all[0].normalized, "match(f)return f");
  EXPECT_EQ(all[0].calls, 2u);
  EXPECT_EQ(all[0].errors, 1u);
  EXPECT_EQ(all[0].total_latency_us, 400u);
  EXPECT_EQ(all[0].max_latency_us, 300u);
  EXPECT_EQ(all[0].rows, 7u);
  EXPECT_EQ(all[0].db_hits, 60u);
  EXPECT_EQ(all[0].latency.count, 2u);
}

TEST_F(QueryStatsTest, GetOrCreateInternsOnce) {
  auto& a = QueryStats::Global().GetOrCreate(7, "q");
  auto& b = QueryStats::Global().GetOrCreate(7, "q");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(QueryStats::Global().size(), 1u);
}

TEST_F(QueryStatsTest, TopOrdersByTotalLatencyAndCalls) {
  QueryStats::Global().GetOrCreate(1, "cheap").Record(true, 10, 1, 1);
  QueryStats::Global().GetOrCreate(1, "cheap").Record(true, 10, 1, 1);
  QueryStats::Global().GetOrCreate(1, "cheap").Record(true, 10, 1, 1);
  QueryStats::Global().GetOrCreate(2, "expensive").Record(true, 900, 1, 1);

  auto by_latency = QueryStats::Global().Top(1, QueryStats::Order::kTotalLatency);
  ASSERT_EQ(by_latency.size(), 1u);
  EXPECT_EQ(by_latency[0].fingerprint, 2u);

  auto by_calls = QueryStats::Global().Top(1, QueryStats::Order::kCalls);
  ASSERT_EQ(by_calls.size(), 1u);
  EXPECT_EQ(by_calls[0].fingerprint, 1u);
}

TEST_F(QueryStatsTest, DumpJsonContainsTheEntry) {
  QueryStats::Global()
      .GetOrCreate(0xABCD, "match(f)return f")
      .Record(true, 250, 3, 42);
  std::string json = QueryStats::Global().DumpJson();
  EXPECT_NE(json.find("\"fp\": \"000000000000abcd\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"db_hits\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_latency_us\""), std::string::npos) << json;
}

// The satellite requirement: N threads x M fingerprints, exact totals
// after quiesce (run under TSan via the `parallel` ctest label).
TEST_F(QueryStatsTest, ConcurrentRecordsAreExactAfterQuiesce) {
  constexpr int kThreads = 8;
  constexpr int kFingerprints = 16;
  constexpr int kIters = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        uint64_t fp = static_cast<uint64_t>((t + i) % kFingerprints) + 1;
        QueryStats::Global()
            .GetOrCreate(fp, "shape")
            .Record(/*ok=*/i % 10 != 0, /*latency=*/1, /*row_count=*/2,
                    /*hit_count=*/3);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto all = QueryStats::Global().SnapshotAll();
  EXPECT_EQ(all.size(), static_cast<size_t>(kFingerprints));
  uint64_t calls = 0, errors = 0, latency = 0, rows = 0, hits = 0,
           histogram_count = 0;
  for (const auto& s : all) {
    calls += s.calls;
    errors += s.errors;
    latency += s.total_latency_us;
    rows += s.rows;
    hits += s.db_hits;
    histogram_count += s.latency.count;
  }
  constexpr uint64_t kTotal = uint64_t{kThreads} * kIters;
  EXPECT_EQ(calls, kTotal);
  EXPECT_EQ(errors, kTotal / 10);  // every 10th record is an error
  EXPECT_EQ(latency, kTotal);
  EXPECT_EQ(rows, 2 * kTotal);
  EXPECT_EQ(hits, 3 * kTotal);
  EXPECT_EQ(histogram_count, kTotal);
}

// ---------------------------------------------------------------------------
// SlowQueryRing.

TEST(SlowQueryRingTest, KeepsTheMostRecentRecords) {
  SlowQueryRing::Global().ResetForTesting();
  for (int i = 0; i < static_cast<int>(SlowQueryRing::kCapacity) + 10; ++i) {
    SlowQueryRing::Record record;
    record.ts_us = i;
    record.fingerprint = static_cast<uint64_t>(i);
    record.normalized = "q" + std::to_string(i);
    record.latency_ms = 1.0;
    SlowQueryRing::Global().Push(std::move(record));
  }
  auto all = SlowQueryRing::Global().SnapshotAll();
  ASSERT_EQ(all.size(), SlowQueryRing::kCapacity);
  // Oldest-first: the first 10 were overwritten.
  EXPECT_EQ(all.front().ts_us, 10);
  EXPECT_EQ(all.back().ts_us,
            static_cast<int64_t>(SlowQueryRing::kCapacity) + 9);
  SlowQueryRing::Global().ResetForTesting();
}

}  // namespace
}  // namespace frappe::obs
