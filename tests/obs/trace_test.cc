// Span tracing: ring capture on/off, per-thread tids, Chrome trace-event
// JSON export — including the exported file for a real Figure 6 query run
// that the `trace_check` ctest entry validates with tools/trace_check.py.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    Trace::Disable();
    Trace::Clear();
  }
  ~TraceTest() override {
    Trace::Disable();
    Trace::Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    FRAPPE_TRACE_SPAN("test.disabled");
  }
  EXPECT_EQ(Trace::EventCount(), 0u);
}

TEST_F(TraceTest, EnabledSpanIsCaptured) {
  Trace::Enable();
  {
    FRAPPE_TRACE_SPAN("test.captured");
  }
  Trace::Disable();
  EXPECT_EQ(Trace::EventCount(), 1u);
  std::string json = Trace::ExportJson();
  EXPECT_NE(json.find("\"test.captured\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  Trace::Enable();
  {
    FRAPPE_TRACE_SPAN("test.cleared");
  }
  Trace::Clear();
  EXPECT_EQ(Trace::EventCount(), 0u);
  EXPECT_EQ(Trace::DroppedCount(), 0u);
}

TEST_F(TraceTest, SpansNestAndAllRecord) {
  Trace::Enable();
  {
    FRAPPE_TRACE_SPAN("test.outer");
    {
      FRAPPE_TRACE_SPAN("test.inner");
    }
  }
  Trace::Disable();
  EXPECT_EQ(Trace::EventCount(), 2u);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  Trace::Enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      FRAPPE_TRACE_SPAN("test.thread");
    });
  }
  for (std::thread& th : threads) th.join();
  Trace::Disable();
  EXPECT_EQ(Trace::EventCount(), static_cast<size_t>(kThreads));

  // Each thread's ring carries its own tid: count distinct "tid": values.
  std::string json = Trace::ExportJson();
  std::set<std::string> tids;
  size_t pos = 0;
  while ((pos = json.find("\"tid\": ", pos)) != std::string::npos) {
    pos += 7;
    size_t end = json.find_first_of(",}", pos);
    tids.insert(json.substr(pos, end - pos));
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads)) << json;
}

// Runs the paper's Figure 6 transitive-closure query (both execution
// paths) under tracing and exports the trace next to the test binary; the
// `trace_check` ctest entry validates that file with tools/trace_check.py.
TEST_F(TraceTest, Figure6QueryTraceExportsValidFile) {
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  const std::string fig6 =
      "START n=node:node_auto_index('short_name: sr_media_change') "
      "MATCH n -[:calls*]-> m RETURN distinct m";

  Trace::Enable();
  for (bool fast_path : {true, false}) {
    query::ExecOptions options;
    options.use_csr_fast_path = fast_path;
    auto result = session.Run(fig6, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.size(), 4u);
  }
  Trace::Disable();
  ASSERT_GT(Trace::EventCount(), 0u);

  // Session, executor and (fast path only) analytics layers must all have
  // contributed spans.
  std::string json = Trace::ExportJson();
  for (const char* name :
       {"session.run", "session.parse", "session.execute", "query.execute",
        "executor.start", "executor.match", "executor.return",
        "executor.csr_closure", "analytics.run"}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span " << name;
  }

  Status status = Trace::ExportJsonToFile("trace_export.json");
  ASSERT_TRUE(status.ok()) << status;
}

}  // namespace
}  // namespace frappe::obs
