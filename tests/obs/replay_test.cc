// The replay contract end to end: everything Session::Run logs through the
// structured query log can be re-executed verbatim from the `raw` field
// against an equivalent graph and produce the same row counts — the
// invariant examples/replay_qlog builds on.

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/fingerprint.h"
#include "obs/query_log.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override { QueryStats::Global().ResetForTesting(); }
  void TearDown() override {
    QueryLog::Global().Disable();
    QueryStats::Global().ResetForTesting();
  }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(ReplayTest, RecordedQueriesReplayWithMatchingRowCounts) {
  std::string path = TempPath("replay_roundtrip.jsonl");
  std::remove(path.c_str());
  QueryLog::Options options;
  options.path = path;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());

  // Record: a mix of shapes — label scan, index seek, closure, and one
  // parse failure (which must be logged but skipped by replay).
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  const std::vector<std::string> workload = {
      "MATCH (f:function) RETURN f",
      "START n=node:node_auto_index('short_name: cmd')"
      " MATCH s -[:contains]-> n RETURN s",
      "START n=node:node_auto_index('short_name: sr_media_change')"
      " MATCH n -[:calls*]-> m RETURN distinct m",
      "THIS IS NOT FQL",
  };
  std::vector<size_t> recorded_rows;
  for (const std::string& q : workload) {
    auto result = session.Run(q);
    recorded_rows.push_back(result.ok() ? result->rows.size() : 0);
  }
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  QueryLog::Global().Disable();

  auto records = ReadQueryLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), workload.size());

  // Replay against a *fresh* session over an equivalent graph — the
  // situation replay_qlog is in after reopening a snapshot.
  query::testing::PaperFixture replay_fixture;
  query::Session replay_session(replay_fixture.graph);
  size_t replayed = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    const QueryLogRecord& record = (*records)[i];
    EXPECT_EQ(record.raw, workload[i]);  // verbatim text survived the log
    EXPECT_EQ(record.fingerprint,
              NormalizeQuery(record.raw).fingerprint);
    if (record.status != "ok") continue;
    auto result = replay_session.Run(record.raw);
    ASSERT_TRUE(result.ok()) << record.raw << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->rows.size(), record.rows) << record.raw;
    EXPECT_EQ(result->rows.size(), recorded_rows[i]) << record.raw;
    ++replayed;
  }
  EXPECT_EQ(replayed, 3u);

  // The parse failure carried its status name, not "ok".
  EXPECT_NE((*records)[3].status, "ok");
  EXPECT_EQ((*records)[3].raw, "THIS IS NOT FQL");
}

TEST_F(ReplayTest, NormalizedAndRawServeDifferentMasters) {
  std::string path = TempPath("replay_fields.jsonl");
  std::remove(path.c_str());
  QueryLog::Options options;
  options.path = path;
  ASSERT_TRUE(QueryLog::Global().Enable(options).ok());

  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  // Two executions of the same shape with different literals: one
  // fingerprint, two distinct raw texts.
  ASSERT_TRUE(session
                  .Run("START n=node:node_auto_index('short_name: cmd')"
                       " RETURN n")
                  .ok());
  ASSERT_TRUE(session
                  .Run("START n=node:node_auto_index('short_name: id')"
                       " RETURN n")
                  .ok());
  ASSERT_TRUE(QueryLog::Global().Flush().ok());
  QueryLog::Global().Disable();

  auto records = ReadQueryLogFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].fingerprint, (*records)[1].fingerprint);
  EXPECT_EQ((*records)[0].query, (*records)[1].query);
  EXPECT_NE((*records)[0].raw, (*records)[1].raw);
  EXPECT_NE((*records)[0].query.find("'short_name: ?'"), std::string::npos);
}

}  // namespace
}  // namespace frappe::obs
