// Per-query resource accounting (obs/resource.h): the allocation seam's
// exactness under concurrency, peak/live byte tracking, CPU attribution
// across analytics lanes, memory-budget enforcement through the executor,
// and the plumbing into ExecStats and the per-fingerprint stats table.
//
// Runs under TSan via the `parallel` label (the tracker is charged from
// every pool lane concurrently) and under ASan via `storage` (the
// operator new/delete replacements must keep the sanitizer's allocator
// interceptors in the loop).

#include "obs/resource.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "extractor/synthetic.h"
#include "gtest/gtest.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

TEST(ResourceTrackerTest, CountsAllocationsAndFrees) {
  ResourceTracker tracker;
  {
    ResourceScope scope(&tracker);
    char* p = new char[4096];
    // The compiler cannot elide a new/delete pair separated by a store
    // through a volatile.
    *static_cast<volatile char*>(p) = 1;
    delete[] p;
  }
  EXPECT_GE(tracker.alloc_count(), 1u);
  EXPECT_GE(tracker.alloc_bytes(), 4096u);
  EXPECT_EQ(tracker.alloc_bytes(), tracker.freed_bytes());
  EXPECT_EQ(tracker.live_bytes(), 0);
  EXPECT_GE(tracker.peak_bytes(), 4096u);
}

TEST(ResourceTrackerTest, PeakHoldsTheHighWaterMark) {
  ResourceTracker tracker;
  {
    ResourceScope scope(&tracker);
    char* big = new char[1 << 20];
    *static_cast<volatile char*>(big) = 1;
    delete[] big;
    char* small = new char[64];
    *static_cast<volatile char*>(small) = 1;
    delete[] small;
  }
  EXPECT_GE(tracker.peak_bytes(), 1u << 20);
  EXPECT_EQ(tracker.live_bytes(), 0);
}

TEST(ResourceTrackerTest, KillSwitchDisablesInstallation) {
  ResourceTracker tracker;
  ResourceTracker::SetEnabled(false);
  {
    ResourceScope scope(&tracker);
    EXPECT_EQ(ResourceTracker::Current(), nullptr);
    char* p = new char[2048];
    *static_cast<volatile char*>(p) = 1;
    delete[] p;
  }
  ResourceTracker::SetEnabled(true);
  EXPECT_EQ(tracker.alloc_count(), 0u);
  EXPECT_EQ(tracker.alloc_bytes(), 0u);
}

// The chaos-exactness bar: 16 threads charging one tracker concurrently
// lose no updates. Each thread performs exactly kAllocs array-new/delete
// pairs inside its scope and nothing else, so the totals are exact, not
// lower bounds.
TEST(ResourceTrackerTest, ExactAccountingAcrossSixteenThreads) {
  constexpr int kThreads = 16;
  constexpr int kAllocs = 1000;
  constexpr size_t kSize = 1024;
  ResourceTracker tracker;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      ResourceScope scope(&tracker);
      for (int i = 0; i < kAllocs; ++i) {
        char* p = new char[kSize];
        *static_cast<volatile char*>(p) = 1;
        delete[] p;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracker.alloc_count(),
            static_cast<uint64_t>(kThreads) * kAllocs);
  EXPECT_GE(tracker.alloc_bytes(),
            static_cast<uint64_t>(kThreads) * kAllocs * kSize);
  EXPECT_EQ(tracker.alloc_bytes(), tracker.freed_bytes());
  EXPECT_EQ(tracker.live_bytes(), 0);
  EXPECT_GT(tracker.cpu_us(), 0u);  // each scope exit flushed thread CPU
}

TEST(ResourceTrackerTest, ScopesNestAndRestore) {
  ResourceTracker outer_tracker;
  ResourceTracker inner_tracker;
  {
    ResourceScope outer(&outer_tracker);
    EXPECT_EQ(ResourceTracker::Current(), &outer_tracker);
    {
      ResourceScope inner(&inner_tracker);
      EXPECT_EQ(ResourceTracker::Current(), &inner_tracker);
    }
    EXPECT_EQ(ResourceTracker::Current(), &outer_tracker);
  }
  EXPECT_EQ(ResourceTracker::Current(), nullptr);
}

TEST(ResourceTrackerTest, OverBudgetComparesLiveBytes) {
  ResourceTracker tracker;
  tracker.set_budget_bytes(1024);
  EXPECT_FALSE(tracker.OverBudget());
  {
    ResourceScope scope(&tracker);
    char* p = new char[8192];
    *static_cast<volatile char*>(p) = 1;
    EXPECT_TRUE(tracker.OverBudget());
    delete[] p;
  }
  EXPECT_FALSE(tracker.OverBudget());
}

// Query-level integration on the paper fixture: every /query response
// field the session fills from the tracker is populated, and the
// fingerprint stats table aggregates them.
TEST(ResourceQueryTest, RunQueryFillsResourceStats) {
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  QueryStats::Global().ResetForTesting();

  auto result = session.Run("MATCH (f:function) RETURN f");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.alloc_bytes, 0u);
  EXPECT_GT(result->stats.peak_bytes, 0u);
  EXPECT_GT(result->stats.scanned_bytes, 0u);

  auto top = QueryStats::Global().Top(10, QueryStats::Order::kTotalLatency);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].alloc_bytes_total, 0u);
  EXPECT_GT(top[0].peak_bytes_max, 0u);
  QueryStats::Global().ResetForTesting();
}

// A closure on a generated kernel burns enough CPU for the per-query
// cpu_us to be meaningful; with multiple analytics lanes the summed
// thread-CPU must be at least the exec wall time (two or more lanes busy
// at once). Gated on real hardware parallelism.
TEST(ResourceQueryTest, MultiLaneClosureCpuCoversExecWall) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 cores for cpu >= wall to hold";
  }
  model::CodeGraph graph;
  extractor::GraphScale scale;
  scale.factor = 0.05;
  extractor::GenerateKernelGraph(scale, &graph);
  query::Session session(graph);

  graph::TypeId calls = graph.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = graph.schema().key(model::PropKey::kShortName);
  std::string seed;
  const graph::GraphView& view = graph.view();
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound() && seed.empty();
       ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    seed = std::string(view.GetNodeString(view.GetEdge(e).src, short_name));
  }
  ASSERT_FALSE(seed.empty());

  query::ExecOptions options;
  options.threads = 4;
  auto result = session.Run(
      "START n=node:node_auto_index('short_name: " + seed +
          "') MATCH n -[:calls*]-> m RETURN distinct m",
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->stats.fast_path_taken);
  EXPECT_GT(result->stats.cpu_us, 0u);
  // Lane attribution: with >= 2 lanes concurrently busy, total thread-CPU
  // meets or exceeds the executor's wall time. A generous slack absorbs
  // the clock-gettime granularity at scope edges.
  EXPECT_GE(result->stats.cpu_us + 1000,
            result->stats.timeline.exec_us)
      << "cpu_us=" << result->stats.cpu_us
      << " exec_us=" << result->stats.timeline.exec_us;
}

// Budget enforcement end to end: a query that would run (effectively)
// forever on the path-enumeration slow path trips kResourceExhausted at
// the executor's check cadence once its live bytes exceed
// FRAPPE_QUERY_MEM_BYTES.
TEST(ResourceQueryTest, MemoryBudgetTripsResourceExhausted) {
  model::CodeGraph graph;
  extractor::GraphScale scale;
  scale.factor = 0.02;
  extractor::GenerateKernelGraph(scale, &graph);
  query::Session session(graph);

  graph::TypeId calls = graph.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = graph.schema().key(model::PropKey::kShortName);
  std::string seed;
  const graph::GraphView& view = graph.view();
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound() && seed.empty();
       ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    seed = std::string(view.GetNodeString(view.GetEdge(e).src, short_name));
  }
  ASSERT_FALSE(seed.empty());

  ::setenv("FRAPPE_QUERY_MEM_BYTES", "262144", 1);
  query::ExecOptions options;
  options.use_csr_fast_path = false;  // the unbounded enumeration path
  options.deadline_ms = 60000;        // a broken budget fails, not hangs
  auto result = session.Run(
      "START n=node:node_auto_index('short_name: " + seed +
          "') MATCH n -[:calls*]-> m RETURN distinct m",
      options);
  ::unsetenv("FRAPPE_QUERY_MEM_BYTES");

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("memory"), std::string::npos)
      << result.status().ToString();
}

// The budget also reaches the analytics kernels' flush cadence: the CSR
// fast path cancels with the same status.
TEST(ResourceQueryTest, MemoryBudgetReachesAnalyticsKernels) {
  model::CodeGraph graph;
  extractor::GraphScale scale;
  scale.factor = 0.05;
  extractor::GenerateKernelGraph(scale, &graph);
  query::Session session(graph);

  graph::TypeId calls = graph.schema().edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = graph.schema().key(model::PropKey::kShortName);
  std::string seed;
  const graph::GraphView& view = graph.view();
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound() && seed.empty();
       ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    seed = std::string(view.GetNodeString(view.GetEdge(e).src, short_name));
  }
  ASSERT_FALSE(seed.empty());

  // A budget of 1 byte: the first flush after any allocation trips it.
  // (The CSR build itself happens outside the scan loops; what matters
  // here is the status code surfacing through the executor unmangled.)
  ::setenv("FRAPPE_QUERY_MEM_BYTES", "1", 1);
  auto result = session.Run(
      "START n=node:node_auto_index('short_name: " + seed +
          "') MATCH n -[:calls*]-> m RETURN distinct m");
  ::unsetenv("FRAPPE_QUERY_MEM_BYTES");

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("memory"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace frappe::obs
