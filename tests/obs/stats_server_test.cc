#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "obs/fingerprint.h"
#include "obs/readiness.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

// Minimal HTTP/1.0 client: one request, read to EOF (the server closes).
// The method is caller-supplied so tests can exercise the server's
// method-not-allowed path with raw requests.
std::string HttpRequest(uint16_t port, const std::string& method,
                        const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return HttpRequest(port, "GET", path);
}

std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryStats::Global().ResetForTesting();
    SlowQueryRing::Global().ResetForTesting();
    // Port 0: the kernel picks a free ephemeral port — no collisions
    // across parallel ctest jobs.
    auto server = StatsServer::Start();
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<StatsServer> server_;
};

TEST_F(StatsServerTest, HealthzAnswersOk) {
  std::string response = HttpGet(server_->port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "ok\n");
}

TEST_F(StatsServerTest, UnknownPathIs404WithJsonBody) {
  std::string response = HttpGet(server_->port(), "/nope");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos) << response;
  // Regression: 404s used to go out without a Content-Type at all.
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos)
      << response;
  std::string body = Body(response);
  EXPECT_NE(body.find("\"error\": "), std::string::npos) << body;
  EXPECT_NE(body.find("\"status\": 404"), std::string::npos) << body;
}

TEST_F(StatsServerTest, NonGetOrPostMethodsAreRejectedCleanly) {
  for (const char* method : {"DELETE", "PUT", "HEAD"}) {
    std::string response = HttpRequest(server_->port(), method, "/metrics");
    EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos)
        << method << ": " << response;
    EXPECT_NE(response.find("Content-Type: application/json"),
              std::string::npos)
        << method << ": " << response;
    EXPECT_NE(Body(response).find("\"status\": 405"), std::string::npos)
        << method;
  }
}

TEST_F(StatsServerTest, GarbageRequestLineIs400) {
  // No space in the request line at all: the parser can't split off a
  // method, and must still answer with a well-formed JSON error.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char raw[] = "GARBAGE\r\n\r\n";
  ::send(fd, raw, sizeof(raw) - 1, 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos)
      << response;
}

TEST_F(StatsServerTest, MetricsServesPrometheusExposition) {
  // Run real queries so the session counters and latency histogram carry
  // data, not just declarations.
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  ASSERT_TRUE(session.Run("MATCH (f:function) RETURN f").ok());
  ASSERT_TRUE(
      session.Run("START n=node:node_auto_index('short_name: cmd')"
                  " MATCH s -[:contains]-> n RETURN s")
          .ok());

  std::string body = Body(HttpGet(server_->port(), "/metrics"));
  EXPECT_NE(body.find("# TYPE frappe_session_queries_total counter"),
            std::string::npos)
      << body;
  // Any positive value: the Registry is process-lifetime (resetting it
  // would orphan the static counter references in RunQuery), so the exact
  // count depends on what ran before this test.
  EXPECT_NE(body.find("frappe_session_queries_total "), std::string::npos)
      << body;
  // The latency histogram carries exemplars (every query records one with
  // its trace id), so it exports as a bucketed OpenMetrics-style histogram
  // rather than a quantile summary.
  EXPECT_NE(body.find("# TYPE frappe_query_latency_us histogram"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("frappe_query_latency_us_bucket{le=\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("frappe_query_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find(" # {trace_id=\""), std::string::npos) << body;
  EXPECT_NE(body.find("frappe_query_latency_us_count "), std::string::npos)
      << body;
  EXPECT_NE(body.find("frappe_query_latency_us_sum "), std::string::npos)
      << body;
  EXPECT_NE(body.find("frappe_build_info{sha=\""), std::string::npos) << body;
  EXPECT_NE(body.find("frappe_query_fingerprints 2"), std::string::npos)
      << body;

  // Content type is the Prometheus text exposition version.
  std::string response = HttpGet(server_->port(), "/metrics");
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);

  // Export the fixture tools/qlog_check.py --metrics validates from ctest.
  std::FILE* f = std::fopen("metrics_export.txt", "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

TEST_F(StatsServerTest, StatsServesFingerprintTableJson) {
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  ASSERT_TRUE(session.Run("MATCH (f:function) RETURN f").ok());
  ASSERT_TRUE(session.Run("MATCH (s:struct) RETURN s").ok());

  std::string response = HttpGet(server_->port(), "/stats");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"fingerprints\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"build_sha\": \""), std::string::npos) << body;
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos) << body;
  EXPECT_NE(body.find("match(f:function)return f"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"slow_queries\": ["), std::string::npos) << body;
  EXPECT_NE(body.find("\"query_log\":"), std::string::npos) << body;
}

TEST_F(StatsServerTest, ServesSequentialRequests) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Body(HttpGet(server_->port(), "/healthz")), "ok\n");
  }
}

TEST_F(StatsServerTest, StopIsIdempotentAndPromptlyFreesThePort) {
  uint16_t port = server_->port();
  server_->Stop();
  server_->Stop();
  // The listener is closed: a fresh server can bind the same port.
  StatsServer::Options options;
  options.port = port;
  auto again = StatsServer::Start(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->port(), port);
}

TEST_F(StatsServerTest, ReadyzReflectsReadinessState) {
  Readiness::Global().ResetForTesting();
  std::string response = HttpGet(server_->port(), "/readyz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(Body(response).find("\"state\": \"ready\""), std::string::npos)
      << response;

  // Degraded still serves (200) but carries the reason for operators.
  Readiness::Global().SetDegraded("snapshot loaded from fallback");
  response = HttpGet(server_->port(), "/readyz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(Body(response).find("\"state\": \"degraded\""), std::string::npos)
      << response;
  EXPECT_NE(Body(response).find("snapshot loaded from fallback"),
            std::string::npos)
      << response;

  // Overloaded and draining flip readiness to 503; draining wins when both
  // are set (a draining process must leave the load balancer even if the
  // overload clears).
  Readiness::Global().SetOverloaded(true);
  response = HttpGet(server_->port(), "/readyz");
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(Body(response).find("\"state\": \"overloaded\""),
            std::string::npos)
      << response;
  Readiness::Global().SetDraining(true);
  response = HttpGet(server_->port(), "/readyz");
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(Body(response).find("\"state\": \"draining\""), std::string::npos)
      << response;

  // /healthz stays 200 throughout: liveness is "the process can answer",
  // readiness is "send it traffic" — a draining server is alive.
  EXPECT_EQ(Body(HttpGet(server_->port(), "/healthz")), "ok\n");
  Readiness::Global().ResetForTesting();
}

TEST(StatsServerTimeoutTest, StallingClientCannotWedgeTheServer) {
  // A client that connects and then trickles (or stops sending entirely)
  // must be cut off by the read deadline, and the accept thread must keep
  // serving everyone else afterwards.
  StatsServer::Options options;
  options.socket_timeout_ms = 200;
  auto server = StatsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Half a request line, then silence.
  const char partial[] = "GET /metr";
  ::send(fd, partial, sizeof(partial) - 1, 0);

  auto start = std::chrono::steady_clock::now();
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  double waited_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  // The server timed the stall out (408 for the partial request) well
  // before the default 5s budget — and within a few timeout periods.
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_LT(waited_ms, 3000.0);

  // The listener is not wedged: a normal client is served immediately.
  std::string healthz = HttpGet(port, "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos) << healthz;
}

TEST(StatsServerEnvTest, MaybeStartFromEnvIsOffByDefault) {
  ::unsetenv("FRAPPE_STATS_PORT");
  EXPECT_EQ(StatsServer::MaybeStartFromEnv(), nullptr);
}

TEST(StatsServerEnvTest, MaybeStartFromEnvHonorsPort) {
  ::setenv("FRAPPE_STATS_PORT", "0", 1);
  auto server = StatsServer::MaybeStartFromEnv();
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);
  ::unsetenv("FRAPPE_STATS_PORT");
}

TEST(StatsServerEnvTest, MaybeStartFromEnvToleratesGarbage) {
  ::setenv("FRAPPE_STATS_PORT", "not-a-port", 1);
  EXPECT_EQ(StatsServer::MaybeStartFromEnv(), nullptr);  // stderr warning
  ::unsetenv("FRAPPE_STATS_PORT");
}

}  // namespace
}  // namespace frappe::obs
