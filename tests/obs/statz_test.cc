// /debug/statz end to end: a session runs ANALYZE and a seeded
// misestimate, the shell-style catalog provider is registered, and the
// endpoint serves the catalog + worst-fingerprint + misestimate-ring JSON
// over real HTTP. Exports statz_export.json and statz_metrics.txt, the
// fixtures tools/statz_check.py validates from ctest.

#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "obs/fingerprint.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe::obs {
namespace {

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

void ExportFixtureFile(const std::string& name, const std::string& body) {
  std::FILE* f = std::fopen(name.c_str(), "w");
  ASSERT_NE(f, nullptr) << name;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

class StatzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = StatsServer::Start();
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }
  void TearDown() override {
    server_.reset();
    StatsServer::SetCatalogStatsProvider(nullptr);
    ::unsetenv("FRAPPE_MISESTIMATE_QERROR");
  }

  uint16_t port() const { return server_->port(); }

  std::unique_ptr<StatsServer> server_;
};

TEST_F(StatzTest, ServesWithoutAProviderOrThreshold) {
  StatsServer::SetCatalogStatsProvider(nullptr);
  ::unsetenv("FRAPPE_MISESTIMATE_QERROR");
  std::string response = HttpGet(port(), "/debug/statz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"catalog\": null"), std::string::npos) << body;
  EXPECT_NE(body.find("\"misestimate_threshold\": null"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"worst_fingerprints\": ["), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"misestimates\": ["), std::string::npos) << body;
}

TEST_F(StatzTest, ServesCatalogAndMisestimatesEndToEnd) {
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);

  // The shell's wiring: /debug/statz reads whatever catalog the shared
  // cache holds.
  std::shared_ptr<graph::StatsCatalogCache> stats =
      session.database().stats;
  ASSERT_NE(stats, nullptr);
  StatsServer::SetCatalogStatsProvider([stats]() -> std::string {
    auto catalog = stats->Get();
    return catalog != nullptr ? catalog->ToJson() : std::string();
  });

  ASSERT_TRUE(session.Run("ANALYZE").ok());
  // Threshold 1 flags every estimated query (q >= 1 by definition): a
  // deterministic way to populate the ring and the worst-q column.
  MisestimateRing::Global().ResetForTesting();
  ::setenv("FRAPPE_MISESTIMATE_QERROR", "1", 1);
  ASSERT_TRUE(session.Run("MATCH (n:function) RETURN n").ok());

  std::string response = HttpGet(port(), "/debug/statz");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  std::string body = Body(response);
  EXPECT_NE(body.find("\"catalog\": {"), std::string::npos) << body;
  EXPECT_NE(body.find("\"node_count\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"edge_types\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"hubs\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"misestimate_threshold\": 1"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"worst_qerror\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"est_rows\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"qerror\""), std::string::npos) << body;
  ExportFixtureFile("statz_export.json", body);

  // The catalog gauges and q-error telemetry surface on /metrics.
  std::string metrics = Body(HttpGet(port(), "/metrics"));
  EXPECT_NE(metrics.find("# TYPE frappe_catalog_nodes gauge"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE frappe_catalog_edges gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE frappe_catalog_bytes gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE frappe_catalog_builds_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE frappe_plan_qerror_x100 summary"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE frappe_plan_misestimates_total counter"),
            std::string::npos);
  ExportFixtureFile("statz_metrics.txt", metrics);

  // /stats carries the misestimate ring alongside the slow-query ring.
  std::string stats_body = Body(HttpGet(port(), "/stats"));
  EXPECT_NE(stats_body.find("\"misestimates\": ["), std::string::npos)
      << stats_body;

  // The catalog bytes also appear in the storage view when the embedder
  // registers them (shell behaviour) — covered by the shell itself; here
  // we only pin the statz schema.
  MisestimateRing::Global().ResetForTesting();
}

}  // namespace
}  // namespace frappe::obs
