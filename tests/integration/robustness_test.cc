// Robustness sweeps: the FQL parser, the C front end, and the query
// executor must never crash on malformed input — they return ParseError /
// status codes instead. Inputs are deterministic random mutations of valid
// programs/queries plus token soup.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "extractor/c_parser.h"
#include "extractor/preprocessor.h"
#include "query/parser.h"
#include "query/session.h"
#include "tests/query/fixture.h"

namespace frappe {
namespace {

const char* const kFqlSeeds[] = {
    "START n=node:node_auto_index('short_name: id') RETURN n",
    "MATCH (n:function {short_name: 'x'}) -[r:calls*1..3]-> m "
    "WHERE r.use_start_line >= 10 AND NOT m.virtual = true "
    "RETURN distinct m, count(*) ORDER BY m.short_name DESC SKIP 1 LIMIT 5",
    "START a=node(1), b=node(*) MATCH shortestPath(a -[:calls*]-> b) "
    "RETURN length(a)",
    "MATCH x <-[{NAME_FILE_ID: 3, NAME_START_LINE: 1}]- () RETURN id(x)",
};

const char* kCSeed =
    "#include \"h.h\"\n"
    "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n"
    "struct s { int x : 3; struct s *next; };\n"
    "typedef unsigned long ulong_t;\n"
    "enum e { A, B = 2 };\n"
    "static int g[4] = {1, 2, 3, 4};\n"
    "int f(struct s *p, ulong_t n) {\n"
    "  int acc = (int)n;\n"
    "  for (int i = 0; i < MAX(3, 4); i++) acc += p->x;\n"
    "  switch (acc) { case 1: break; default: acc = -1; }\n"
    "  return acc + sizeof(struct s);\n"
    "}\n";

std::string Mutate(std::string input, Rng* rng, int edits) {
  for (int i = 0; i < edits && !input.empty(); ++i) {
    size_t pos = rng->Uniform(input.size());
    switch (rng->Uniform(4)) {
      case 0:
        input.erase(pos, 1 + rng->Uniform(3));
        break;
      case 1:
        input.insert(pos, 1, static_cast<char>(32 + rng->Uniform(95)));
        break;
      case 2:
        input[pos] = static_cast<char>(32 + rng->Uniform(95));
        break;
      case 3: {
        // Duplicate a random slice (creates unbalanced constructs).
        size_t len = std::min<size_t>(1 + rng->Uniform(8),
                                      input.size() - pos);
        input.insert(pos, input.substr(pos, len));
        break;
      }
    }
  }
  return input;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, FqlParserNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::string seed = kFqlSeeds[rng.Uniform(std::size(kFqlSeeds))];
    std::string mutated = Mutate(seed, &rng, 1 + rng.Uniform(6));
    auto result = query::Parse(mutated);  // must not crash or hang
    (void)result;
  }
}

TEST_P(FuzzTest, FqlTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* vocab[] = {"START", "MATCH", "WHERE",  "RETURN", "WITH",
                         "(",     ")",     "[",      "]",      "{",
                         "}",     "-",     "->",     "<-",     ":",
                         "*",     "..",    "n",      "calls",  "'x'",
                         "3",     "=",     ",",      ".",      "|",
                         "count", "distinct", "node", "AND",   "NOT"};
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    int len = 1 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < len; ++i) {
      soup += vocab[rng.Uniform(std::size(vocab))];
      soup += " ";
    }
    auto result = query::Parse(soup);
    (void)result;
  }
}

TEST_P(FuzzTest, CFrontEndNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    extractor::Vfs vfs;
    vfs.AddFile("h.h", "int decl(void);\n");
    vfs.AddFile("t.c", Mutate(kCSeed, &rng, 1 + rng.Uniform(8)));
    auto pp = extractor::Preprocess(vfs, "t.c");
    if (!pp.ok()) continue;  // error status is the acceptable outcome
    auto unit = extractor::ParseUnit(*pp);
    (void)unit;
  }
}

TEST_P(FuzzTest, ExecutorHonorsBudgetsOnMutatedQueries) {
  Rng rng(GetParam());
  query::testing::PaperFixture fixture;
  query::Session session(fixture.graph);
  query::ExecOptions options;
  options.max_steps = 10000;  // hard cap: no mutation may hang the engine
  for (int round = 0; round < 100; ++round) {
    std::string seed = kFqlSeeds[rng.Uniform(std::size(kFqlSeeds))];
    std::string mutated = Mutate(seed, &rng, rng.Uniform(4));
    auto result = session.Run(mutated, options);
    (void)result;  // ok, parse error, or budget error — never a crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace frappe
