// Whole-system integration: generate a source tree, extract it through
// the full pipeline, persist it, reload it as a fresh deployment would,
// and run every query path (FQL + direct analyses + code map) against the
// reloaded database. This is the "downstream user" workflow end to end.

#include <gtest/gtest.h>

#include <set>

#include "analysis/search.h"
#include "analysis/slicing.h"
#include "extractor/build_model.h"
#include "extractor/synthetic.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "query/parser.h"
#include "query/session.h"
#include "vis/code_map.h"

namespace frappe {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Extract once for the whole suite (it is the expensive step).
    vfs_ = new extractor::Vfs();
    extractor::SourceScale scale;
    scale.subsystems = 3;
    scale.files_per_subsystem = 4;
    scale.functions_per_file = 6;
    kernel_ = new extractor::SourceKernel(
        extractor::GenerateKernelSource(scale, vfs_));
    graph_ = new model::CodeGraph();
    driver_ = new extractor::BuildDriver(vfs_, graph_);
    for (const std::string& command : kernel_->build_commands) {
      ASSERT_TRUE(driver_->Run(command).ok()) << command;
    }
  }
  static void TearDownTestSuite() {
    delete driver_;
    delete graph_;
    delete kernel_;
    delete vfs_;
    driver_ = nullptr;
    graph_ = nullptr;
    kernel_ = nullptr;
    vfs_ = nullptr;
  }

  static extractor::Vfs* vfs_;
  static extractor::SourceKernel* kernel_;
  static model::CodeGraph* graph_;
  static extractor::BuildDriver* driver_;
};

extractor::Vfs* EndToEndTest::vfs_ = nullptr;
extractor::SourceKernel* EndToEndTest::kernel_ = nullptr;
model::CodeGraph* EndToEndTest::graph_ = nullptr;
extractor::BuildDriver* EndToEndTest::driver_ = nullptr;

TEST_F(EndToEndTest, ExtractionProducedAllLayers) {
  auto nodes = graph::NodeTypeHistogram(graph_->view());
  EXPECT_GT(nodes["function"], 0u);
  EXPECT_GT(nodes["function_decl"], 0u);
  EXPECT_GT(nodes["struct"], 0u);
  EXPECT_GT(nodes["field"], 0u);
  EXPECT_GT(nodes["enumerator"], 0u);
  EXPECT_GT(nodes["macro"], 0u);
  EXPECT_GT(nodes["module"], 0u);
  EXPECT_GT(nodes["global"], 0u);
  EXPECT_GT(nodes["static_local"], 0u);
  auto edges = graph::EdgeTypeHistogram(graph_->view());
  for (const char* kind :
       {"calls", "reads", "writes", "writes_member", "reads_member",
        "isa_type", "includes", "file_contains", "dir_contains", "contains",
        "compiled_from", "linked_from", "link_matches", "link_declares",
        "expands_macro", "has_param", "has_local", "has_ret_type",
        "declares", "uses_enumerator", "dereferences"}) {
    EXPECT_GT(edges[kind], 0u) << kind;
  }
}

TEST_F(EndToEndTest, SnapshotReloadAndQueryAsFreshDeployment) {
  // Persist with the auto index embedded.
  graph::NameIndex index = graph_->BuildNameIndex();
  std::string path = ::testing::TempDir() + "/e2e_frappe.db";
  auto saved = graph::SaveSnapshot(graph_->view(), path, &index);
  ASSERT_TRUE(saved.ok()) << saved.status();

  // Reload into a completely fresh store.
  auto loaded = graph::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->index.has_value());
  graph::GraphStore& store = *loaded->store;
  EXPECT_EQ(store.NodeCount(), graph_->store().NodeCount());
  EXPECT_EQ(store.EdgeCount(), graph_->store().EdgeCount());

  // Wire a query database over the reloaded pieces and run the paper's
  // module-scoped search (Figure 3 shape).
  model::Schema schema = model::Schema::Install(&store);
  graph::LabelIndex labels = graph::LabelIndex::Build(store);
  query::Database db = query::MakeFrappeDatabase(store, schema,
                                                 &*loaded->index, &labels);
  auto parsed = query::Parse(
      "START m=node:node_auto_index('short_name: sub0.elf') "
      "MATCH m -[:compiled_from|linked_from*]-> f WITH distinct f "
      "MATCH f -[:file_contains]-> (n:function) RETURN count(distinct n)");
  ASSERT_TRUE(parsed.ok());
  auto result = query::Execute(db, *parsed);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].value.AsInt(), 24);  // 4 files x 6 functions
  std::remove(path.c_str());
}

TEST_F(EndToEndTest, FqlAgreesWithAnalysisOnRealExtraction) {
  query::Session session(*graph_);
  // Pick a function with callers.
  graph::NodeId target = graph::kInvalidNode;
  graph_->view().ForEachNode([&](graph::NodeId id) {
    if (target == graph::kInvalidNode &&
        graph_->KindOf(id) == model::NodeKind::kFunction &&
        graph_->view().InDegree(id) > 2) {
      target = id;
    }
  });
  ASSERT_NE(target, graph::kInvalidNode);
  auto fql = session.Run(
      "START n=node(" + std::to_string(target) + ") "
      "MATCH n <-[:calls*]- m RETURN distinct m");
  ASSERT_TRUE(fql.ok()) << fql.status();
  auto direct = analysis::ForwardSlice(graph_->view(), graph_->schema(),
                                       target);
  std::set<graph::NodeId> fql_nodes;
  for (const auto& row : fql->rows) fql_nodes.insert(row[0].node);
  EXPECT_EQ(fql_nodes,
            std::set<graph::NodeId>(direct.begin(), direct.end()));
}

TEST_F(EndToEndTest, CodeMapCoversExtractedTree) {
  vis::CodeMap map = vis::CodeMap::Build(graph_->view(), graph_->schema(),
                                         640, 480);
  // Every file of the tree has a region.
  size_t files_on_map = 0;
  graph_->view().ForEachNode([&](graph::NodeId id) {
    if (graph_->KindOf(id) == model::NodeKind::kFile &&
        map.Find(id) != nullptr) {
      ++files_on_map;
    }
  });
  EXPECT_EQ(files_on_map, vfs_->FileCount());
  std::string svg = map.ToSvg();
  EXPECT_GT(svg.size(), 1000u);
}

TEST_F(EndToEndTest, ModuleScopedSearchMatchesLinkGraph) {
  query::Session session(*graph_);
  auto module = driver_->ModuleFor("drivers/sub1/sub1.elf");
  ASSERT_TRUE(module.ok());
  analysis::SearchQuery query;
  query.name = "*counter*";
  query.module = *module;
  auto results = analysis::CodeSearch(graph_->view(), graph_->schema(),
                                      session.name_index(), query);
  // Each subsystem defines its own counters; only sub1's are in scope.
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_NE(r.short_name.find("sub1"), std::string::npos)
        << r.short_name;
  }
}

}  // namespace
}  // namespace frappe
