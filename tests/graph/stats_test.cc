#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_key_ = store_.InternKey("short_name");
    TypeId fn = store_.InternNodeType("function");
    TypeId prim = store_.InternNodeType("primitive");
    TypeId et = store_.InternEdgeType("calls");
    TypeId isa = store_.InternEdgeType("isa_type");

    // A hub node referenced by everything (like `int` in the paper).
    hub_ = store_.AddNode(prim);
    store_.SetNodeProperty(hub_, name_key_, store_.StringValue("int"));
    for (int i = 0; i < 10; ++i) {
      NodeId f = store_.AddNode(fn);
      store_.SetNodeProperty(f, name_key_,
                             store_.StringValue("f" + std::to_string(i)));
      store_.AddEdge(f, hub_, isa);
      if (i > 0) store_.AddEdge(f, first_, et);
      else first_ = f;
    }
  }

  GraphStore store_;
  KeyId name_key_;
  NodeId hub_ = kInvalidNode;
  NodeId first_ = kInvalidNode;
};

TEST_F(StatsTest, MetricsCountsAndRatio) {
  GraphMetrics m = ComputeMetrics(store_);
  EXPECT_EQ(m.node_count, 11u);
  EXPECT_EQ(m.edge_count, 19u);  // 10 isa + 9 calls
  EXPECT_NEAR(m.edge_node_ratio, 19.0 / 11.0, 1e-9);
  EXPECT_NEAR(m.density, 19.0 / (11.0 * 10.0), 1e-9);
}

TEST_F(StatsTest, MetricsOnEmptyGraph) {
  GraphStore empty;
  GraphMetrics m = ComputeMetrics(empty);
  EXPECT_EQ(m.node_count, 0u);
  EXPECT_EQ(m.edge_count, 0u);
  EXPECT_EQ(m.density, 0.0);
}

TEST_F(StatsTest, DegreeDistributionSumsToNodeCount) {
  auto hist = DegreeDistribution(store_);
  uint64_t total = 0;
  for (const auto& [degree, count] : hist) total += count;
  EXPECT_EQ(total, store_.NodeCount());
  // The hub (10 in) and the first function (1 out + 9 in) have degree 10;
  // the other nine functions have degree 2.
  EXPECT_EQ(hist.at(10), 2u);
  EXPECT_EQ(hist.at(2), 9u);
}

TEST_F(StatsTest, TopDegreeNodesFindsHub) {
  auto hubs = TopDegreeNodes(store_, 3, name_key_);
  ASSERT_EQ(hubs.size(), 3u);
  EXPECT_EQ(hubs[0].id, hub_);
  EXPECT_EQ(hubs[0].degree, 10u);
  EXPECT_EQ(hubs[0].short_name, "int");
  EXPECT_EQ(hubs[0].type_name, "primitive");
  EXPECT_GE(hubs[0].degree, hubs[1].degree);
  EXPECT_GE(hubs[1].degree, hubs[2].degree);
}

TEST_F(StatsTest, TopDegreeNodesClampsK) {
  auto hubs = TopDegreeNodes(store_, 1000, name_key_);
  EXPECT_EQ(hubs.size(), store_.NodeCount());
}

TEST_F(StatsTest, LogBinnedDegreesCoverAllNodes) {
  auto bins = LogBinnedDegrees(store_);
  uint64_t total = 0;
  for (const DegreeBin& bin : bins) {
    EXPECT_LE(bin.min_degree, bin.max_degree);
    total += bin.node_count;
  }
  EXPECT_EQ(total, store_.NodeCount());
}

TEST_F(StatsTest, LogBinsArePowersOfTwo) {
  auto bins = LogBinnedDegrees(store_);
  for (const DegreeBin& bin : bins) {
    if (bin.min_degree == 0) continue;
    // min is a power of two and max = 2*min - 1.
    EXPECT_EQ(bin.min_degree & (bin.min_degree - 1), 0u);
    EXPECT_EQ(bin.max_degree, bin.min_degree * 2 - 1);
  }
}

TEST_F(StatsTest, TypeHistograms) {
  auto nodes = NodeTypeHistogram(store_);
  EXPECT_EQ(nodes.at("function"), 10u);
  EXPECT_EQ(nodes.at("primitive"), 1u);
  auto edges = EdgeTypeHistogram(store_);
  EXPECT_EQ(edges.at("isa_type"), 10u);
  EXPECT_EQ(edges.at("calls"), 9u);
}

TEST_F(StatsTest, TopDegreeNodesBreaksTiesDeterministically) {
  // Nine functions tie at degree 2; a k that cuts through the tie must
  // return exactly k hubs, ordered by degree then ascending id, so two
  // runs (or two replicas) render the same hub list.
  auto hubs = TopDegreeNodes(store_, 5, name_key_);
  ASSERT_EQ(hubs.size(), 5u);
  for (size_t i = 1; i < hubs.size(); ++i) {
    EXPECT_TRUE(hubs[i - 1].degree > hubs[i].degree ||
                (hubs[i - 1].degree == hubs[i].degree &&
                 hubs[i - 1].id < hubs[i].id))
        << "i=" << i;
  }
  auto again = TopDegreeNodes(store_, 5, name_key_);
  for (size_t i = 0; i < hubs.size(); ++i) {
    EXPECT_EQ(hubs[i].id, again[i].id) << "i=" << i;
  }
}

TEST_F(StatsTest, EmptyGraphHelpers) {
  GraphStore empty;
  EXPECT_TRUE(DegreeDistribution(empty).empty());
  EXPECT_TRUE(LogBinnedDegrees(empty).empty());
  EXPECT_TRUE(TopDegreeNodes(empty, 10, kInvalidKey).empty());
  EXPECT_TRUE(NodeTypeHistogram(empty).empty());
  EXPECT_TRUE(EdgeTypeHistogram(empty).empty());
}

TEST_F(StatsTest, SingleNodeGraph) {
  GraphStore single;
  TypeId t = single.InternNodeType("function");
  single.AddNode(t);
  GraphMetrics m = ComputeMetrics(single);
  EXPECT_EQ(m.node_count, 1u);
  EXPECT_EQ(m.edge_count, 0u);
  EXPECT_EQ(m.density, 0.0);  // density over 0 possible edges is defined 0
  auto bins = LogBinnedDegrees(single);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].min_degree, 0u);
  EXPECT_EQ(bins[0].max_degree, 0u);
  EXPECT_EQ(bins[0].node_count, 1u);
  auto hubs = TopDegreeNodes(single, 3, kInvalidKey);
  ASSERT_EQ(hubs.size(), 1u);
  EXPECT_EQ(hubs[0].degree, 0u);
}

TEST_F(StatsTest, LogBinHistogramBinsByPowersOfTwo) {
  std::map<uint64_t, uint64_t> hist = {{0, 3}, {1, 2}, {2, 1},
                                       {3, 1}, {4, 5}, {7, 2}};
  auto bins = LogBinHistogram(hist);
  // Expected bins: [0,0]=3, [1,1]=2, [2,3]=2, [4,7]=7.
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].node_count, 3u);
  EXPECT_EQ(bins[1].node_count, 2u);
  EXPECT_EQ(bins[2].min_degree, 2u);
  EXPECT_EQ(bins[2].max_degree, 3u);
  EXPECT_EQ(bins[2].node_count, 2u);
  EXPECT_EQ(bins[3].min_degree, 4u);
  EXPECT_EQ(bins[3].max_degree, 7u);
  EXPECT_EQ(bins[3].node_count, 7u);
  EXPECT_TRUE(LogBinHistogram({}).empty());
}

TEST_F(StatsTest, DeadNodesExcluded) {
  store_.RemoveNode(hub_);
  GraphMetrics m = ComputeMetrics(store_);
  EXPECT_EQ(m.node_count, 10u);
  EXPECT_EQ(m.edge_count, 9u);  // isa edges cascaded away
  auto hist = DegreeDistribution(store_);
  uint64_t total = 0;
  for (const auto& [d, c] : hist) total += c;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace frappe::graph
