// StatsCatalog: the ANALYZE output — build correctness on a known graph,
// byte-exact round-trip through its serializer, the advisory-section
// contract in snapshots (a corrupt stats section degrades to "no catalog",
// never a failed load), and the staleness/refresh cache semantics.

#include "graph/stats_catalog.h"

#include <gtest/gtest.h>

#include <string>

#include "graph/graph_store.h"
#include "graph/snapshot.h"

namespace frappe::graph {
namespace {

class StatsCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_key_ = store_.InternKey("short_name");
    fn_ = store_.InternNodeType("function");
    prim_ = store_.InternNodeType("primitive");
    calls_ = store_.InternEdgeType("calls");
    isa_ = store_.InternEdgeType("isa_type");

    // One hub (`int`) every function points at, plus a call chain.
    hub_ = store_.AddNode(prim_);
    store_.SetNodeProperty(hub_, name_key_, store_.StringValue("int"));
    NodeId prev = kInvalidNode;
    for (int i = 0; i < 8; ++i) {
      NodeId f = store_.AddNode(fn_);
      store_.SetNodeProperty(f, name_key_,
                             store_.StringValue("f" + std::to_string(i)));
      store_.AddEdge(f, hub_, isa_);
      if (prev != kInvalidNode) store_.AddEdge(prev, f, calls_);
      prev = f;
    }
    index_ = NameIndex::Build(
        store_, {{"short_name", name_key_, /*is_type_field=*/false}});
  }

  GraphStore store_;
  KeyId name_key_ = kInvalidKey;
  TypeId fn_ = kInvalidType;
  TypeId prim_ = kInvalidType;
  TypeId calls_ = kInvalidType;
  TypeId isa_ = kInvalidType;
  NodeId hub_ = kInvalidNode;
  NameIndex index_;
};

TEST_F(StatsCatalogTest, BuildCountsTypesAndFanouts) {
  StatsCatalog catalog = BuildStatsCatalog(store_, &index_);
  EXPECT_EQ(catalog.node_count, 9u);
  EXPECT_EQ(catalog.edge_count, 15u);  // 8 isa + 7 calls

  ASSERT_EQ(catalog.node_types.size(), 2u);
  EXPECT_EQ(catalog.node_types[prim_].name, "primitive");
  EXPECT_EQ(catalog.node_types[prim_].count, 1u);
  EXPECT_EQ(catalog.node_types[fn_].name, "function");
  EXPECT_EQ(catalog.node_types[fn_].count, 8u);

  ASSERT_EQ(catalog.edge_types.size(), 2u);
  const StatsCatalog::EdgeTypeStats& isa = catalog.edge_types[isa_];
  EXPECT_EQ(isa.name, "isa_type");
  EXPECT_EQ(isa.count, 8u);
  EXPECT_EQ(isa.distinct_sources, 8u);  // every function
  EXPECT_EQ(isa.distinct_targets, 1u);  // all into the hub
  EXPECT_DOUBLE_EQ(isa.AvgOutFanout(), 1.0);
  EXPECT_DOUBLE_EQ(isa.AvgInFanout(), 8.0);
  EXPECT_FALSE(isa.out_degrees.empty());
  EXPECT_FALSE(isa.in_degrees.empty());

  const StatsCatalog::EdgeTypeStats& calls = catalog.edge_types[calls_];
  EXPECT_EQ(calls.count, 7u);
  EXPECT_EQ(calls.distinct_sources, 7u);
  EXPECT_EQ(calls.distinct_targets, 7u);

  // The hub tops the hub list with total degree 8.
  ASSERT_FALSE(catalog.hubs.empty());
  EXPECT_EQ(catalog.hubs[0].id, hub_);
  EXPECT_EQ(catalog.hubs[0].degree, 8u);
  EXPECT_EQ(catalog.hubs[0].short_name, "int");

  // short_name indexes 9 distinct names, one posting each.
  ASSERT_EQ(catalog.index_fields.size(), 1u);
  EXPECT_EQ(catalog.index_fields[0].field, "short_name");
  EXPECT_EQ(catalog.index_fields[0].distinct_terms, 9u);
  EXPECT_EQ(catalog.index_fields[0].postings, 9u);
}

TEST_F(StatsCatalogTest, DegreeBinsCoverParticipantsOnly) {
  StatsCatalog catalog = BuildStatsCatalog(store_);
  const StatsCatalog::EdgeTypeStats& isa = catalog.edge_types[isa_];
  uint64_t out_total = 0;
  for (const DegreeBin& bin : isa.out_degrees) out_total += bin.node_count;
  EXPECT_EQ(out_total, isa.distinct_sources);
  uint64_t in_total = 0;
  for (const DegreeBin& bin : isa.in_degrees) in_total += bin.node_count;
  EXPECT_EQ(in_total, isa.distinct_targets);
}

TEST_F(StatsCatalogTest, SerializeRoundTrips) {
  StatsCatalog catalog = BuildStatsCatalog(store_, &index_);
  std::string bytes;
  catalog.Serialize(&bytes);
  EXPECT_EQ(bytes.size(), catalog.ByteSize());

  auto back = StatsCatalog::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->node_count, catalog.node_count);
  EXPECT_EQ(back->edge_count, catalog.edge_count);
  ASSERT_EQ(back->node_types.size(), catalog.node_types.size());
  for (size_t i = 0; i < catalog.node_types.size(); ++i) {
    EXPECT_EQ(back->node_types[i].name, catalog.node_types[i].name);
    EXPECT_EQ(back->node_types[i].count, catalog.node_types[i].count);
  }
  ASSERT_EQ(back->edge_types.size(), catalog.edge_types.size());
  for (size_t i = 0; i < catalog.edge_types.size(); ++i) {
    EXPECT_EQ(back->edge_types[i].count, catalog.edge_types[i].count);
    EXPECT_EQ(back->edge_types[i].distinct_sources,
              catalog.edge_types[i].distinct_sources);
    EXPECT_EQ(back->edge_types[i].out_degrees.size(),
              catalog.edge_types[i].out_degrees.size());
  }
  ASSERT_EQ(back->hubs.size(), catalog.hubs.size());
  EXPECT_EQ(back->hubs[0].id, catalog.hubs[0].id);
  EXPECT_EQ(back->hubs[0].short_name, catalog.hubs[0].short_name);
  ASSERT_EQ(back->index_fields.size(), 1u);
  EXPECT_EQ(back->index_fields[0].postings, 9u);

  // Re-serializing the deserialized catalog is byte-identical.
  std::string again;
  back->Serialize(&again);
  EXPECT_EQ(again, bytes);
}

TEST_F(StatsCatalogTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(StatsCatalog::Deserialize("").ok());
  EXPECT_FALSE(StatsCatalog::Deserialize("nonsense").ok());
  std::string bytes;
  BuildStatsCatalog(store_).Serialize(&bytes);
  EXPECT_FALSE(StatsCatalog::Deserialize(
                   std::string_view(bytes).substr(0, bytes.size() / 2))
                   .ok());
}

TEST_F(StatsCatalogTest, EmptyGraphCatalog) {
  GraphStore empty;
  StatsCatalog catalog = BuildStatsCatalog(empty);
  EXPECT_EQ(catalog.node_count, 0u);
  EXPECT_EQ(catalog.edge_count, 0u);
  EXPECT_TRUE(catalog.hubs.empty());
  std::string bytes;
  catalog.Serialize(&bytes);
  auto back = StatsCatalog::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->node_count, 0u);
}

TEST_F(StatsCatalogTest, ToJsonCarriesTheSections) {
  std::string json = BuildStatsCatalog(store_, &index_).ToJson();
  EXPECT_NE(json.find("\"node_count\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"edge_types\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hubs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"index_fields\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"int\""), std::string::npos) << json;
}

TEST_F(StatsCatalogTest, StalenessRatioTracksDrift) {
  StatsCatalog catalog = BuildStatsCatalog(store_);
  EXPECT_DOUBLE_EQ(catalog.StalenessRatio(9, 15), 0.0);
  // +9 nodes on a 9-node catalog = 100% node drift.
  EXPECT_NEAR(catalog.StalenessRatio(18, 15), 1.0, 1e-9);
  // Edge drift dominates when larger.
  EXPECT_NEAR(catalog.StalenessRatio(9, 30), 1.0, 1e-9);
  // An empty catalog treats any growth as infinite-ish drift (den >= 1).
  StatsCatalog empty;
  EXPECT_GE(empty.StalenessRatio(5, 0), 5.0);
}

TEST_F(StatsCatalogTest, CacheSetGetClearAndRefresh) {
  StatsCatalogCache cache;
  EXPECT_EQ(cache.Get(), nullptr);
  // RefreshIfStale on an empty cache is a no-op: ANALYZE is an explicit
  // opt-in the first time.
  EXPECT_FALSE(cache.RefreshIfStale(store_, &index_));
  EXPECT_EQ(cache.Get(), nullptr);

  cache.Set(BuildStatsCatalog(store_, &index_));
  auto snap = cache.Get();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->node_count, 9u);

  // No drift -> no rebuild (same pointer).
  EXPECT_FALSE(cache.RefreshIfStale(store_, &index_));
  EXPECT_EQ(cache.Get(), snap);

  // Grow the graph past 10% and the refresh hook rebuilds.
  for (int i = 0; i < 4; ++i) store_.AddNode(fn_);
  EXPECT_TRUE(cache.RefreshIfStale(store_, &index_));
  auto fresh = cache.Get();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->node_count, 13u);

  cache.Clear();
  EXPECT_EQ(cache.Get(), nullptr);
}

TEST_F(StatsCatalogTest, SnapshotEmbedsCatalogSection) {
  StatsCatalog catalog = BuildStatsCatalog(store_, &index_);
  SnapshotOptions options;
  options.catalog = &catalog;
  std::string bytes;
  auto sizes = SerializeSnapshot(store_, &bytes, &index_, options);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  EXPECT_GT(sizes->stats, 0u);

  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->catalog.has_value());
  EXPECT_EQ(loaded->catalog->node_count, 9u);
  EXPECT_EQ(loaded->catalog->edge_count, 15u);
  EXPECT_TRUE(loaded->warnings.empty());
}

TEST_F(StatsCatalogTest, SnapshotBuildsCatalogOnDemand) {
  SnapshotOptions options;
  options.build_stats_catalog = true;
  std::string bytes;
  auto sizes = SerializeSnapshot(store_, &bytes, nullptr, options);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->catalog.has_value());
  EXPECT_EQ(loaded->catalog->node_count, 9u);
}

TEST_F(StatsCatalogTest, SnapshotWithoutCatalogLoadsWithoutOne) {
  std::string bytes;
  auto sizes = SerializeSnapshot(store_, &bytes);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  EXPECT_EQ(sizes->stats, 0u);
  auto loaded = DeserializeSnapshot(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->catalog.has_value());
}

// The stats section is advisory: flip a byte in its payload and the load
// must still succeed — store and index intact, catalog dropped, and a
// warning telling the operator to re-run ANALYZE.
TEST_F(StatsCatalogTest, CorruptStatsSectionDegradesGracefully) {
  StatsCatalog catalog = BuildStatsCatalog(store_, &index_);
  SnapshotOptions options;
  options.catalog = &catalog;
  std::string clean;
  auto clean_sizes = SerializeSnapshot(store_, &clean, &index_, options);
  ASSERT_TRUE(clean_sizes.ok()) << clean_sizes.status();

  // The stats section is the last section before the 16-byte trailer; its
  // 4-byte CRC sits immediately before it. Flip a payload byte.
  std::string corrupt = clean;
  size_t payload_byte = corrupt.size() - 16 - 4 - 8;
  corrupt[payload_byte] ^= 0x5A;

  auto loaded = DeserializeSnapshot(corrupt);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->catalog.has_value());
  EXPECT_EQ(loaded->store->NodeCount(), 9u);
  bool warned = false;
  for (const std::string& w : loaded->warnings) {
    if (w.find("stats") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

}  // namespace
}  // namespace frappe::graph
