#include "graph/snapshot_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/file_io.h"
#include "obs/metrics.h"

namespace frappe::graph {
namespace {

GraphStore GraphWithName(const std::string& name) {
  GraphStore store;
  NodeId a = store.AddNode("function");
  store.SetNodeProperty(a, "short_name", store.StringValue(name));
  return store;
}

std::string LoadedName(const LoadedSnapshot& snapshot) {
  const GraphStore& store = *snapshot.store;
  return std::string(
      store.GetNodeString(0, store.keys().Find("short_name")));
}

class SnapshotManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/frappe_mgr_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove(path_.c_str());
    std::remove(common::TempPathFor(path_).c_str());
    for (int g = 1; g <= 5; ++g) {
      std::remove((path_ + "." + std::to_string(g)).c_str());
    }
  }

  bool Exists(const std::string& p) {
    if (FILE* f = std::fopen(p.c_str(), "rb")) {
      std::fclose(f);
      return true;
    }
    return false;
  }

  std::string path_;
};

TEST_F(SnapshotManagerTest, SavesRotateGenerations) {
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("v1")).ok());
  EXPECT_TRUE(Exists(path_));
  EXPECT_FALSE(Exists(manager.GenerationPath(1)));

  ASSERT_TRUE(manager.Save(GraphWithName("v2")).ok());
  EXPECT_TRUE(Exists(manager.GenerationPath(1)));

  ASSERT_TRUE(manager.Save(GraphWithName("v3")).ok());
  EXPECT_TRUE(Exists(manager.GenerationPath(2)));

  // retain=2: a fourth save must not grow a third generation.
  ASSERT_TRUE(manager.Save(GraphWithName("v4")).ok());
  EXPECT_FALSE(Exists(manager.GenerationPath(3)));

  // Generations hold successive states, newest first.
  auto cur = LoadSnapshot(path_);
  auto g1 = LoadSnapshot(manager.GenerationPath(1));
  auto g2 = LoadSnapshot(manager.GenerationPath(2));
  ASSERT_TRUE(cur.ok() && g1.ok() && g2.ok());
  EXPECT_EQ(LoadedName(*cur), "v4");
  EXPECT_EQ(LoadedName(*g1), "v3");
  EXPECT_EQ(LoadedName(*g2), "v2");
}

TEST_F(SnapshotManagerTest, RetainZeroKeepsSingleFile) {
  SnapshotManagerOptions options;
  options.retain = 0;
  SnapshotManager manager(path_, options);
  ASSERT_TRUE(manager.Save(GraphWithName("v1")).ok());
  ASSERT_TRUE(manager.Save(GraphWithName("v2")).ok());
  EXPECT_FALSE(Exists(manager.GenerationPath(1)));
  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(LoadedName(loaded->snapshot), "v2");
}

TEST_F(SnapshotManagerTest, LoadPrefersGenerationZero) {
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("old")).ok());
  ASSERT_TRUE(manager.Save(GraphWithName("new")).ok());
  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->generation, 0);
  EXPECT_EQ(loaded->path, path_);
  EXPECT_TRUE(loaded->generation_errors.empty());
  EXPECT_EQ(LoadedName(loaded->snapshot), "new");
}

TEST_F(SnapshotManagerTest, LoadFallsBackPastCorruptCurrent) {
  obs::Counter& fallbacks =
      obs::Registry::Global().GetCounter("snapshot.load.fallbacks");
  uint64_t before = fallbacks.Value();

  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("old")).ok());
  ASSERT_TRUE(manager.Save(GraphWithName("new")).ok());

  // Corrupt the current generation in the middle of the file.
  std::string bytes;
  ASSERT_TRUE(common::ReadFile(path_, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(common::WriteFileDurable(path_, bytes).ok());

  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation, 1);
  EXPECT_EQ(loaded->path, manager.GenerationPath(1));
  ASSERT_EQ(loaded->generation_errors.size(), 1u);
  EXPECT_NE(loaded->generation_errors[0].find(path_), std::string::npos);
  EXPECT_EQ(LoadedName(loaded->snapshot), "old");
  // The fallback is counted and surfaced as a warning.
  EXPECT_EQ(fallbacks.Value(), before + 1);
  ASSERT_FALSE(loaded->snapshot.warnings.empty());
  EXPECT_NE(loaded->snapshot.warnings.back().find("generation 1"),
            std::string::npos);
}

TEST_F(SnapshotManagerTest, LoadTruncatedCurrentFallsBack) {
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("old")).ok());
  ASSERT_TRUE(manager.Save(GraphWithName("new")).ok());
  std::string bytes;
  ASSERT_TRUE(common::ReadFile(path_, &bytes).ok());
  ASSERT_TRUE(
      common::WriteFileDurable(path_, bytes.substr(0, bytes.size() / 3))
          .ok());
  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->generation, 1);
  EXPECT_EQ(LoadedName(loaded->snapshot), "old");
}

TEST_F(SnapshotManagerTest, MissingFamilyIsNotFound) {
  SnapshotManager manager(path_);
  auto loaded = manager.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotManagerTest, AllGenerationsCorruptIsCorruption) {
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("v1")).ok());
  ASSERT_TRUE(manager.Save(GraphWithName("v2")).ok());
  for (int g = 0; g <= 1; ++g) {
    std::string p = manager.GenerationPath(g);
    std::string bytes;
    ASSERT_TRUE(common::ReadFile(p, &bytes).ok());
    bytes[bytes.size() / 2] ^= 0x01;
    ASSERT_TRUE(common::WriteFileDurable(p, bytes).ok());
  }
  auto loaded = manager.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // The combined message names every failed generation.
  EXPECT_NE(loaded.status().message().find(path_), std::string::npos);
  EXPECT_NE(loaded.status().message().find(manager.GenerationPath(1)),
            std::string::npos);
}

TEST_F(SnapshotManagerTest, SaveCleansStaleTempFiles) {
  // Simulate debris from a crashed save of another process.
  std::string stale = path_ + ".tmp.99999";
  ASSERT_TRUE(common::WriteFileDurable(stale, "garbage").ok());
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("v1")).ok());
  EXPECT_FALSE(Exists(stale));
}

TEST_F(SnapshotManagerTest, SaveCountsMetrics) {
  obs::Counter& saves =
      obs::Registry::Global().GetCounter("snapshot.save.count");
  uint64_t before = saves.Value();
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(GraphWithName("v1")).ok());
  EXPECT_EQ(saves.Value(), before + 1);
}

TEST_F(SnapshotManagerTest, IndexDegradationSurvivesManagerLoad) {
  // Corrupt only the embedded index postings: load succeeds on generation
  // 0 with a rebuilt index and a warning, no fallback needed.
  GraphStore store = GraphWithName("indexed");
  NameIndex index = NameIndex::Build(
      store, {{"short_name", store.keys().Find("short_name"), false}});
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(store, &index).ok());

  std::string bytes;
  ASSERT_TRUE(common::ReadFile(path_, &bytes).ok());
  // The serialized term "indexed" lives only in the index postings blob.
  size_t pos = bytes.rfind("indexed");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x20;
  ASSERT_TRUE(common::WriteFileDurable(path_, bytes).ok());

  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation, 0);
  ASSERT_FALSE(loaded->snapshot.warnings.empty());
  EXPECT_NE(loaded->snapshot.warnings[0].find("rebuilt"),
            std::string::npos);
  ASSERT_TRUE(loaded->snapshot.index.has_value());
  EXPECT_EQ(loaded->snapshot.index->Lookup("short_name", "indexed"),
            std::vector<NodeId>{0});
}

}  // namespace
}  // namespace frappe::graph
