#include "graph/analytics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph_store.h"
#include "graph/traversal.h"

namespace frappe::graph::analytics {
namespace {

// ---------------------------------------------------------------------------
// VisitedBitmap
// ---------------------------------------------------------------------------

TEST(VisitedBitmapTest, SetAndTest) {
  VisitedBitmap bitmap;
  bitmap.Reset(200);
  EXPECT_FALSE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.TestAndSet(0));
  EXPECT_FALSE(bitmap.TestAndSet(0));  // second set is not first
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.TestAndSet(199));
  EXPECT_FALSE(bitmap.Test(100));
}

TEST(VisitedBitmapTest, ResetClearsInConstantTimeViaEpoch) {
  VisitedBitmap bitmap;
  bitmap.Reset(100);
  for (NodeId id = 0; id < 100; ++id) bitmap.Set(id);
  bitmap.Reset(100);
  for (NodeId id = 0; id < 100; ++id) {
    EXPECT_FALSE(bitmap.Test(id)) << id;
  }
  // Bits set before the reset must not resurface after many epochs.
  bitmap.Set(7);
  for (int i = 0; i < 100; ++i) bitmap.Reset(100);
  EXPECT_FALSE(bitmap.Test(7));
}

TEST(VisitedBitmapTest, ResetGrowsUniverse) {
  VisitedBitmap bitmap;
  bitmap.Reset(10);
  bitmap.Set(5);
  bitmap.Reset(100000);
  EXPECT_FALSE(bitmap.Test(5));
  bitmap.Set(99999);
  EXPECT_TRUE(bitmap.Test(99999));
}

TEST(VisitedBitmapTest, AppendSetBitsSortedAscending) {
  VisitedBitmap bitmap;
  bitmap.Reset(500);
  // Deliberately out of order, crossing word boundaries (48 bits/word).
  for (NodeId id : {499u, 0u, 47u, 48u, 96u, 3u}) bitmap.Set(id);
  std::vector<NodeId> out;
  bitmap.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<NodeId>{0, 3, 47, 48, 96, 499}));
}

TEST(VisitedBitmapTest, SurvivesEpochWraparound) {
  VisitedBitmap bitmap;
  bitmap.Reset(50);
  bitmap.Set(10);
  // Drive the 16-bit epoch all the way around; the hard clear on
  // wraparound must not let stale tags alias a fresh epoch.
  for (int i = 0; i < 70000; ++i) bitmap.Reset(50);
  EXPECT_FALSE(bitmap.Test(10));
  EXPECT_TRUE(bitmap.TestAndSet(10));
}

TEST(VisitedBitmapTest, TestAndSetStaysExactAcrossEpochWraparound) {
  // Keep bits set while the epoch wraps: right after the hard clear,
  // TestAndSet must still report first-set exactly once per id — a stale
  // tag surviving the wrap would make it report false for a clear bit (or
  // true twice).
  VisitedBitmap bitmap;
  const size_t kUniverse = 100;
  for (int round = 0; round < 70000; ++round) {
    bitmap.Reset(kUniverse);
    if (round % 9973 != 0 && round < 65540) continue;  // keep the loop fast
    EXPECT_TRUE(bitmap.TestAndSet(3)) << "round " << round;
    EXPECT_FALSE(bitmap.TestAndSet(3)) << "round " << round;
    EXPECT_TRUE(bitmap.TestAndSetSeq(90)) << "round " << round;
    EXPECT_FALSE(bitmap.TestAndSetSeq(90)) << "round " << round;
    EXPECT_FALSE(bitmap.Test(4)) << "round " << round;
  }
}

TEST(VisitedBitmapTest, WordPackingBoundaries) {
  // 48 payload bits per word: ids 47/48 and 95/96 straddle word borders,
  // and the last id of the universe must stay in bounds.
  VisitedBitmap bitmap;
  bitmap.Reset(97);
  EXPECT_TRUE(bitmap.TestAndSet(47));
  EXPECT_TRUE(bitmap.TestAndSet(48));
  EXPECT_FALSE(bitmap.TestAndSet(47));
  EXPECT_FALSE(bitmap.TestAndSet(48));
  EXPECT_FALSE(bitmap.Test(46));
  EXPECT_FALSE(bitmap.Test(49));
  EXPECT_TRUE(bitmap.TestAndSet(96));  // first id of the third word
  EXPECT_FALSE(bitmap.Test(95));
  std::vector<NodeId> out;
  bitmap.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<NodeId>{47, 48, 96}));

  // A universe ending exactly on a word boundary.
  bitmap.Reset(96);
  EXPECT_TRUE(bitmap.TestAndSet(95));
  out.clear();
  bitmap.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<NodeId>{95}));
}

TEST(VisitedBitmapTest, SeqVariantsMatchAtomicSemantics) {
  VisitedBitmap bitmap;
  bitmap.Reset(100);
  EXPECT_TRUE(bitmap.TestAndSetSeq(0));   // stale-word refresh path
  EXPECT_FALSE(bitmap.TestAndSetSeq(0));  // already set
  EXPECT_TRUE(bitmap.TestAndSetSeq(1));   // fresh-word set path
  bitmap.SetSeq(2);
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.Test(1));
  EXPECT_TRUE(bitmap.Test(2));
  // Seq and atomic writes interoperate on the same words.
  EXPECT_FALSE(bitmap.TestAndSet(2));
  EXPECT_TRUE(bitmap.TestAndSet(3));
  EXPECT_FALSE(bitmap.TestAndSetSeq(3));
  bitmap.Reset(100);
  EXPECT_FALSE(bitmap.Test(0));
  EXPECT_TRUE(bitmap.TestAndSetSeq(0));
}

TEST(VisitedBitmapTest, WordPayloadReflectsEpochAndBits) {
  VisitedBitmap bitmap;
  bitmap.Reset(96);
  EXPECT_EQ(bitmap.WordPayload(0), 0u);  // stale word reads as empty
  bitmap.Set(0);
  bitmap.Set(47);
  EXPECT_EQ(bitmap.WordPayload(13),  // any id in the first word
            (uint64_t{1} << 0) | (uint64_t{1} << 47));
  EXPECT_EQ(bitmap.WordPayload(48), 0u);
  bitmap.Reset(96);
  EXPECT_EQ(bitmap.WordPayload(0), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunLanesRunsEveryLane) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(16);
  pool.RunLanes(16, [&](size_t lane) {
    hits[lane].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "lane " << i;
  }
}

TEST(ThreadPoolTest, MoreLanesThanWorkersCannotDeadlock) {
  // A pool with zero workers must still complete: the caller help-drains
  // the queue (this is the 1-core-machine configuration).
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.RunLanes(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(4), 4u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: parallel kernels agree with the sequential traversals on
// random graphs, for every thread count.
// ---------------------------------------------------------------------------

struct RandomGraph {
  GraphStore store;
  TypeId node_type, edge_a, edge_b;
  std::vector<NodeId> nodes;
};

RandomGraph MakeRandomGraph(uint64_t seed, size_t node_count,
                            size_t edges_per_node) {
  RandomGraph g;
  frappe::Rng rng(seed);
  g.node_type = g.store.InternNodeType("n");
  g.edge_a = g.store.InternEdgeType("a");
  g.edge_b = g.store.InternEdgeType("b");
  for (size_t i = 0; i < node_count; ++i) {
    g.nodes.push_back(g.store.AddNode(g.node_type));
  }
  for (size_t i = 0; i < node_count * edges_per_node; ++i) {
    NodeId src = g.nodes[rng.Uniform(node_count)];
    NodeId dst = g.nodes[rng.Uniform(node_count)];
    g.store.AddEdge(src, dst, i % 4 == 0 ? g.edge_b : g.edge_a);
  }
  return g;
}

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, ClosureMatchesSequentialForEveryThreadCount) {
  RandomGraph g = MakeRandomGraph(GetParam(), /*node_count=*/300,
                                  /*edges_per_node=*/4);
  CsrView csr = CsrView::Build(g.store);
  // A real multi-worker pool so lanes genuinely interleave.
  ThreadPool pool(7);
  frappe::Rng rng(GetParam() ^ 0x5eed);
  for (Direction dir : {Direction::kOut, Direction::kIn, Direction::kBoth}) {
    EdgeFilter filter = EdgeFilter::Of({g.edge_a}, dir);
    std::vector<NodeId> seeds{g.nodes[rng.Uniform(g.nodes.size())],
                              g.nodes[rng.Uniform(g.nodes.size())]};
    std::vector<NodeId> expected =
        TransitiveClosure(g.store, seeds, filter);
    for (size_t threads : {1u, 2u, 8u}) {
      Options options;
      options.threads = threads;
      options.pool = &pool;
      auto got = ParallelClosure(csr, seeds, filter, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, expected)
          << "dir=" << static_cast<int>(dir) << " threads=" << threads;
    }
  }
}

TEST_P(DeterminismTest, DepthLimitedClosureMatchesSequential) {
  RandomGraph g = MakeRandomGraph(GetParam() + 17, 200, 3);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Any();
  for (size_t max_depth : {1u, 2u, 5u}) {
    std::vector<NodeId> expected =
        TransitiveClosure(g.store, g.nodes[0], filter, max_depth);
    for (size_t threads : {1u, 2u, 8u}) {
      Options options;
      options.threads = threads;
      options.pool = &pool;
      options.max_depth = max_depth;
      auto got = ParallelClosure(csr, {g.nodes[0]}, filter, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, expected)
          << "depth=" << max_depth << " threads=" << threads;
    }
  }
}

TEST_P(DeterminismTest, BfsDepthsMatchSequentialBfs) {
  RandomGraph g = MakeRandomGraph(GetParam() + 31, 250, 3);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Of({g.edge_a, g.edge_b});
  std::vector<NodeId> seeds{g.nodes[1]};
  std::map<NodeId, size_t> expected;
  Bfs(g.store, seeds, filter, [&](NodeId id, size_t depth) {
    expected[id] = depth;
    return true;
  });
  for (size_t threads : {1u, 2u, 8u}) {
    Options options;
    options.threads = threads;
    options.pool = &pool;
    auto got = ParallelBfsDepths(csr, seeds, filter, options);
    ASSERT_TRUE(got.ok()) << got.status();
    for (NodeId id = 0; id < got->size(); ++id) {
      auto it = expected.find(id);
      if (it == expected.end()) {
        EXPECT_EQ((*got)[id], kUnreachedDepth) << "node " << id;
      } else {
        EXPECT_EQ((*got)[id], it->second) << "node " << id;
      }
    }
  }
}

TEST_P(DeterminismTest, ReachableMatchesSequentialBfsSet) {
  RandomGraph g = MakeRandomGraph(GetParam() + 77, 250, 3);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Of({g.edge_a});
  std::vector<NodeId> seeds{g.nodes[2], g.nodes[3]};
  std::vector<NodeId> expected;
  Bfs(g.store, seeds, filter, [&](NodeId id, size_t) {
    expected.push_back(id);
    return true;
  });
  std::sort(expected.begin(), expected.end());
  for (size_t threads : {1u, 2u, 8u}) {
    Options options;
    options.threads = threads;
    options.pool = &pool;
    auto got = ParallelReachable(csr, seeds, filter, options);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, expected) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(11, 42, 1234, 98765));

// ---------------------------------------------------------------------------
// Engine semantics on a hand-built graph
// ---------------------------------------------------------------------------

TEST(FrontierEngineTest, SeedInClosureOnlyViaCycle) {
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  NodeId a = store.AddNode(nt), b = store.AddNode(nt),
         c = store.AddNode(nt), d = store.AddNode(nt);
  store.AddEdge(a, b, et);
  store.AddEdge(b, c, et);
  store.AddEdge(c, b, et);  // cycle b<->c, a not on it
  (void)d;
  CsrView csr = CsrView::Build(store);
  FrontierEngine engine;
  auto from_a = engine.Closure(csr, {a}, EdgeFilter::Of({et}));
  ASSERT_TRUE(from_a.ok());
  EXPECT_EQ(*from_a, (std::vector<NodeId>{b, c}));  // a not re-reached
  auto from_b = engine.Closure(csr, {b}, EdgeFilter::Of({et}));
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(*from_b, (std::vector<NodeId>{b, c}));  // b re-reached via c
}

TEST(FrontierEngineTest, ScratchReuseAcrossCalls) {
  RandomGraph g = MakeRandomGraph(5, 100, 3);
  CsrView csr = CsrView::Build(g.store);
  FrontierEngine engine;
  EdgeFilter filter = EdgeFilter::Any();
  for (int round = 0; round < 5; ++round) {
    NodeId seed = g.nodes[round * 7];
    auto got = engine.Closure(csr, {seed}, filter);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, TransitiveClosure(g.store, seed, filter)) << round;
  }
}

TEST(FrontierEngineTest, MetricsReportWork) {
  RandomGraph g = MakeRandomGraph(9, 120, 4);
  CsrView csr = CsrView::Build(g.store);
  FrontierEngine engine;
  Metrics metrics;
  auto got = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any(), {},
                            &metrics);
  ASSERT_TRUE(got.ok());
  if (!got->empty()) {
    EXPECT_GT(metrics.steps, 0u);
    EXPECT_GT(metrics.levels, 0u);
    EXPECT_GT(metrics.frontier_peak, 0u);
  }
}

TEST(FrontierEngineTest, MetricsFullyResetBetweenRuns) {
  // Regression: frontier_sizes (and the parallel direction vectors) were
  // appended to across runs when the caller reused one Metrics struct, so a
  // second traversal reported the concatenation of both frontier
  // trajectories. Every field must describe the latest run only.
  RandomGraph g = MakeRandomGraph(13, 150, 4);
  CsrView csr = CsrView::Build(g.store);
  FrontierEngine engine;
  Metrics metrics;
  auto first = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any(), {},
                              &metrics);
  ASSERT_TRUE(first.ok());
  Metrics first_metrics = metrics;
  ASSERT_EQ(first_metrics.frontier_sizes.size(), first_metrics.levels);
  ASSERT_EQ(first_metrics.level_pull.size(), first_metrics.levels);
  ASSERT_EQ(first_metrics.level_bitmap.size(), first_metrics.levels);

  // Same query, same struct: every field must come out identical, not
  // doubled.
  auto second = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any(), {},
                               &metrics);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(metrics.steps, first_metrics.steps);
  EXPECT_EQ(metrics.levels, first_metrics.levels);
  EXPECT_EQ(metrics.frontier_peak, first_metrics.frontier_peak);
  EXPECT_EQ(metrics.frontier_sizes, first_metrics.frontier_sizes);
  EXPECT_EQ(metrics.level_pull, first_metrics.level_pull);
  EXPECT_EQ(metrics.level_bitmap, first_metrics.level_bitmap);
  EXPECT_EQ(metrics.direction_switches, first_metrics.direction_switches);

  // A smaller follow-up query must shrink the vectors, not append to them.
  Options shallow;
  shallow.max_depth = 1;
  auto third = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any(), shallow,
                              &metrics);
  ASSERT_TRUE(third.ok());
  EXPECT_LE(metrics.levels, 1u);
  EXPECT_EQ(metrics.frontier_sizes.size(), metrics.levels);
  EXPECT_EQ(metrics.level_pull.size(), metrics.levels);
  EXPECT_EQ(metrics.level_bitmap.size(), metrics.levels);
}

// ---------------------------------------------------------------------------
// Cancellation under parallel execution
// ---------------------------------------------------------------------------

TEST(CancellationTest, StepBudgetBreachReturnsResourceExhausted) {
  RandomGraph g = MakeRandomGraph(21, 400, 5);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  for (size_t threads : {1u, 2u, 8u}) {
    Options options;
    options.threads = threads;
    options.pool = &pool;
    options.max_steps = 1;  // any expansion of the first level breaches
    FrontierEngine engine;
    auto got = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any(), options);
    ASSERT_FALSE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(got.status().message().find("step budget"), std::string::npos);
  }
}

TEST(CancellationTest, DeadlineBreachReturnsDeadlineExceeded) {
  // A long chain forces one BFS level per node: hundreds of thousands of
  // levels take well over a millisecond, so a 1ms deadline must trip.
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  const size_t kNodes = 300000;
  NodeId prev = store.AddNode(nt);
  NodeId first = prev;
  for (size_t i = 1; i < kNodes; ++i) {
    NodeId cur = store.AddNode(nt);
    store.AddEdge(prev, cur, et);
    prev = cur;
  }
  CsrView csr = CsrView::Build(store);
  ThreadPool pool(7);
  for (size_t threads : {1u, 8u}) {
    Options options;
    options.threads = threads;
    options.pool = &pool;
    options.deadline_ms = 1;
    FrontierEngine engine;
    auto got = engine.Closure(csr, {first}, EdgeFilter::Of({et}), options);
    ASSERT_FALSE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(got.status().message().find("deadline"), std::string::npos);
  }
}

TEST(CancellationTest, UnbudgetedRunNeverFails) {
  RandomGraph g = MakeRandomGraph(33, 200, 4);
  CsrView csr = CsrView::Build(g.store);
  FrontierEngine engine;
  auto got = engine.Closure(csr, {g.nodes[0]}, EdgeFilter::Any());
  EXPECT_TRUE(got.ok()) << got.status();
}

}  // namespace
}  // namespace frappe::graph::analytics
