// Tests for the GraphView convenience helpers shared by every view
// implementation (store, CSR, temporal).

#include "graph/graph_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

class GraphViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_ = store_.InternKey("short_name");
    value_ = store_.InternKey("value");
    fn_ = store_.AddNode("function");
    store_.SetNodeProperty(fn_, name_, store_.StringValue("main"));
    store_.SetNodeProperty(fn_, value_, Value::Int(7));
    file_ = store_.AddNode("file");
    edge_ = store_.AddEdge(file_, fn_, "file_contains");
    store_.SetEdgeProperty(edge_, name_, store_.StringValue("ref"));
  }

  GraphStore store_;
  KeyId name_, value_;
  NodeId fn_, file_;
  EdgeId edge_;
};

TEST_F(GraphViewTest, GetNodeStringResolvesInternedValue) {
  EXPECT_EQ(store_.GetNodeString(fn_, name_), "main");
}

TEST_F(GraphViewTest, GetNodeStringOnNonStringPropertyIsEmpty) {
  EXPECT_EQ(store_.GetNodeString(fn_, value_), "");
}

TEST_F(GraphViewTest, GetNodeStringOnAbsentKeyIsEmpty) {
  EXPECT_EQ(store_.GetNodeString(fn_, store_.InternKey("absent")), "");
}

TEST_F(GraphViewTest, GetEdgeStringResolves) {
  EXPECT_EQ(store_.GetEdgeString(edge_, name_), "ref");
  EXPECT_EQ(store_.GetEdgeString(edge_, value_), "");
}

TEST_F(GraphViewTest, TypeNameHelpers) {
  EXPECT_EQ(store_.NodeTypeName(fn_), "function");
  EXPECT_EQ(store_.EdgeTypeName(edge_), "file_contains");
}

TEST_F(GraphViewTest, DegreeSumsBothDirections) {
  EXPECT_EQ(store_.Degree(fn_), 1u);
  EXPECT_EQ(store_.Degree(file_), 1u);
  store_.AddEdge(fn_, file_, "x");
  EXPECT_EQ(store_.Degree(fn_), 2u);
}

TEST_F(GraphViewTest, ForEachEdgeGlobalSkipsDead) {
  EdgeId second = store_.AddEdge(file_, fn_, "includes");
  store_.RemoveEdge(edge_);
  std::vector<EdgeId> seen;
  store_.ForEachEdgeGlobal([&](EdgeId e) { seen.push_back(e); });
  EXPECT_EQ(seen, std::vector<EdgeId>{second});
}

TEST_F(GraphViewTest, ForEachNodeVisitsAllLive) {
  size_t count = 0;
  store_.ForEachNode([&](NodeId) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(ValueToStringTest, DoubleRendering) {
  StringPool pool;
  EXPECT_EQ(Value::Double(2.5).ToString(pool), "2.5");
}

}  // namespace
}  // namespace frappe::graph
