#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

// Builds a store exercising every value type, properties on nodes and
// edges, and tombstoned ids.
GraphStore BuildFixture() {
  GraphStore store;
  NodeId a = store.AddNode("function");
  store.SetNodeProperty(a, "short_name", store.StringValue("main"));
  store.SetNodeProperty(a, "variadic", Value::Bool(true));
  NodeId dead = store.AddNode("function");
  NodeId b = store.AddNode("file");
  store.SetNodeProperty(b, "long_name", store.StringValue("/src/main.c"));
  store.SetNodeProperty(b, "value", Value::Double(1.5));
  EdgeId e1 = store.AddEdge(a, b, "file_contains");
  store.SetEdgeProperty(e1, "use_start_line", Value::Int(104));
  EdgeId dead_edge = store.AddEdge(a, b, "calls");
  store.RemoveEdge(dead_edge);
  store.RemoveNode(dead);
  return store;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  GraphStore original = BuildFixture();
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob);
  ASSERT_TRUE(sizes.ok());
  EXPECT_EQ(sizes->total(), blob.size());

  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const GraphStore& restored = *loaded->store;

  EXPECT_EQ(restored.NodeCount(), original.NodeCount());
  EXPECT_EQ(restored.EdgeCount(), original.EdgeCount());
  EXPECT_EQ(restored.NodeIdUpperBound(), original.NodeIdUpperBound());
  EXPECT_EQ(restored.EdgeIdUpperBound(), original.EdgeIdUpperBound());

  // Same liveness layout.
  for (NodeId id = 0; id < original.NodeIdUpperBound(); ++id) {
    EXPECT_EQ(restored.NodeExists(id), original.NodeExists(id)) << id;
  }
  for (EdgeId id = 0; id < original.EdgeIdUpperBound(); ++id) {
    EXPECT_EQ(restored.EdgeExists(id), original.EdgeExists(id)) << id;
  }

  // Property values survive, including interned strings.
  NodeId a = 0, b = 2;
  EXPECT_EQ(restored.GetNodeString(a, restored.keys().Find("short_name")),
            "main");
  EXPECT_TRUE(restored
                  .GetNodeProperty(a, restored.keys().Find("variadic"))
                  .AsBool());
  EXPECT_EQ(restored.GetNodeString(b, restored.keys().Find("long_name")),
            "/src/main.c");
  EXPECT_DOUBLE_EQ(
      restored.GetNodeProperty(b, restored.keys().Find("value")).AsDouble(),
      1.5);
  EdgeId e1 = 0;
  Edge edge = restored.GetEdge(e1);
  EXPECT_EQ(edge.src, a);
  EXPECT_EQ(edge.dst, b);
  EXPECT_EQ(restored.EdgeTypeName(e1), "file_contains");
  EXPECT_EQ(
      restored.GetEdgeProperty(e1, restored.keys().Find("use_start_line"))
          .AsInt(),
      104);
}

TEST(SnapshotTest, RoundTripWithEmbeddedIndex) {
  GraphStore original = BuildFixture();
  NameIndex index = NameIndex::Build(
      original, {{"short_name", original.keys().Find("short_name"), false}});
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob, &index);
  ASSERT_TRUE(sizes.ok());
  EXPECT_GT(sizes->indexes, 0u);

  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->index.has_value());
  EXPECT_EQ(loaded->index->Lookup("short_name", "main"),
            std::vector<NodeId>{0});
}

TEST(SnapshotTest, SizesSectionsAreConsistent) {
  GraphStore original = BuildFixture();
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob);
  ASSERT_TRUE(sizes.ok());
  EXPECT_GT(sizes->schema, 0u);
  EXPECT_GT(sizes->strings, 0u);
  EXPECT_GT(sizes->nodes, 0u);
  EXPECT_GT(sizes->relationships, 0u);
  EXPECT_GT(sizes->node_properties, 0u);
  EXPECT_GT(sizes->edge_properties, 0u);
  EXPECT_EQ(sizes->indexes, 0u);
  EXPECT_EQ(sizes->properties(),
            sizes->node_properties + sizes->edge_properties + sizes->strings);
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  GraphStore empty;
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(empty, &blob).ok());
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->store->NodeCount(), 0u);
  EXPECT_EQ(loaded->store->EdgeCount(), 0u);
}

TEST(SnapshotTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeSnapshot("NOTADB00garbage").ok());
  EXPECT_FALSE(DeserializeSnapshot("").ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  GraphStore original = BuildFixture();
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(original, &blob).ok());
  for (size_t frac = 1; frac < 8; ++frac) {
    size_t cut = blob.size() * frac / 8;
    auto result = DeserializeSnapshot(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  GraphStore original = BuildFixture();
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(original, &blob).ok());
  blob += "extra";
  EXPECT_FALSE(DeserializeSnapshot(blob).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  GraphStore original = BuildFixture();
  std::string path = ::testing::TempDir() + "/frappe_snapshot_test.db";
  auto sizes = SaveSnapshot(original, path);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->store->NodeCount(), original.NodeCount());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsNotFound) {
  auto result = LoadSnapshot("/nonexistent/path/to.db");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// Property test: random graphs round-trip exactly.
class SnapshotRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRandomTest, RandomGraphRoundTrips) {
  frappe::Rng rng(GetParam());
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  KeyId k1 = store.InternKey("k1");
  KeyId k2 = store.InternKey("k2");
  const size_t kNodes = 30;
  for (size_t i = 0; i < kNodes; ++i) {
    NodeId id = store.AddNode(nt);
    if (rng.Bernoulli(0.5)) {
      store.SetNodeProperty(id, k1, Value::Int(rng.UniformRange(-100, 100)));
    }
    if (rng.Bernoulli(0.3)) {
      store.SetNodeProperty(
          id, k2, store.StringValue("s" + std::to_string(rng.Uniform(10))));
    }
  }
  for (size_t i = 0; i < kNodes * 2; ++i) {
    EdgeId e = store.AddEdge(static_cast<NodeId>(rng.Uniform(kNodes)),
                             static_cast<NodeId>(rng.Uniform(kNodes)), et);
    if (rng.Bernoulli(0.5)) {
      store.SetEdgeProperty(e, k1, Value::Double(rng.NextDouble()));
    }
  }
  // Random deletions create tombstones.
  for (size_t i = 0; i < 5; ++i) {
    store.RemoveNode(static_cast<NodeId>(rng.Uniform(kNodes)));
  }

  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(store, &blob).ok());
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  const GraphStore& restored = *loaded->store;

  ASSERT_EQ(restored.NodeIdUpperBound(), store.NodeIdUpperBound());
  ASSERT_EQ(restored.EdgeIdUpperBound(), store.EdgeIdUpperBound());
  for (NodeId id = 0; id < store.NodeIdUpperBound(); ++id) {
    ASSERT_EQ(restored.NodeExists(id), store.NodeExists(id));
    if (!store.NodeExists(id)) continue;
    EXPECT_EQ(restored.NodeType(id), store.NodeType(id));
    EXPECT_TRUE(restored.NodeProperties(id) == store.NodeProperties(id));
  }
  for (EdgeId id = 0; id < store.EdgeIdUpperBound(); ++id) {
    ASSERT_EQ(restored.EdgeExists(id), store.EdgeExists(id));
    if (!store.EdgeExists(id)) continue;
    Edge a = restored.GetEdge(id), b = store.GetEdge(id);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.type, b.type);
    EXPECT_TRUE(restored.EdgeProperties(id) == store.EdgeProperties(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRandomTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace frappe::graph
