#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

// Builds a store exercising every value type, properties on nodes and
// edges, and tombstoned ids.
GraphStore BuildFixture() {
  GraphStore store;
  NodeId a = store.AddNode("function");
  store.SetNodeProperty(a, "short_name", store.StringValue("main"));
  store.SetNodeProperty(a, "variadic", Value::Bool(true));
  NodeId dead = store.AddNode("function");
  NodeId b = store.AddNode("file");
  store.SetNodeProperty(b, "long_name", store.StringValue("/src/main.c"));
  store.SetNodeProperty(b, "value", Value::Double(1.5));
  EdgeId e1 = store.AddEdge(a, b, "file_contains");
  store.SetEdgeProperty(e1, "use_start_line", Value::Int(104));
  EdgeId dead_edge = store.AddEdge(a, b, "calls");
  store.RemoveEdge(dead_edge);
  store.RemoveNode(dead);
  return store;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  GraphStore original = BuildFixture();
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob);
  ASSERT_TRUE(sizes.ok());
  EXPECT_EQ(sizes->total(), blob.size());

  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const GraphStore& restored = *loaded->store;

  EXPECT_EQ(restored.NodeCount(), original.NodeCount());
  EXPECT_EQ(restored.EdgeCount(), original.EdgeCount());
  EXPECT_EQ(restored.NodeIdUpperBound(), original.NodeIdUpperBound());
  EXPECT_EQ(restored.EdgeIdUpperBound(), original.EdgeIdUpperBound());

  // Same liveness layout.
  for (NodeId id = 0; id < original.NodeIdUpperBound(); ++id) {
    EXPECT_EQ(restored.NodeExists(id), original.NodeExists(id)) << id;
  }
  for (EdgeId id = 0; id < original.EdgeIdUpperBound(); ++id) {
    EXPECT_EQ(restored.EdgeExists(id), original.EdgeExists(id)) << id;
  }

  // Property values survive, including interned strings.
  NodeId a = 0, b = 2;
  EXPECT_EQ(restored.GetNodeString(a, restored.keys().Find("short_name")),
            "main");
  EXPECT_TRUE(restored
                  .GetNodeProperty(a, restored.keys().Find("variadic"))
                  .AsBool());
  EXPECT_EQ(restored.GetNodeString(b, restored.keys().Find("long_name")),
            "/src/main.c");
  EXPECT_DOUBLE_EQ(
      restored.GetNodeProperty(b, restored.keys().Find("value")).AsDouble(),
      1.5);
  EdgeId e1 = 0;
  Edge edge = restored.GetEdge(e1);
  EXPECT_EQ(edge.src, a);
  EXPECT_EQ(edge.dst, b);
  EXPECT_EQ(restored.EdgeTypeName(e1), "file_contains");
  EXPECT_EQ(
      restored.GetEdgeProperty(e1, restored.keys().Find("use_start_line"))
          .AsInt(),
      104);
}

TEST(SnapshotTest, RoundTripWithEmbeddedIndex) {
  GraphStore original = BuildFixture();
  NameIndex index = NameIndex::Build(
      original, {{"short_name", original.keys().Find("short_name"), false}});
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob, &index);
  ASSERT_TRUE(sizes.ok());
  EXPECT_GT(sizes->indexes, 0u);

  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->index.has_value());
  EXPECT_EQ(loaded->index->Lookup("short_name", "main"),
            std::vector<NodeId>{0});
}

TEST(SnapshotTest, SizesSectionsAreConsistent) {
  GraphStore original = BuildFixture();
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob);
  ASSERT_TRUE(sizes.ok());
  EXPECT_GT(sizes->schema, 0u);
  EXPECT_GT(sizes->strings, 0u);
  EXPECT_GT(sizes->nodes, 0u);
  EXPECT_GT(sizes->relationships, 0u);
  EXPECT_GT(sizes->node_properties, 0u);
  EXPECT_GT(sizes->edge_properties, 0u);
  EXPECT_EQ(sizes->indexes, 0u);
  EXPECT_EQ(sizes->properties(),
            sizes->node_properties + sizes->edge_properties + sizes->strings);
}

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  GraphStore empty;
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(empty, &blob).ok());
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->store->NodeCount(), 0u);
  EXPECT_EQ(loaded->store->EdgeCount(), 0u);
}

TEST(SnapshotTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeSnapshot("NOTADB00garbage").ok());
  EXPECT_FALSE(DeserializeSnapshot("").ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  GraphStore original = BuildFixture();
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(original, &blob).ok());
  for (size_t frac = 1; frac < 8; ++frac) {
    size_t cut = blob.size() * frac / 8;
    auto result = DeserializeSnapshot(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  GraphStore original = BuildFixture();
  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(original, &blob).ok());
  blob += "extra";
  EXPECT_FALSE(DeserializeSnapshot(blob).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  GraphStore original = BuildFixture();
  std::string path = ::testing::TempDir() + "/frappe_snapshot_test.db";
  auto sizes = SaveSnapshot(original, path);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->store->NodeCount(), original.NodeCount());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsNotFound) {
  auto result = LoadSnapshot("/nonexistent/path/to.db");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --- v2 format: checksums, trailer, corruption reporting ---

struct Frame {
  uint32_t id = 0;
  size_t payload_off = 0;
  uint64_t payload_len = 0;
};

// Walks the v2 section framing: [20-byte header][id|len|payload|crc]*[16-byte
// trailer]. Mirrors the layout documented in snapshot.h.
std::vector<Frame> WalkFrames(const std::string& blob) {
  std::vector<Frame> frames;
  size_t pos = 20;
  size_t body_end = blob.size() - 16;
  while (pos < body_end) {
    Frame f;
    std::memcpy(&f.id, blob.data() + pos, 4);
    std::memcpy(&f.payload_len, blob.data() + pos + 4, 8);
    f.payload_off = pos + 12;
    frames.push_back(f);
    pos = f.payload_off + f.payload_len + 4;
  }
  return frames;
}

std::string SerializedFixture(bool with_index, GraphStore* out_store) {
  *out_store = BuildFixture();
  std::string blob;
  if (with_index) {
    NameIndex index = NameIndex::Build(
        *out_store,
        {{"short_name", out_store->keys().Find("short_name"), false}});
    EXPECT_TRUE(SerializeSnapshot(*out_store, &blob, &index).ok());
  } else {
    EXPECT_TRUE(SerializeSnapshot(*out_store, &blob).ok());
  }
  return blob;
}

TEST(SnapshotV2Test, ReportsFormatVersion) {
  GraphStore store;
  std::string blob = SerializedFixture(false, &store);
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->format_version, 2u);
  EXPECT_TRUE(loaded->warnings.empty());
}

TEST(SnapshotV2Test, IndexlessGraphRoundTrips) {
  GraphStore store;
  std::string blob = SerializedFixture(false, &store);
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->index.has_value());
  EXPECT_EQ(loaded->store->NodeCount(), store.NodeCount());
}

TEST(SnapshotV2Test, ChecksumsOffStillRoundTrips) {
  GraphStore original = BuildFixture();
  SnapshotOptions options;
  options.checksums = false;
  std::string blob;
  auto sizes = SerializeSnapshot(original, &blob, nullptr, options);
  ASSERT_TRUE(sizes.ok());
  EXPECT_EQ(sizes->total(), blob.size());
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->store->NodeCount(), original.NodeCount());
}

TEST(SnapshotV2Test, TruncationAtEverySectionBoundaryIsCorruption) {
  GraphStore store;
  std::string blob = SerializedFixture(true, &store);
  std::vector<size_t> cuts = {20};  // end of header
  for (const Frame& f : WalkFrames(blob)) {
    cuts.push_back(f.payload_off - 12);           // frame start
    cuts.push_back(f.payload_off);                // after id+len
    cuts.push_back(f.payload_off + f.payload_len);  // before section crc
    cuts.push_back(f.payload_off + f.payload_len + 4);  // frame end
  }
  cuts.push_back(blob.size() - 16);  // body end (trailer gone)
  cuts.push_back(blob.size() - 8);   // half the trailer
  cuts.push_back(blob.size() - 1);
  for (size_t cut : cuts) {
    auto result = DeserializeSnapshot(std::string_view(blob).substr(0, cut));
    ASSERT_FALSE(result.ok()) << "cut=" << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
        << "cut=" << cut << ": " << result.status();
  }
}

TEST(SnapshotV2Test, CorruptionNamesSectionAndOffset) {
  GraphStore store;
  std::string blob = SerializedFixture(false, &store);
  // Flip one byte inside the nodes section payload.
  for (const Frame& f : WalkFrames(blob)) {
    if (f.id != 3) continue;  // nodes
    std::string bad = blob;
    bad[f.payload_off + 2] ^= 0x10;
    auto result = DeserializeSnapshot(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    EXPECT_NE(result.status().message().find("'nodes'"), std::string::npos)
        << result.status();
    EXPECT_NE(result.status().message().find("offset"), std::string::npos);
    return;
  }
  FAIL() << "nodes section not found";
}

TEST(SnapshotV2Test, HeaderFlagBitFlipIsDetected) {
  // Clearing the checksummed flag by a bit flip must not silently disable
  // verification: the trailer CRC covers the header.
  GraphStore store;
  std::string blob = SerializedFixture(false, &store);
  std::string bad = blob;
  bad[12] ^= 0x01;  // flags field, bit 0
  auto result = DeserializeSnapshot(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("header"), std::string::npos);
}

TEST(SnapshotV2Test, TrailerLengthMismatchIsCorruption) {
  GraphStore store;
  std::string blob = SerializedFixture(false, &store);
  // Append garbage while keeping the old trailer bytes at the old place:
  // the trailer magic no longer sits at EOF.
  auto grown = DeserializeSnapshot(blob + std::string(32, 'x'));
  ASSERT_FALSE(grown.ok());
  EXPECT_EQ(grown.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotV2Test, CorruptIndexPostingsDegradesToRebuild) {
  GraphStore store;
  std::string blob = SerializedFixture(true, &store);
  std::string bad = blob;
  bool found = false;
  for (const Frame& f : WalkFrames(blob)) {
    if (f.id != 7) continue;  // index
    bad[f.payload_off + f.payload_len - 1] ^= 0x01;  // inside postings
    found = true;
  }
  ASSERT_TRUE(found);
  auto loaded = DeserializeSnapshot(bad);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_FALSE(loaded->warnings.empty());
  EXPECT_NE(loaded->warnings[0].find("rebuilt"), std::string::npos);
  // The rebuilt index answers queries like the original would have.
  ASSERT_TRUE(loaded->index.has_value());
  EXPECT_EQ(loaded->index->Lookup("short_name", "main"),
            std::vector<NodeId>{0});
}

TEST(SnapshotV2Test, CorruptIndexSpecsDropsIndexButLoads) {
  GraphStore store;
  std::string blob = SerializedFixture(true, &store);
  std::string bad = blob;
  bool found = false;
  for (const Frame& f : WalkFrames(blob)) {
    if (f.id != 7) continue;
    bad[f.payload_off] ^= 0x04;  // spec_count: field specs unrecoverable
    found = true;
  }
  ASSERT_TRUE(found);
  auto loaded = DeserializeSnapshot(bad);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->index.has_value());
  ASSERT_FALSE(loaded->warnings.empty());
  EXPECT_NE(loaded->warnings[0].find("dropped"), std::string::npos);
  // The graph data itself is intact.
  EXPECT_EQ(loaded->store->NodeCount(), store.NodeCount());
}

// 256 seeded single-bit corruptions: every flip must either surface as
// Status::Corruption or — only when it lands in the degradable index
// section — load with an explicit warning. Never a crash, never a silent
// wrong load (run under ASan/UBSan via the storage label lane).
class SnapshotBitFlipTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotBitFlipTest, SingleBitFlipNeverLoadsSilently) {
  GraphStore store;
  static const std::string blob = [] {
    GraphStore s;
    return SerializedFixture(true, &s);
  }();
  frappe::Rng rng(GetParam() * 7919 + 1);
  std::string bad = blob;
  size_t bit = rng.Uniform(blob.size() * 8);
  bad[bit / 8] ^= static_cast<char>(1u << (bit % 8));

  auto result = DeserializeSnapshot(bad);
  if (result.ok()) {
    EXPECT_FALSE(result->warnings.empty())
        << "bit " << bit << " loaded with no warning";
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
        << "bit " << bit << ": " << result.status();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotBitFlipTest,
                         ::testing::Range(uint64_t{0}, uint64_t{256}));

// --- v1 compatibility ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// A v1 snapshot (no framing, no checksums, no trailer), byte-for-byte what
// the pre-v2 writer produced: one function node named "main", one dead
// node, one edge.
std::string HandWrittenV1Blob(size_t* string_ref_offset = nullptr) {
  std::string blob = "FRAPPEDB";
  PutU32(&blob, 1);  // version
  PutU32(&blob, 6);  // section count
  PutU32(&blob, 1);  // schema
  PutU32(&blob, 2);  // node types
  PutStr(&blob, "function");
  PutStr(&blob, "file");
  PutU32(&blob, 1);  // edge types
  PutStr(&blob, "calls");
  PutU32(&blob, 1);  // keys
  PutStr(&blob, "short_name");
  PutU32(&blob, 2);  // strings
  PutU32(&blob, 1);
  PutStr(&blob, "main");
  PutU32(&blob, 3);  // nodes
  PutU32(&blob, 3);
  PutU16(&blob, 0);       // function node
  PutU16(&blob, 0xFFFF);  // tombstone
  PutU16(&blob, 1);       // file node
  PutU32(&blob, 4);  // node props (one map per live node)
  PutU32(&blob, 1);
  PutU16(&blob, 0);  // short_name
  PutU8(&blob, 4);   // ValueType::kString
  if (string_ref_offset != nullptr) *string_ref_offset = blob.size();
  PutU64(&blob, 0);  // string ref 0
  PutU32(&blob, 0);  // second live node: empty map
  PutU32(&blob, 5);  // edges
  PutU32(&blob, 1);
  PutU16(&blob, 0);  // calls
  PutU32(&blob, 0);
  PutU32(&blob, 2);
  PutU32(&blob, 6);  // edge props
  PutU32(&blob, 0);  // empty map
  return blob;
}

TEST(SnapshotV1CompatTest, V1BlobStillLoads) {
  auto loaded = DeserializeSnapshot(HandWrittenV1Blob());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->format_version, 1u);
  const GraphStore& store = *loaded->store;
  EXPECT_EQ(store.NodeCount(), 2u);
  EXPECT_EQ(store.EdgeCount(), 1u);
  EXPECT_FALSE(store.NodeExists(1));  // tombstone preserved
  EXPECT_EQ(store.GetNodeString(0, store.keys().Find("short_name")), "main");
  Edge e = store.GetEdge(0);
  EXPECT_EQ(e.src, 0u);
  EXPECT_EQ(e.dst, 2u);
}

TEST(SnapshotV1CompatTest, TruncatedV1IsCorruption) {
  std::string blob = HandWrittenV1Blob();
  for (size_t frac = 1; frac < 8; ++frac) {
    size_t cut = blob.size() * frac / 8;
    auto result = DeserializeSnapshot(std::string_view(blob).substr(0, cut));
    ASSERT_FALSE(result.ok()) << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption) << cut;
  }
}

TEST(SnapshotV1CompatTest, V1DanglingStringRefIsCorruption) {
  // v1 had no checksums; the strict property validation must still catch a
  // string ref pointing past the pool.
  size_t ref_pos = 0;
  std::string blob = HandWrittenV1Blob(&ref_pos);
  uint64_t bogus = 999;
  blob.replace(ref_pos, sizeof(bogus),
               reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  auto result = DeserializeSnapshot(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("string ref"), std::string::npos);
}

// Property test: random graphs round-trip exactly.
class SnapshotRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRandomTest, RandomGraphRoundTrips) {
  frappe::Rng rng(GetParam());
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  KeyId k1 = store.InternKey("k1");
  KeyId k2 = store.InternKey("k2");
  const size_t kNodes = 30;
  for (size_t i = 0; i < kNodes; ++i) {
    NodeId id = store.AddNode(nt);
    if (rng.Bernoulli(0.5)) {
      store.SetNodeProperty(id, k1, Value::Int(rng.UniformRange(-100, 100)));
    }
    if (rng.Bernoulli(0.3)) {
      store.SetNodeProperty(
          id, k2, store.StringValue("s" + std::to_string(rng.Uniform(10))));
    }
  }
  for (size_t i = 0; i < kNodes * 2; ++i) {
    EdgeId e = store.AddEdge(static_cast<NodeId>(rng.Uniform(kNodes)),
                             static_cast<NodeId>(rng.Uniform(kNodes)), et);
    if (rng.Bernoulli(0.5)) {
      store.SetEdgeProperty(e, k1, Value::Double(rng.NextDouble()));
    }
  }
  // Random deletions create tombstones.
  for (size_t i = 0; i < 5; ++i) {
    store.RemoveNode(static_cast<NodeId>(rng.Uniform(kNodes)));
  }

  std::string blob;
  ASSERT_TRUE(SerializeSnapshot(store, &blob).ok());
  auto loaded = DeserializeSnapshot(blob);
  ASSERT_TRUE(loaded.ok());
  const GraphStore& restored = *loaded->store;

  ASSERT_EQ(restored.NodeIdUpperBound(), store.NodeIdUpperBound());
  ASSERT_EQ(restored.EdgeIdUpperBound(), store.EdgeIdUpperBound());
  for (NodeId id = 0; id < store.NodeIdUpperBound(); ++id) {
    ASSERT_EQ(restored.NodeExists(id), store.NodeExists(id));
    if (!store.NodeExists(id)) continue;
    EXPECT_EQ(restored.NodeType(id), store.NodeType(id));
    EXPECT_TRUE(restored.NodeProperties(id) == store.NodeProperties(id));
  }
  for (EdgeId id = 0; id < store.EdgeIdUpperBound(); ++id) {
    ASSERT_EQ(restored.EdgeExists(id), store.EdgeExists(id));
    if (!store.EdgeExists(id)) continue;
    Edge a = restored.GetEdge(id), b = store.GetEdge(id);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.type, b.type);
    EXPECT_TRUE(restored.EdgeProperties(id) == store.EdgeProperties(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRandomTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace frappe::graph
