#include "graph/graph_store.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace frappe::graph {
namespace {

class GraphStoreTest : public ::testing::Test {
 protected:
  GraphStore store_;
};

TEST_F(GraphStoreTest, EmptyStore) {
  EXPECT_EQ(store_.NodeCount(), 0u);
  EXPECT_EQ(store_.EdgeCount(), 0u);
  EXPECT_FALSE(store_.NodeExists(0));
  EXPECT_FALSE(store_.EdgeExists(0));
}

TEST_F(GraphStoreTest, AddNodesAssignsDenseIds) {
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("file");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store_.NodeCount(), 2u);
  EXPECT_EQ(store_.NodeTypeName(a), "function");
  EXPECT_EQ(store_.NodeTypeName(b), "file");
}

TEST_F(GraphStoreTest, AddEdgeLinksAdjacency) {
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("function");
  EdgeId e = store_.AddEdge(a, b, "calls");
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(store_.EdgeCount(), 1u);
  Edge edge = store_.GetEdge(e);
  EXPECT_EQ(edge.src, a);
  EXPECT_EQ(edge.dst, b);
  EXPECT_EQ(store_.EdgeTypeName(e), "calls");
  EXPECT_EQ(store_.OutDegree(a), 1u);
  EXPECT_EQ(store_.InDegree(b), 1u);
  EXPECT_EQ(store_.OutDegree(b), 0u);
}

TEST_F(GraphStoreTest, AddEdgeToMissingNodeFails) {
  NodeId a = store_.AddNode("function");
  EXPECT_EQ(store_.AddEdge(a, 99, "calls"), kInvalidEdge);
  EXPECT_EQ(store_.AddEdge(99, a, "calls"), kInvalidEdge);
  EXPECT_EQ(store_.EdgeCount(), 0u);
}

TEST_F(GraphStoreTest, NodePropertiesRoundTrip) {
  NodeId a = store_.AddNode("function");
  store_.SetNodeProperty(a, "short_name", store_.StringValue("main"));
  store_.SetNodeProperty(a, "value", Value::Int(7));
  EXPECT_EQ(store_.GetNodeString(a, store_.InternKey("short_name")), "main");
  EXPECT_EQ(store_.GetNodeProperty(a, store_.InternKey("value")).AsInt(), 7);
  EXPECT_TRUE(
      store_.GetNodeProperty(a, store_.InternKey("absent")).is_null());
}

TEST_F(GraphStoreTest, EdgePropertiesRoundTrip) {
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("function");
  EdgeId e = store_.AddEdge(a, b, "calls");
  store_.SetEdgeProperty(e, "use_start_line", Value::Int(236));
  EXPECT_EQ(
      store_.GetEdgeProperty(e, store_.InternKey("use_start_line")).AsInt(),
      236);
}

TEST_F(GraphStoreTest, ForEachEdgeDirections) {
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  NodeId c = store_.AddNode("n");
  store_.AddEdge(a, b, "e");
  store_.AddEdge(c, a, "e");

  std::vector<NodeId> out_neighbors;
  store_.ForEachEdge(a, Direction::kOut, [&](EdgeId, NodeId n) {
    out_neighbors.push_back(n);
    return true;
  });
  EXPECT_EQ(out_neighbors, std::vector<NodeId>{b});

  std::vector<NodeId> in_neighbors;
  store_.ForEachEdge(a, Direction::kIn, [&](EdgeId, NodeId n) {
    in_neighbors.push_back(n);
    return true;
  });
  EXPECT_EQ(in_neighbors, std::vector<NodeId>{c});

  std::set<NodeId> both;
  store_.ForEachEdge(a, Direction::kBoth, [&](EdgeId, NodeId n) {
    both.insert(n);
    return true;
  });
  EXPECT_EQ(both, (std::set<NodeId>{b, c}));
}

TEST_F(GraphStoreTest, ForEachEdgeEarlyStop) {
  NodeId a = store_.AddNode("n");
  for (int i = 0; i < 5; ++i) {
    store_.AddEdge(a, store_.AddNode("n"), "e");
  }
  int visited = 0;
  store_.ForEachEdge(a, Direction::kOut, [&](EdgeId, NodeId) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(visited, 2);
}

TEST_F(GraphStoreTest, SelfLoopReportedOnceInBothDirection) {
  NodeId a = store_.AddNode("n");
  store_.AddEdge(a, a, "e");
  int count = 0;
  store_.ForEachEdge(a, Direction::kBoth, [&](EdgeId, NodeId n) {
    EXPECT_EQ(n, a);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(store_.Degree(a), 2u);  // self-loop counts in and out
}

TEST_F(GraphStoreTest, RemoveEdgeDetachesAdjacency) {
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  EdgeId e1 = store_.AddEdge(a, b, "e");
  EdgeId e2 = store_.AddEdge(a, b, "e");
  store_.RemoveEdge(e1);
  EXPECT_FALSE(store_.EdgeExists(e1));
  EXPECT_TRUE(store_.EdgeExists(e2));
  EXPECT_EQ(store_.EdgeCount(), 1u);
  EXPECT_EQ(store_.OutDegree(a), 1u);
  EXPECT_EQ(store_.InDegree(b), 1u);
  // Removing again is a no-op.
  store_.RemoveEdge(e1);
  EXPECT_EQ(store_.EdgeCount(), 1u);
}

TEST_F(GraphStoreTest, RemoveNodeCascadesToEdges) {
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  NodeId c = store_.AddNode("n");
  store_.AddEdge(a, b, "e");
  store_.AddEdge(b, c, "e");
  store_.AddEdge(c, a, "e");
  store_.RemoveNode(b);
  EXPECT_FALSE(store_.NodeExists(b));
  EXPECT_EQ(store_.NodeCount(), 2u);
  EXPECT_EQ(store_.EdgeCount(), 1u);  // only c->a survives
  EXPECT_EQ(store_.OutDegree(a), 0u);
  EXPECT_EQ(store_.InDegree(a), 1u);
}

TEST_F(GraphStoreTest, IdsNotReusedAfterRemoval) {
  NodeId a = store_.AddNode("n");
  store_.RemoveNode(a);
  NodeId b = store_.AddNode("n");
  EXPECT_NE(a, b);
  EXPECT_FALSE(store_.NodeExists(a));
  EXPECT_TRUE(store_.NodeExists(b));
}

TEST_F(GraphStoreTest, DeadRecordsPreserveIdSpace) {
  NodeId dead = store_.AddDeadNode();
  NodeId live = store_.AddNode("n");
  EXPECT_FALSE(store_.NodeExists(dead));
  EXPECT_TRUE(store_.NodeExists(live));
  EXPECT_EQ(store_.NodeCount(), 1u);
  EXPECT_EQ(store_.NodeIdUpperBound(), 2u);

  EdgeId dead_edge = store_.AddDeadEdge();
  EXPECT_FALSE(store_.EdgeExists(dead_edge));
  EXPECT_EQ(store_.EdgeCount(), 0u);
}

TEST_F(GraphStoreTest, ForEachNodeSkipsDead) {
  store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  store_.AddNode("n");
  store_.RemoveNode(b);
  std::vector<NodeId> seen;
  store_.ForEachNode([&](NodeId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<NodeId>{0, 2}));
}

TEST_F(GraphStoreTest, EstimateMemoryGrowsWithContent) {
  auto before = store_.EstimateMemory();
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  EdgeId e = store_.AddEdge(a, b, "calls");
  store_.SetEdgeProperty(e, "k", Value::Int(1));
  store_.SetNodeProperty(a, "name", store_.StringValue("something_long"));
  auto after = store_.EstimateMemory();
  EXPECT_GT(after.nodes, before.nodes);
  EXPECT_GT(after.relationships, before.relationships);
  EXPECT_GT(after.properties, before.properties);
  EXPECT_EQ(after.total(),
            after.nodes + after.relationships + after.properties);
}

// Property-style sweep: after N random mutations, invariants hold.
class GraphStoreRandomOpsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphStoreRandomOpsTest, InvariantsHoldUnderRandomMutation) {
  frappe::Rng rng(GetParam());
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  std::vector<NodeId> live_nodes;
  std::vector<EdgeId> live_edges;

  for (int step = 0; step < 500; ++step) {
    uint64_t op = rng.Uniform(10);
    if (op < 4 || live_nodes.empty()) {
      live_nodes.push_back(store.AddNode(nt));
    } else if (op < 8 && live_nodes.size() >= 2) {
      NodeId src = live_nodes[rng.Uniform(live_nodes.size())];
      NodeId dst = live_nodes[rng.Uniform(live_nodes.size())];
      EdgeId e = store.AddEdge(src, dst, et);
      ASSERT_NE(e, kInvalidEdge);
      live_edges.push_back(e);
    } else if (op == 8 && !live_edges.empty()) {
      size_t idx = rng.Uniform(live_edges.size());
      store.RemoveEdge(live_edges[idx]);
      live_edges.erase(live_edges.begin() + static_cast<long>(idx));
    } else if (!live_nodes.empty()) {
      size_t idx = rng.Uniform(live_nodes.size());
      NodeId victim = live_nodes[idx];
      store.RemoveNode(victim);
      live_nodes.erase(live_nodes.begin() + static_cast<long>(idx));
      // Drop edges that were cascade-deleted.
      std::erase_if(live_edges,
                    [&](EdgeId e) { return !store.EdgeExists(e); });
    }
  }

  // Invariant 1: live counts match our bookkeeping.
  EXPECT_EQ(store.NodeCount(), live_nodes.size());
  EXPECT_EQ(store.EdgeCount(), live_edges.size());

  // Invariant 2: every live edge endpoints are live, and the edge is
  // present in both endpoint adjacency lists.
  size_t adjacency_total = 0;
  for (EdgeId e : live_edges) {
    Edge edge = store.GetEdge(e);
    EXPECT_TRUE(store.NodeExists(edge.src));
    EXPECT_TRUE(store.NodeExists(edge.dst));
    bool in_out = false;
    store.ForEachEdge(edge.src, Direction::kOut, [&](EdgeId id, NodeId) {
      if (id == e) in_out = true;
      return true;
    });
    EXPECT_TRUE(in_out);
  }

  // Invariant 3: sum of out-degrees equals the live edge count.
  store.ForEachNode([&](NodeId id) { adjacency_total += store.OutDegree(id); });
  EXPECT_EQ(adjacency_total, live_edges.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphStoreRandomOpsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace frappe::graph
