#include "graph/property_map.h"

#include <gtest/gtest.h>

namespace frappe::graph {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  Value s = Value::String(StringRef{7});
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(s.AsString().id, 7u);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(5) == Value::Double(5.0));
  EXPECT_TRUE(Value::Double(5.0) == Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Double(5.5));
}

TEST(ValueTest, DistinctTypesNeverEqual) {
  EXPECT_FALSE(Value::Bool(true) == Value::Int(1));
  EXPECT_FALSE(Value::String(StringRef{1}) == Value::Int(1));
  EXPECT_FALSE(Value::Null() == Value::Int(0));
  EXPECT_TRUE(Value::Null() == Value::Null());
}

TEST(ValueTest, RawRoundTrip) {
  for (Value v : {Value::Null(), Value::Bool(true), Value::Int(-123456789),
                  Value::Double(3.14159), Value::String(StringRef{42})}) {
    Value back = Value::FromRaw(v.type(), v.RawPayload());
    EXPECT_TRUE(v == back);
  }
}

TEST(ValueTest, ToStringRendersEachType) {
  StringPool pool;
  StringRef hello = pool.Intern("hello");
  EXPECT_EQ(Value::Null().ToString(pool), "null");
  EXPECT_EQ(Value::Bool(true).ToString(pool), "true");
  EXPECT_EQ(Value::Bool(false).ToString(pool), "false");
  EXPECT_EQ(Value::Int(42).ToString(pool), "42");
  EXPECT_EQ(Value::String(hello).ToString(pool), "'hello'");
}

TEST(PropertyMapTest, SetGetHas) {
  PropertyMap map;
  EXPECT_TRUE(map.empty());
  map.Set(3, Value::Int(30));
  map.Set(1, Value::Int(10));
  map.Set(2, Value::Int(20));
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.Get(1).AsInt(), 10);
  EXPECT_EQ(map.Get(2).AsInt(), 20);
  EXPECT_EQ(map.Get(3).AsInt(), 30);
  EXPECT_TRUE(map.Has(2));
  EXPECT_FALSE(map.Has(4));
  EXPECT_TRUE(map.Get(4).is_null());
}

TEST(PropertyMapTest, EntriesStaySortedByKey) {
  PropertyMap map;
  map.Set(9, Value::Int(9));
  map.Set(1, Value::Int(1));
  map.Set(5, Value::Int(5));
  KeyId prev = 0;
  for (const auto& e : map.entries()) {
    EXPECT_GE(e.key, prev);
    prev = e.key;
  }
}

TEST(PropertyMapTest, OverwriteReplacesValue) {
  PropertyMap map;
  map.Set(1, Value::Int(10));
  map.Set(1, Value::String(StringRef{3}));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Get(1).type(), ValueType::kString);
}

TEST(PropertyMapTest, SettingNullErases) {
  PropertyMap map;
  map.Set(1, Value::Int(10));
  map.Set(1, Value::Null());
  EXPECT_FALSE(map.Has(1));
  EXPECT_TRUE(map.empty());
  // Erasing an absent key is a no-op.
  map.Erase(99);
  EXPECT_TRUE(map.empty());
}

TEST(PropertyMapTest, EqualityIsValueBased) {
  PropertyMap a, b;
  a.Set(1, Value::Int(1));
  a.Set(2, Value::Bool(true));
  b.Set(2, Value::Bool(true));
  b.Set(1, Value::Int(1));
  EXPECT_TRUE(a == b);
  b.Set(3, Value::Int(3));
  EXPECT_FALSE(a == b);
}

TEST(PropertyMapTest, ByteSizeTracksEntries) {
  PropertyMap map;
  EXPECT_EQ(map.byte_size(), 0u);
  map.Set(1, Value::Int(1));
  map.Set(2, Value::Int(2));
  EXPECT_EQ(map.byte_size(), 2 * sizeof(PropertyMap::Entry));
}

}  // namespace
}  // namespace frappe::graph
