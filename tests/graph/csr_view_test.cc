#include "graph/csr_view.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/graph_store.h"
#include "graph/stats.h"
#include "graph/traversal.h"

namespace frappe::graph {
namespace {

TEST(CsrViewTest, EmptyGraph) {
  GraphStore store;
  CsrView view = CsrView::Build(store);
  EXPECT_EQ(view.NodeCount(), 0u);
  EXPECT_EQ(view.EdgeCount(), 0u);
}

TEST(CsrViewTest, AdjacencyMatchesStore) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  NodeId b = store.AddNode("n");
  NodeId c = store.AddNode("n");
  EdgeId ab = store.AddEdge(a, b, "e");
  EdgeId ac = store.AddEdge(a, c, "e");
  EdgeId cb = store.AddEdge(c, b, "e");
  CsrView view = CsrView::Build(store);

  EXPECT_EQ(view.OutDegree(a), 2u);
  EXPECT_EQ(view.InDegree(b), 2u);
  std::set<EdgeId> out_edges;
  view.ForEachEdge(a, Direction::kOut, [&](EdgeId e, NodeId) {
    out_edges.insert(e);
    return true;
  });
  EXPECT_EQ(out_edges, (std::set<EdgeId>{ab, ac}));
  std::set<EdgeId> in_edges;
  view.ForEachEdge(b, Direction::kIn, [&](EdgeId e, NodeId) {
    in_edges.insert(e);
    return true;
  });
  EXPECT_EQ(in_edges, (std::set<EdgeId>{ab, cb}));
  Edge edge = view.GetEdge(cb);
  EXPECT_EQ(edge.src, c);
  EXPECT_EQ(edge.dst, b);
}

TEST(CsrViewTest, SelfLoopReportedOnceInBoth) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  store.AddEdge(a, a, "e");
  CsrView view = CsrView::Build(store);
  int count = 0;
  view.ForEachEdge(a, Direction::kBoth, [&](EdgeId, NodeId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(view.Degree(a), 2u);
}

TEST(CsrViewTest, DeadEdgesExcluded) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  NodeId b = store.AddNode("n");
  EdgeId e1 = store.AddEdge(a, b, "e");
  store.AddEdge(a, b, "e");
  store.RemoveEdge(e1);
  CsrView view = CsrView::Build(store);
  EXPECT_EQ(view.OutDegree(a), 1u);
  EXPECT_FALSE(view.EdgeExists(e1));
}

TEST(CsrViewTest, PropertiesDelegateToBase) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  NodeId b = store.AddNode("n");
  EdgeId e = store.AddEdge(a, b, "e");
  store.SetNodeProperty(a, "short_name", store.StringValue("alpha"));
  store.SetEdgeProperty(e, "line", Value::Int(7));
  CsrView view = CsrView::Build(store);
  EXPECT_EQ(view.GetNodeString(a, store.keys().Find("short_name")), "alpha");
  EXPECT_EQ(view.GetEdgeProperty(e, store.keys().Find("line")).AsInt(), 7);
}

TEST(CsrViewTest, PackedAccessorsMatchCallbacks) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  for (int i = 0; i < 5; ++i) store.AddEdge(a, store.AddNode("n"), "e");
  CsrView view = CsrView::Build(store);
  CsrView::Neighbors out = view.Out(a);
  EXPECT_EQ(out.count, 5u);
  size_t i = 0;
  view.ForEachEdge(a, Direction::kOut, [&](EdgeId e, NodeId n) {
    EXPECT_EQ(out.begin_edges[i], e);
    EXPECT_EQ(out.begin_nodes[i], n);
    ++i;
    return true;
  });
}

TEST(CsrViewTest, ReverseCsrBuildsLazily) {
  GraphStore store;
  NodeId a = store.AddNode("n");
  NodeId b = store.AddNode("n");
  NodeId c = store.AddNode("n");
  store.AddEdge(a, b, "e");
  store.AddEdge(c, b, "e");
  CsrView view = CsrView::Build(store);

  // Forward-only use keeps the transpose unbuilt and free.
  EXPECT_FALSE(view.ReverseBuilt());
  EXPECT_EQ(view.ReverseByteSize(), 0u);
  EXPECT_EQ(view.ReverseBuildMs(), 0.0);
  EXPECT_GT(view.ForwardByteSize(), 0u);
  EXPECT_EQ(view.OutDegree(a), 1u);
  EXPECT_FALSE(view.ReverseBuilt());

  // First in-direction access materializes it.
  EXPECT_EQ(view.InDegree(b), 2u);
  EXPECT_TRUE(view.ReverseBuilt());
  EXPECT_GT(view.ReverseByteSize(), 0u);
  EXPECT_EQ(view.ByteSize(),
            view.ForwardByteSize() + view.ReverseByteSize());
}

TEST(CsrViewTest, ReverseBucketsSortedBySourceWithMatchingTypes) {
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId e1 = store.InternEdgeType("e1");
  TypeId e2 = store.InternEdgeType("e2");
  const NodeId kTarget = 0;
  store.AddNode(nt);  // kTarget
  // Edges into kTarget inserted from high source ids first: the transpose
  // must still list sources ascending (built in forward-CSR order).
  std::vector<NodeId> sources;
  for (int i = 0; i < 20; ++i) sources.push_back(store.AddNode(nt));
  for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
    store.AddEdge(*it, kTarget, (*it % 2) == 0 ? e1 : e2);
  }
  CsrView view = CsrView::Build(store);
  CsrView::Neighbors in = view.In(kTarget);
  ASSERT_EQ(in.count, sources.size());
  for (size_t i = 0; i < in.count; ++i) {
    if (i > 0) EXPECT_LT(in.begin_nodes[i - 1], in.begin_nodes[i]);
    // The packed type lane is the edge's type, in both directions.
    EXPECT_EQ(in.begin_types[i], view.GetEdge(in.begin_edges[i]).type);
    EXPECT_EQ(view.GetEdge(in.begin_edges[i]).src, in.begin_nodes[i]);
  }
  CsrView::Neighbors out = view.Out(sources[0]);
  ASSERT_EQ(out.count, 1u);
  EXPECT_EQ(out.begin_types[0], view.GetEdge(out.begin_edges[0]).type);
}

TEST(CsrViewTest, EdgeTypeCountsMatchLiveEdges) {
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId e1 = store.InternEdgeType("e1");
  TypeId e2 = store.InternEdgeType("e2");
  NodeId a = store.AddNode(nt);
  NodeId b = store.AddNode(nt);
  store.AddEdge(a, b, e1);
  store.AddEdge(a, b, e1);
  EdgeId dead = store.AddEdge(a, b, e2);
  store.AddEdge(b, a, e2);
  store.RemoveEdge(dead);
  CsrView view = CsrView::Build(store);
  EXPECT_EQ(view.EdgeTypeCount(e1), 2u);
  EXPECT_EQ(view.EdgeTypeCount(e2), 1u);  // dead edge excluded
  EXPECT_EQ(view.EdgeTypeCount(static_cast<TypeId>(999)), 0u);
  EXPECT_EQ(view.LiveEdgeCount(), 3u);
}

// Property sweep: traversal over a CSR view agrees with the store.
class CsrRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrRandomTest, ClosureAndMetricsAgreeWithStore) {
  frappe::Rng rng(GetParam());
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  const size_t kNodes = 60;
  for (size_t i = 0; i < kNodes; ++i) store.AddNode(nt);
  for (size_t i = 0; i < kNodes * 3; ++i) {
    store.AddEdge(static_cast<NodeId>(rng.Uniform(kNodes)),
                  static_cast<NodeId>(rng.Uniform(kNodes)), et);
  }
  // Some deletions to create holes.
  for (int i = 0; i < 6; ++i) {
    store.RemoveEdge(static_cast<EdgeId>(rng.Uniform(kNodes * 3)));
  }
  CsrView view = CsrView::Build(store);

  auto store_metrics = ComputeMetrics(store);
  auto csr_metrics = ComputeMetrics(view);
  EXPECT_EQ(store_metrics.node_count, csr_metrics.node_count);
  EXPECT_EQ(store_metrics.edge_count, csr_metrics.edge_count);

  NodeId seed = static_cast<NodeId>(rng.Uniform(kNodes));
  for (Direction dir : {Direction::kOut, Direction::kIn}) {
    auto a = TransitiveClosure(store, seed, EdgeFilter::Of({et}, dir));
    auto b = TransitiveClosure(view, seed, EdgeFilter::Of({et}, dir));
    EXPECT_EQ(a, b);
  }
  for (NodeId n = 0; n < kNodes; ++n) {
    EXPECT_EQ(store.OutDegree(n), view.OutDegree(n)) << n;
    EXPECT_EQ(store.InDegree(n), view.InDegree(n)) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandomTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace frappe::graph
