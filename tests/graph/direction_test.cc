// Property-style equivalence suite for the direction-optimizing kernels:
// push-only, pull-only and the auto (hybrid) policy must produce identical
// visited sets and depths on the same graph, for every thread count and
// depth cutoff. The push kernel is the pre-direction-optimizing baseline,
// so these tests pin the bottom-up scan and the heuristic switching to the
// established semantics. Runs under the `parallel` ctest label (TSan lane).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/analytics.h"
#include "graph/csr_view.h"
#include "graph/graph_store.h"
#include "graph/traversal.h"

namespace frappe::graph::analytics {
namespace {

constexpr DirectionMode kModes[] = {
    DirectionMode::kPushOnly, DirectionMode::kPullOnly, DirectionMode::kAuto};

const char* ModeName(DirectionMode mode) {
  switch (mode) {
    case DirectionMode::kPushOnly:
      return "push-only";
    case DirectionMode::kPullOnly:
      return "pull-only";
    case DirectionMode::kAuto:
      return "auto";
  }
  return "?";
}

struct RandomGraph {
  GraphStore store;
  TypeId node_type, edge_a, edge_b;
  std::vector<NodeId> nodes;
};

// Mixed-type random graph; ~1/4 of the edges are type b, so typed filters
// exercise the selectivity term of the direction cost model.
RandomGraph MakeRandomGraph(uint64_t seed, size_t node_count,
                            size_t edges_per_node) {
  RandomGraph g;
  frappe::Rng rng(seed);
  g.node_type = g.store.InternNodeType("n");
  g.edge_a = g.store.InternEdgeType("a");
  g.edge_b = g.store.InternEdgeType("b");
  for (size_t i = 0; i < node_count; ++i) {
    g.nodes.push_back(g.store.AddNode(g.node_type));
  }
  for (size_t i = 0; i < node_count * edges_per_node; ++i) {
    NodeId src = g.nodes[rng.Uniform(node_count)];
    NodeId dst = g.nodes[rng.Uniform(node_count)];
    g.store.AddEdge(src, dst, i % 4 == 0 ? g.edge_b : g.edge_a);
  }
  return g;
}

class DirectionEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirectionEquivalenceTest, ClosureIdenticalAcrossModesAndThreads) {
  RandomGraph g = MakeRandomGraph(GetParam(), /*node_count=*/300,
                                  /*edges_per_node=*/5);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  frappe::Rng rng(GetParam() ^ 0xd1c);
  for (Direction dir : {Direction::kOut, Direction::kIn, Direction::kBoth}) {
    for (const EdgeFilter& filter :
         {EdgeFilter::Of({g.edge_a}, dir), EdgeFilter::Any(dir)}) {
      std::vector<NodeId> seeds{g.nodes[rng.Uniform(g.nodes.size())],
                                g.nodes[rng.Uniform(g.nodes.size())]};
      std::vector<NodeId> expected = TransitiveClosure(g.store, seeds, filter);
      for (DirectionMode mode : kModes) {
        for (size_t threads : {1u, 2u, 4u}) {
          Options options;
          options.mode = mode;
          options.threads = threads;
          options.pool = &pool;
          FrontierEngine engine;
          Metrics metrics;
          auto got = engine.Closure(csr, seeds, filter, options, &metrics);
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_EQ(*got, expected)
              << "mode=" << ModeName(mode) << " threads=" << threads
              << " dir=" << static_cast<int>(dir);
          // The forced modes must actually run in their direction.
          for (uint8_t pulled : metrics.level_pull) {
            if (mode == DirectionMode::kPushOnly) EXPECT_EQ(pulled, 0);
            if (mode == DirectionMode::kPullOnly) EXPECT_EQ(pulled, 1);
          }
        }
      }
    }
  }
}

TEST_P(DirectionEquivalenceTest, DepthCutoffIdenticalAcrossModes) {
  RandomGraph g = MakeRandomGraph(GetParam() + 101, 250, 4);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Any();
  for (size_t max_depth : {1u, 2u, 4u}) {
    std::vector<NodeId> expected =
        TransitiveClosure(g.store, g.nodes[0], filter, max_depth);
    for (DirectionMode mode : kModes) {
      for (size_t threads : {1u, 2u, 4u}) {
        Options options;
        options.mode = mode;
        options.threads = threads;
        options.pool = &pool;
        options.max_depth = max_depth;
        auto got = ParallelClosure(csr, {g.nodes[0]}, filter, options);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_EQ(*got, expected) << "mode=" << ModeName(mode)
                                  << " depth=" << max_depth
                                  << " threads=" << threads;
      }
    }
  }
}

TEST_P(DirectionEquivalenceTest, BfsDepthsIdenticalAcrossModes) {
  RandomGraph g = MakeRandomGraph(GetParam() + 211, 250, 4);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Of({g.edge_a, g.edge_b});
  std::vector<NodeId> seeds{g.nodes[1], g.nodes[2]};
  Options push;
  push.mode = DirectionMode::kPushOnly;
  auto baseline = ParallelBfsDepths(csr, seeds, filter, push);
  ASSERT_TRUE(baseline.ok());
  for (DirectionMode mode : {DirectionMode::kPullOnly, DirectionMode::kAuto}) {
    for (size_t threads : {1u, 2u, 4u}) {
      Options options;
      options.mode = mode;
      options.threads = threads;
      options.pool = &pool;
      auto got = ParallelBfsDepths(csr, seeds, filter, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, *baseline)
          << "mode=" << ModeName(mode) << " threads=" << threads;
    }
  }
}

TEST_P(DirectionEquivalenceTest, ReachableIdenticalAcrossModes) {
  RandomGraph g = MakeRandomGraph(GetParam() + 307, 220, 4);
  CsrView csr = CsrView::Build(g.store);
  ThreadPool pool(7);
  EdgeFilter filter = EdgeFilter::Of({g.edge_b}, Direction::kIn);
  std::vector<NodeId> seeds{g.nodes[3]};
  Options push;
  push.mode = DirectionMode::kPushOnly;
  auto baseline = ParallelReachable(csr, seeds, filter, push);
  ASSERT_TRUE(baseline.ok());
  for (DirectionMode mode : {DirectionMode::kPullOnly, DirectionMode::kAuto}) {
    for (size_t threads : {1u, 2u, 4u}) {
      Options options;
      options.mode = mode;
      options.threads = threads;
      options.pool = &pool;
      auto got = ParallelReachable(csr, seeds, filter, options);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, *baseline)
          << "mode=" << ModeName(mode) << " threads=" << threads;
    }
  }
}

// A graph engineered to flip direction mid-run: a long sparse chain into a
// dense clique. The chain levels are push, the clique level should go pull
// under the auto policy; whatever it picks, results must match push-only.
TEST(DirectionSwitchTest, ChainIntoCliqueMatchesPushOnly) {
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  const size_t kChain = 8, kClique = 120;
  std::vector<NodeId> chain, clique;
  for (size_t i = 0; i < kChain; ++i) chain.push_back(store.AddNode(nt));
  for (size_t i = 0; i < kClique; ++i) clique.push_back(store.AddNode(nt));
  for (size_t i = 1; i < kChain; ++i) store.AddEdge(chain[i - 1], chain[i], et);
  for (NodeId c : clique) store.AddEdge(chain.back(), c, et);
  for (NodeId a : clique) {
    for (size_t j = 0; j < 8; ++j) {
      store.AddEdge(a, clique[(a * 13 + j * 7) % kClique], et);
    }
  }
  CsrView csr = CsrView::Build(store);
  EdgeFilter filter = EdgeFilter::Of({et});

  Options push;
  push.mode = DirectionMode::kPushOnly;
  FrontierEngine engine;
  auto expected = engine.Closure(csr, {chain[0]}, filter, push);
  ASSERT_TRUE(expected.ok());

  Options hybrid;
  hybrid.mode = DirectionMode::kAuto;
  Metrics metrics;
  auto got = engine.Closure(csr, {chain[0]}, filter, hybrid, &metrics);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *expected);
  ASSERT_EQ(metrics.level_pull.size(), metrics.levels);
  // The early chain levels (frontier of one node) must stay push — pull
  // would scan the whole universe per level.
  ASSERT_GE(metrics.levels, kChain - 1);
  EXPECT_EQ(metrics.level_pull[0], 0);
  EXPECT_EQ(metrics.level_pull[1], 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionEquivalenceTest,
                         ::testing::Values(7, 91, 4242, 131071));

}  // namespace
}  // namespace frappe::graph::analytics
