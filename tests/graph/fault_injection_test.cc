// Durability proof for the snapshot save path: for every injected failure
// point (open, short write, ENOSPC, fsync failure, crash before rename,
// rename failure) the previously saved snapshot is untouched — byte
// identical — and still loads. The directory-fsync site fires after the
// atomic rename, so there the target must be the complete NEW file.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/fault_injector.h"
#include "common/file_io.h"
#include "graph/snapshot.h"
#include "graph/snapshot_manager.h"

namespace frappe::graph {
namespace {

using common::FaultInjector;

GraphStore SmallGraph(int salt) {
  GraphStore store;
  NodeId a = store.AddNode("function");
  store.SetNodeProperty(a, "short_name",
                        store.StringValue("f" + std::to_string(salt)));
  NodeId b = store.AddNode("file");
  store.AddEdge(a, b, "file_contains");
  return store;
}

std::string Slurp(const std::string& path) {
  std::string data;
  EXPECT_TRUE(common::ReadFile(path, &data).ok()) << path;
  return data;
}

bool Exists(const std::string& path) {
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return true;
  }
  return false;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    path_ = ::testing::TempDir() + "/frappe_fault_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    std::remove(path_.c_str());
    std::remove(common::TempPathFor(path_).c_str());
  }
  void TearDown() override {
    FaultInjector::Global().Reset();
    std::remove(path_.c_str());
    std::remove(common::TempPathFor(path_).c_str());
    for (int g = 1; g <= 4; ++g) {
      std::remove((path_ + "." + std::to_string(g)).c_str());
    }
  }

  // Saves a first snapshot, records its bytes, then attempts a second save
  // with `site` armed. Returns the status of the failed save.
  Status SaveWithFault(const char* site) {
    GraphStore old_graph = SmallGraph(1);
    EXPECT_TRUE(SaveSnapshot(old_graph, path_).ok());
    old_bytes_ = Slurp(path_);

    FaultInjector::Global().Arm(site);
    GraphStore new_graph = SmallGraph(2);
    auto result = SaveSnapshot(new_graph, path_);
    FaultInjector::Global().Reset();
    EXPECT_FALSE(result.ok()) << site;
    return result.ok() ? Status::OK() : result.status();
  }

  // The old-or-new invariant, old flavor: target bytes untouched and the
  // snapshot still loads.
  void ExpectOldSnapshotIntact() {
    EXPECT_EQ(Slurp(path_), old_bytes_) << "previous snapshot was torn";
    auto loaded = LoadSnapshot(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->store->NodeCount(), 2u);
  }

  std::string path_;
  std::string old_bytes_;
};

TEST_F(FaultInjectionTest, OpenFailurePreservesOldSnapshot) {
  Status s = SaveWithFault("snapshot.open");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  ExpectOldSnapshotIntact();
  EXPECT_FALSE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, ShortWritePreservesOldSnapshot) {
  Status s = SaveWithFault("snapshot.write_short");
  EXPECT_NE(s.message().find("short write"), std::string::npos);
  ExpectOldSnapshotIntact();
  // The torn temp file must not survive a failed save.
  EXPECT_FALSE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, EnospcPreservesOldSnapshot) {
  Status s = SaveWithFault("snapshot.write_enospc");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  ExpectOldSnapshotIntact();
  EXPECT_FALSE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, FsyncFailurePreservesOldSnapshot) {
  Status s = SaveWithFault("snapshot.fsync");
  EXPECT_NE(s.message().find("fsync"), std::string::npos);
  ExpectOldSnapshotIntact();
  EXPECT_FALSE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, CrashBeforeRenamePreservesOldSnapshot) {
  Status s = SaveWithFault("snapshot.crash_rename");
  EXPECT_NE(s.message().find("crash"), std::string::npos);
  ExpectOldSnapshotIntact();
  // A crash leaves the temp file behind, exactly like a real one.
  EXPECT_TRUE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, RenameFailurePreservesOldSnapshot) {
  SaveWithFault("snapshot.rename");
  ExpectOldSnapshotIntact();
  EXPECT_FALSE(Exists(common::TempPathFor(path_)));
}

TEST_F(FaultInjectionTest, DirsyncFailureLeavesCompleteNewFile) {
  // The dirsync fires after the atomic rename: the save reports failure
  // (the rename's durability is not guaranteed) but the target is the
  // complete new file, never a torn one.
  GraphStore old_graph = SmallGraph(1);
  ASSERT_TRUE(SaveSnapshot(old_graph, path_).ok());

  FaultInjector::Global().Arm("snapshot.dirsync");
  GraphStore new_graph = SmallGraph(2);
  std::string expected_new;
  ASSERT_TRUE(SerializeSnapshot(new_graph, &expected_new).ok());
  auto result = SaveSnapshot(new_graph, path_);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(result.ok());

  EXPECT_EQ(Slurp(path_), expected_new);
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST_F(FaultInjectionTest, FirstSaveFaultLeavesNothingBehind) {
  // No previous snapshot: a failed first save must not leave a file at the
  // target path (a later load correctly reports NotFound).
  FaultInjector::Global().Arm("snapshot.fsync");
  GraphStore graph = SmallGraph(1);
  EXPECT_FALSE(SaveSnapshot(graph, path_).ok());
  FaultInjector::Global().Reset();
  EXPECT_FALSE(Exists(path_));
  EXPECT_EQ(LoadSnapshot(path_).status().code(), StatusCode::kNotFound);
}

TEST_F(FaultInjectionTest, ManagerSaveFaultsPreserveAllGenerations) {
  SnapshotManager manager(path_);
  ASSERT_TRUE(manager.Save(SmallGraph(1)).ok());
  ASSERT_TRUE(manager.Save(SmallGraph(2)).ok());
  std::string gen0 = Slurp(path_);
  std::string gen1 = Slurp(manager.GenerationPath(1));

  for (const char* site :
       {"snapshot.open", "snapshot.write_short", "snapshot.write_enospc",
        "snapshot.fsync", "snapshot.crash_rename"}) {
    FaultInjector::Global().Arm(site);
    EXPECT_FALSE(manager.Save(SmallGraph(3)).ok()) << site;
    FaultInjector::Global().Reset();
    // Every existing generation is byte-identical to before the attempt.
    EXPECT_EQ(Slurp(path_), gen0) << site;
    EXPECT_EQ(Slurp(manager.GenerationPath(1)), gen1) << site;
    auto loaded = manager.Load();
    ASSERT_TRUE(loaded.ok()) << site << ": " << loaded.status();
    EXPECT_EQ(loaded->generation, 0) << site;
    std::remove(common::TempPathFor(path_).c_str());
  }
}

TEST_F(FaultInjectionTest, EnvSpecParsesIntoGlobal) {
  // FRAPPE_FAULT is parsed once at first Global() use (already past in
  // this process), so exercise the same parser via Parse().
  ASSERT_TRUE(
      FaultInjector::Global().Parse("snapshot.write_enospc:1").ok());
  GraphStore graph = SmallGraph(1);
  auto result = SaveSnapshot(graph, path_);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace frappe::graph
