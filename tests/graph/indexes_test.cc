#include "graph/indexes.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

class NameIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    short_name_ = store_.InternKey("short_name");
    name_ = store_.InternKey("name");
    fn_type_ = store_.InternNodeType("function");
    field_type_ = store_.InternNodeType("field");

    main_ = AddNamed(fn_type_, "main");
    bar_ = AddNamed(fn_type_, "bar");
    pci_read_ = AddNamed(fn_type_, "pci_read_bases");
    pci_write_ = AddNamed(fn_type_, "pci_write_bases");
    id_field_ = AddNamed(field_type_, "id");
    id_fn_ = AddNamed(fn_type_, "id");

    index_ = NameIndex::Build(
        store_, {{"short_name", short_name_, false},
                 {"name", name_, false},
                 {"type", kInvalidKey, true}});
  }

  NodeId AddNamed(TypeId type, std::string_view name) {
    NodeId id = store_.AddNode(type);
    store_.SetNodeProperty(id, short_name_, store_.StringValue(name));
    store_.SetNodeProperty(id, name_,
                           store_.StringValue(std::string(name) + "::full"));
    return id;
  }

  GraphStore store_;
  KeyId short_name_, name_;
  TypeId fn_type_, field_type_;
  NodeId main_, bar_, pci_read_, pci_write_, id_field_, id_fn_;
  NameIndex index_;
};

TEST_F(NameIndexTest, ExactLookup) {
  EXPECT_EQ(index_.Lookup("short_name", "main"), std::vector<NodeId>{main_});
  EXPECT_EQ(index_.Lookup("short_name", "id"),
            (std::vector<NodeId>{id_field_, id_fn_}));
  EXPECT_TRUE(index_.Lookup("short_name", "nonexistent").empty());
}

TEST_F(NameIndexTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(index_.Lookup("SHORT_NAME", "MAIN"), std::vector<NodeId>{main_});
}

TEST_F(NameIndexTest, UnknownFieldReturnsEmpty) {
  EXPECT_TRUE(index_.Lookup("no_such_field", "main").empty());
}

TEST_F(NameIndexTest, WildcardPrefix) {
  EXPECT_EQ(index_.LookupWildcard("short_name", "pci_*"),
            (std::vector<NodeId>{pci_read_, pci_write_}));
}

TEST_F(NameIndexTest, WildcardInfixAndSuffix) {
  EXPECT_EQ(index_.LookupWildcard("short_name", "*_bases"),
            (std::vector<NodeId>{pci_read_, pci_write_}));
  EXPECT_EQ(index_.LookupWildcard("short_name", "pci_?ead_bases"),
            std::vector<NodeId>{pci_read_});
}

TEST_F(NameIndexTest, FuzzyLookup) {
  // One substitution away.
  EXPECT_EQ(index_.LookupFuzzy("short_name", "mair", 1),
            std::vector<NodeId>{main_});
  // Distance 2: "maXX" still matches "main".
  EXPECT_EQ(index_.LookupFuzzy("short_name", "maxx", 2),
            std::vector<NodeId>{main_});
  // Distance limit respected.
  EXPECT_TRUE(index_.LookupFuzzy("short_name", "qqqq", 1).empty());
}

TEST_F(NameIndexTest, TypeFieldIndexesNodeLabels) {
  EXPECT_EQ(index_.Lookup("type", "field"), std::vector<NodeId>{id_field_});
  auto functions = index_.Lookup("type", "function");
  EXPECT_EQ(functions.size(), 5u);
}

TEST_F(NameIndexTest, LuceneExactQuery) {
  auto result = index_.Query("short_name: main");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<NodeId>{main_});
}

TEST_F(NameIndexTest, LuceneAndNarrows) {
  // The paper's Table 6 pattern: type filter AND name filter.
  auto result = index_.Query("type: function AND short_name: id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<NodeId>{id_fn_});
}

TEST_F(NameIndexTest, LuceneJuxtapositionMeansAnd) {
  auto result = index_.Query("type: function short_name: id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<NodeId>{id_fn_});
}

TEST_F(NameIndexTest, LuceneOrUnions) {
  auto result = index_.Query("short_name: main OR short_name: bar");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{main_, bar_}));
}

TEST_F(NameIndexTest, LuceneParenthesesGroup) {
  auto result = index_.Query(
      "(type: field OR type: function) AND short_name: id");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{id_field_, id_fn_}));
}

TEST_F(NameIndexTest, LuceneWildcardTerm) {
  auto result = index_.Query("short_name: pci_*");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<NodeId>{pci_read_, pci_write_}));
}

TEST_F(NameIndexTest, LuceneFuzzyTerm) {
  auto result = index_.Query("short_name: mair~1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<NodeId>{main_});
}

TEST_F(NameIndexTest, LuceneQuotedTermWithDot) {
  NodeId elf = AddNamed(fn_type_, "wakeup.elf");
  NameIndex fresh = NameIndex::Build(
      store_, {{"short_name", short_name_, false}});
  auto result = fresh.Query("short_name: 'wakeup.elf'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<NodeId>{elf});
  // Bare dotted terms also parse (lucene-ish leniency).
  auto bare = fresh.Query("short_name: wakeup.elf");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(*bare, std::vector<NodeId>{elf});
}

TEST_F(NameIndexTest, LuceneSyntaxErrors) {
  EXPECT_FALSE(index_.Query("short_name").ok());
  EXPECT_FALSE(index_.Query("short_name: main AND").ok());
  EXPECT_FALSE(index_.Query("(short_name: main").ok());
  EXPECT_FALSE(index_.Query("short_name: 'unterminated").ok());
}

TEST_F(NameIndexTest, SerializeDeserializeRoundTrip) {
  std::string blob;
  index_.Serialize(&blob);
  auto restored = NameIndex::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Lookup("short_name", "main"),
            std::vector<NodeId>{main_});
  EXPECT_EQ(restored->Lookup("type", "field"),
            std::vector<NodeId>{id_field_});
  EXPECT_EQ(restored->TermCount(), index_.TermCount());
}

TEST_F(NameIndexTest, DeserializeRejectsTruncationAtEveryByte) {
  std::string blob;
  index_.Serialize(&blob);
  // Every proper prefix must be rejected as Corruption — never accepted,
  // never a crash (the storage ASan lane runs this).
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    auto truncated = NameIndex::Deserialize(
        std::string_view(blob).substr(0, cut));
    ASSERT_FALSE(truncated.ok()) << "cut=" << cut;
    EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption)
        << "cut=" << cut;
  }
}

TEST_F(NameIndexTest, DeserializeRejectsTrailingGarbage) {
  std::string blob;
  index_.Serialize(&blob);
  blob += "junk";
  auto result = NameIndex::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST_F(NameIndexTest, DeserializeRejectsUnsortedPostings) {
  // Two nodes share a term; swapping their serialized ids breaks the
  // sorted-postings invariant lookups rely on.
  NodeId a = AddNamed(fn_type_, "dup");
  NodeId b = AddNamed(fn_type_, "dup");
  NameIndex index = NameIndex::Build(
      store_, {{"short_name", store_.keys().Find("short_name"), false}});
  ASSERT_EQ(index.Lookup("short_name", "dup"), (std::vector<NodeId>{a, b}));

  std::string blob;
  index.Serialize(&blob);
  // The two ids sit back-to-back right after the term "dup" + u32 count.
  size_t term_pos = blob.find("dup");
  ASSERT_NE(term_pos, std::string::npos);
  size_t ids_pos = term_pos + 3 + sizeof(uint32_t);
  std::string swapped = blob;
  std::memcpy(&swapped[ids_pos], &b, sizeof(NodeId));
  std::memcpy(&swapped[ids_pos + sizeof(NodeId)], &a, sizeof(NodeId));
  auto result = NameIndex::Deserialize(swapped);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("unsorted"), std::string::npos);

  // Duplicated ids are rejected too (strictly ascending required).
  std::string duped = blob;
  std::memcpy(&duped[ids_pos + sizeof(NodeId)], &a, sizeof(NodeId));
  EXPECT_FALSE(NameIndex::Deserialize(duped).ok());
}

TEST_F(NameIndexTest, DeserializeRejectsImplausibleFieldCount) {
  std::string blob;
  index_.Serialize(&blob);
  uint32_t huge = 0x40000000;
  std::memcpy(&blob[0], &huge, sizeof(huge));
  auto result = NameIndex::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("field count"), std::string::npos);
}

TEST_F(NameIndexTest, IncrementalIndexNode) {
  NodeId fresh = AddNamed(fn_type_, "late_arrival");
  index_.IndexNode(store_, fresh);
  EXPECT_EQ(index_.Lookup("short_name", "late_arrival"),
            std::vector<NodeId>{fresh});
}

TEST_F(NameIndexTest, ByteSizeNonZero) {
  EXPECT_GT(index_.ByteSize(), 0u);
}

TEST(LabelIndexTest, GroupsNodesByType) {
  GraphStore store;
  TypeId fn = store.InternNodeType("function");
  TypeId file = store.InternNodeType("file");
  NodeId f1 = store.AddNode(fn);
  NodeId f2 = store.AddNode(fn);
  NodeId file1 = store.AddNode(file);
  LabelIndex index = LabelIndex::Build(store);
  EXPECT_EQ(index.Nodes(fn), (std::vector<NodeId>{f1, f2}));
  EXPECT_EQ(index.Nodes(file), std::vector<NodeId>{file1});
  EXPECT_TRUE(index.Nodes(999).empty());
}

TEST(LabelIndexTest, SkipsDeadNodes) {
  GraphStore store;
  TypeId fn = store.InternNodeType("function");
  NodeId f1 = store.AddNode(fn);
  NodeId f2 = store.AddNode(fn);
  store.RemoveNode(f1);
  LabelIndex index = LabelIndex::Build(store);
  EXPECT_EQ(index.Nodes(fn), std::vector<NodeId>{f2});
}

}  // namespace
}  // namespace frappe::graph
