#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "graph/graph_store.h"

namespace frappe::graph {
namespace {

// Builds a small call-graph-like fixture:
//   a -> b -> c -> d
//   a -> c
//   d -> b   (cycle b-c-d)
//   e        (isolated)
//   a -reads-> g (different edge type)
class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    calls_ = store_.InternEdgeType("calls");
    reads_ = store_.InternEdgeType("reads");
    TypeId fn = store_.InternNodeType("function");
    for (int i = 0; i < 6; ++i) n_.push_back(store_.AddNode(fn));
    store_.AddEdge(n_[0], n_[1], calls_);  // a->b
    store_.AddEdge(n_[1], n_[2], calls_);  // b->c
    store_.AddEdge(n_[2], n_[3], calls_);  // c->d
    store_.AddEdge(n_[0], n_[2], calls_);  // a->c
    store_.AddEdge(n_[3], n_[1], calls_);  // d->b
    store_.AddEdge(n_[0], n_[5], reads_);  // a-reads->g
  }

  GraphStore store_;
  TypeId calls_, reads_;
  std::vector<NodeId> n_;
};

TEST_F(TraversalTest, BfsVisitsInDepthOrder) {
  std::vector<std::pair<NodeId, size_t>> visits;
  Bfs(store_, {n_[0]}, EdgeFilter::Of({calls_}),
      [&](NodeId id, size_t depth) {
        visits.emplace_back(id, depth);
        return true;
      });
  ASSERT_EQ(visits.size(), 4u);
  EXPECT_EQ(visits[0], (std::pair<NodeId, size_t>{n_[0], 0}));
  // b and c both at depth 1, d at depth 2.
  std::set<NodeId> depth1{visits[1].first, visits[2].first};
  EXPECT_EQ(depth1, (std::set<NodeId>{n_[1], n_[2]}));
  EXPECT_EQ(visits[3], (std::pair<NodeId, size_t>{n_[3], 2}));
}

TEST_F(TraversalTest, BfsRespectsEdgeTypeFilter) {
  std::vector<NodeId> visited;
  Bfs(store_, {n_[0]}, EdgeFilter::Of({reads_}), [&](NodeId id, size_t) {
    visited.push_back(id);
    return true;
  });
  EXPECT_EQ(visited, (std::vector<NodeId>{n_[0], n_[5]}));
}

TEST_F(TraversalTest, BfsAnyEdgeType) {
  std::vector<NodeId> visited;
  Bfs(store_, {n_[0]}, EdgeFilter::Any(), [&](NodeId id, size_t) {
    visited.push_back(id);
    return true;
  });
  EXPECT_EQ(visited.size(), 5u);  // everything except isolated e
}

TEST_F(TraversalTest, BfsMaxDepth) {
  std::vector<NodeId> visited;
  Bfs(
      store_, {n_[0]}, EdgeFilter::Of({calls_}),
      [&](NodeId id, size_t) {
        visited.push_back(id);
        return true;
      },
      /*max_depth=*/1);
  EXPECT_EQ(visited.size(), 3u);  // a, b, c — not d
}

TEST_F(TraversalTest, BfsEarlyStop) {
  int visits = 0;
  Bfs(store_, {n_[0]}, EdgeFilter::Of({calls_}), [&](NodeId, size_t) {
    return ++visits < 2;
  });
  EXPECT_EQ(visits, 2);
}

TEST_F(TraversalTest, BfsIgnoresDeadSeeds) {
  store_.RemoveNode(n_[5]);
  std::vector<NodeId> visited;
  Bfs(store_, {n_[5]}, EdgeFilter::Any(), [&](NodeId id, size_t) {
    visited.push_back(id);
    return true;
  });
  EXPECT_TRUE(visited.empty());
}

TEST_F(TraversalTest, TransitiveClosureExcludesUnreachedSeed) {
  // Figure 6 semantics: closure of outgoing calls from a.
  auto closure = TransitiveClosure(store_, n_[0], EdgeFilter::Of({calls_}));
  EXPECT_EQ(closure, (std::vector<NodeId>{n_[1], n_[2], n_[3]}));
}

TEST_F(TraversalTest, TransitiveClosureIncludesSeedOnCycle) {
  auto closure = TransitiveClosure(store_, n_[1], EdgeFilter::Of({calls_}));
  // b -> c -> d -> b: the cycle brings b into its own closure.
  EXPECT_EQ(closure, (std::vector<NodeId>{n_[1], n_[2], n_[3]}));
}

TEST_F(TraversalTest, TransitiveClosureIncomingIsForwardSlice) {
  auto closure =
      TransitiveClosure(store_, n_[3], EdgeFilter::Of({calls_}, Direction::kIn));
  // Callers of d transitively: c, b, a, and d itself via the cycle.
  EXPECT_EQ(closure, (std::vector<NodeId>{n_[0], n_[1], n_[2], n_[3]}));
}

TEST_F(TraversalTest, TransitiveClosureDepthLimited) {
  auto closure =
      TransitiveClosure(store_, n_[0], EdgeFilter::Of({calls_}), 1);
  EXPECT_EQ(closure, (std::vector<NodeId>{n_[1], n_[2]}));
}

TEST_F(TraversalTest, TransitiveClosureMultiSeed) {
  auto closure = TransitiveClosure(store_, std::vector<NodeId>{n_[2], n_[5]},
                                   EdgeFilter::Of({calls_}));
  EXPECT_EQ(closure, (std::vector<NodeId>{n_[1], n_[2], n_[3]}));
}

TEST_F(TraversalTest, ShortestPathDirect) {
  auto path = ShortestPath(store_, n_[0], n_[3], EdgeFilter::Of({calls_}));
  ASSERT_TRUE(path.has_value());
  // a -> c -> d beats a -> b -> c -> d.
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{n_[0], n_[2], n_[3]}));
  EXPECT_EQ(path->edges.size(), 2u);
  // Edge endpoints line up with the node sequence.
  for (size_t i = 0; i < path->edges.size(); ++i) {
    Edge e = store_.GetEdge(path->edges[i]);
    EXPECT_EQ(e.src, path->nodes[i]);
    EXPECT_EQ(e.dst, path->nodes[i + 1]);
  }
}

TEST_F(TraversalTest, ShortestPathToSelfIsEmpty) {
  auto path = ShortestPath(store_, n_[0], n_[0], EdgeFilter::Of({calls_}));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, std::vector<NodeId>{n_[0]});
  EXPECT_TRUE(path->edges.empty());
}

TEST_F(TraversalTest, ShortestPathUnreachable) {
  EXPECT_FALSE(
      ShortestPath(store_, n_[0], n_[4], EdgeFilter::Any()).has_value());
  // Wrong direction: nothing calls a.
  EXPECT_FALSE(
      ShortestPath(store_, n_[1], n_[0], EdgeFilter::Of({calls_})).has_value());
}

TEST_F(TraversalTest, EnumeratePathsFindsAllSimplePaths) {
  auto paths = EnumeratePaths(store_, n_[0], n_[3], EdgeFilter::Of({calls_}),
                              /*max_depth=*/5, /*limit=*/10);
  // a->b->c->d and a->c->d.
  ASSERT_EQ(paths.size(), 2u);
  std::set<size_t> lengths{paths[0].Length(), paths[1].Length()};
  EXPECT_EQ(lengths, (std::set<size_t>{2u, 3u}));
}

TEST_F(TraversalTest, EnumeratePathsHonorsLimitAndDepth) {
  auto limited = EnumeratePaths(store_, n_[0], n_[3],
                                EdgeFilter::Of({calls_}), 5, 1);
  EXPECT_EQ(limited.size(), 1u);
  auto shallow = EnumeratePaths(store_, n_[0], n_[3],
                                EdgeFilter::Of({calls_}), 2, 10);
  ASSERT_EQ(shallow.size(), 1u);
  EXPECT_EQ(shallow[0].Length(), 2u);
}

TEST_F(TraversalTest, EnumeratePathsCycleBackToStart) {
  auto cycles = EnumeratePaths(store_, n_[1], n_[1],
                               EdgeFilter::Of({calls_}), 5, 10);
  ASSERT_EQ(cycles.size(), 1u);  // b -> c -> d -> b
  EXPECT_EQ(cycles[0].Length(), 3u);
}

TEST(EnumeratePathsDeepTest, HandlesHundredThousandNodeChain) {
  // Regression: EnumeratePaths used to recurse once per path node, so a
  // long chain overflowed the call stack. The explicit-stack DFS walks a
  // 100k-node chain (one 100k-edge path) without issue.
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  const size_t kNodes = 100000;
  std::vector<NodeId> chain;
  chain.reserve(kNodes);
  for (size_t i = 0; i < kNodes; ++i) chain.push_back(store.AddNode(nt));
  for (size_t i = 0; i + 1 < kNodes; ++i) {
    store.AddEdge(chain[i], chain[i + 1], et);
  }
  auto paths = EnumeratePaths(store, chain.front(), chain.back(),
                              EdgeFilter::Of({et}),
                              /*max_depth=*/kNodes, /*limit=*/10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].Length(), kNodes - 1);
  EXPECT_EQ(paths[0].nodes.front(), chain.front());
  EXPECT_EQ(paths[0].nodes.back(), chain.back());
}

TEST_F(TraversalTest, IsReachable) {
  EXPECT_TRUE(IsReachable(store_, n_[0], n_[3], EdgeFilter::Of({calls_})));
  EXPECT_FALSE(IsReachable(store_, n_[3], n_[0], EdgeFilter::Of({calls_})));
  EXPECT_TRUE(IsReachable(store_, n_[0], n_[0], EdgeFilter::Of({calls_})));
  EXPECT_FALSE(IsReachable(store_, n_[0], n_[4], EdgeFilter::Any()));
  EXPECT_FALSE(IsReachable(store_, n_[0], n_[3], EdgeFilter::Of({calls_}), 1));
}

// Property test: TransitiveClosure agrees with a reference reachability
// computation on random graphs.
class ClosureReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosureReferenceTest, MatchesNaiveReachability) {
  frappe::Rng rng(GetParam());
  GraphStore store;
  TypeId nt = store.InternNodeType("n");
  TypeId et = store.InternEdgeType("e");
  const size_t kNodes = 40;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < kNodes; ++i) nodes.push_back(store.AddNode(nt));
  // ~3 random edges per node; self-loops and duplicates allowed.
  std::vector<std::pair<NodeId, NodeId>> edge_list;
  for (size_t i = 0; i < kNodes * 3; ++i) {
    NodeId src = nodes[rng.Uniform(kNodes)];
    NodeId dst = nodes[rng.Uniform(kNodes)];
    store.AddEdge(src, dst, et);
    edge_list.emplace_back(src, dst);
  }

  // Reference: iterative frontier expansion on the edge list.
  NodeId seed = nodes[rng.Uniform(kNodes)];
  std::unordered_set<NodeId> reached;
  std::vector<NodeId> frontier{seed};
  bool first = true;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId f : frontier) {
      for (auto [src, dst] : edge_list) {
        if (src == f && !reached.count(dst)) {
          reached.insert(dst);
          next.push_back(dst);
        }
      }
    }
    if (first) first = false;
    frontier = std::move(next);
  }

  std::vector<NodeId> expected(reached.begin(), reached.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(TransitiveClosure(store, seed, EdgeFilter::Of({et})), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureReferenceTest,
                         ::testing::Range(uint64_t{100}, uint64_t{110}));

}  // namespace
}  // namespace frappe::graph
