#include "temporal/impact.h"

#include <gtest/gtest.h>

#include <set>

namespace frappe::temporal {
namespace {

using graph::NodeId;
using model::NodeKind;

// Cross-version change-impact scenario:
//   v0:  main -> dispatch -> read_impl
//        logger (isolated)
//   v1:  read_impl's body changes (property bump), new write_impl added,
//        dispatch also calls write_impl.
// Expected: changed = {read_impl, write_impl, dispatch(due to new edge)};
// impacted = changed + their transitive callers = + {main}.
class ImpactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = std::make_unique<model::Schema>(
        model::Schema::Install(&store_.raw_store()));
    graph::TypeId fn = schema_->node_type(NodeKind::kFunction);
    graph::TypeId calls =
        schema_->edge_type(model::EdgeKind::kCalls);
    main_ = store_.AddNode(fn);
    dispatch_ = store_.AddNode(fn);
    read_impl_ = store_.AddNode(fn);
    logger_ = store_.AddNode(fn);
    store_.AddEdge(main_, dispatch_, calls);
    store_.AddEdge(dispatch_, read_impl_, calls);
    store_.CommitVersion();  // v0

    write_impl_ = store_.AddNode(fn);
    store_.AddEdge(dispatch_, write_impl_, calls);
    store_.SetNodeProperty(read_impl_,
                           store_.raw_store().InternKey("body_hash"),
                           graph::Value::Int(42));
    store_.CommitVersion();  // v1
  }

  VersionStore store_;
  std::unique_ptr<model::Schema> schema_;
  NodeId main_, dispatch_, read_impl_, logger_, write_impl_;
};

TEST_F(ImpactTest, ChangedFunctionsDetected) {
  auto report = ChangeImpact(store_, *schema_, 0, 1);
  ASSERT_TRUE(report.ok()) << report.status();
  std::set<NodeId> changed(report->changed_functions.begin(),
                           report->changed_functions.end());
  EXPECT_EQ(changed, (std::set<NodeId>{dispatch_, read_impl_, write_impl_}));
}

TEST_F(ImpactTest, ImpactIncludesTransitiveCallers) {
  auto report = ChangeImpact(store_, *schema_, 0, 1);
  ASSERT_TRUE(report.ok());
  std::set<NodeId> impacted(report->impacted_functions.begin(),
                            report->impacted_functions.end());
  EXPECT_TRUE(impacted.count(main_));
  EXPECT_TRUE(impacted.count(dispatch_));
  EXPECT_FALSE(impacted.count(logger_));
}

TEST_F(ImpactTest, NoChangeNoImpact) {
  store_.CommitVersion();  // v2 identical to v1
  auto report = ChangeImpact(store_, *schema_, 1, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->changed_functions.empty());
  EXPECT_TRUE(report->impacted_functions.empty());
}

TEST_F(ImpactTest, RemovedFunctionImplicatesSurvivingCallers) {
  store_.RemoveNode(read_impl_);
  store_.CommitVersion();  // v2
  auto report = ChangeImpact(store_, *schema_, 1, 2);
  ASSERT_TRUE(report.ok());
  std::set<NodeId> changed(report->changed_functions.begin(),
                           report->changed_functions.end());
  EXPECT_TRUE(changed.count(dispatch_));  // its callee vanished
  std::set<NodeId> impacted(report->impacted_functions.begin(),
                            report->impacted_functions.end());
  EXPECT_TRUE(impacted.count(main_));
}

TEST_F(ImpactTest, UncommittedVersionRejected) {
  EXPECT_FALSE(ChangeImpact(store_, *schema_, 0, 5).ok());
}

}  // namespace
}  // namespace frappe::temporal
