#include "temporal/version_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "common/file_io.h"
#include "common/rng.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "graph/traversal.h"
#include "query/parser.h"
#include "query/session.h"

namespace frappe::temporal {
namespace {

using graph::EdgeId;
using graph::NodeId;

class VersionStoreTest : public ::testing::Test {
 protected:
  VersionStore store_;
};

TEST_F(VersionStoreTest, EmptyCommit) {
  Version v0 = store_.CommitVersion();
  EXPECT_EQ(v0, 0u);
  auto view = store_.ViewAt(0);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NodeCount(), 0u);
}

TEST_F(VersionStoreTest, ViewAtUncommittedFails) {
  EXPECT_FALSE(store_.ViewAt(0).ok());
  store_.CommitVersion();
  EXPECT_TRUE(store_.ViewAt(0).ok());
  EXPECT_FALSE(store_.ViewAt(1).ok());
}

TEST_F(VersionStoreTest, NodesAppearFromTheirVersion) {
  NodeId a = store_.AddNode("function");
  store_.CommitVersion();  // v0: {a}
  NodeId b = store_.AddNode("function");
  store_.CommitVersion();  // v1: {a, b}

  auto v0 = *store_.ViewAt(0);
  EXPECT_TRUE(v0->NodeExists(a));
  EXPECT_FALSE(v0->NodeExists(b));
  EXPECT_EQ(v0->NodeCount(), 1u);

  auto v1 = *store_.ViewAt(1);
  EXPECT_TRUE(v1->NodeExists(a));
  EXPECT_TRUE(v1->NodeExists(b));
  EXPECT_EQ(v1->NodeCount(), 2u);
}

TEST_F(VersionStoreTest, RemovalHidesFromLaterVersionsOnly) {
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("function");
  EdgeId e = store_.AddEdge(a, b, "calls");
  store_.CommitVersion();  // v0
  store_.RemoveNode(b);    // cascades to e
  store_.CommitVersion();  // v1

  auto v0 = *store_.ViewAt(0);
  EXPECT_TRUE(v0->NodeExists(b));
  EXPECT_TRUE(v0->EdgeExists(e));
  EXPECT_EQ(v0->EdgeCount(), 1u);

  auto v1 = *store_.ViewAt(1);
  EXPECT_FALSE(v1->NodeExists(b));
  EXPECT_FALSE(v1->EdgeExists(e));
  EXPECT_EQ(v1->EdgeCount(), 0u);
  EXPECT_EQ(v1->OutDegree(a), 0u);
  // v0's adjacency still sees the edge.
  EXPECT_EQ(v0->OutDegree(a), 1u);
}

TEST_F(VersionStoreTest, AddEdgeToRemovedNodeFails) {
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  store_.RemoveNode(b);
  EXPECT_EQ(store_.AddEdge(a, b, "e"), graph::kInvalidEdge);
}

TEST_F(VersionStoreTest, EntityAddedAndRemovedInSameEraNeverVisible) {
  NodeId a = store_.AddNode("n");
  NodeId temp = store_.AddNode("n");
  store_.RemoveNode(temp);
  store_.CommitVersion();
  auto v0 = *store_.ViewAt(0);
  EXPECT_TRUE(v0->NodeExists(a));
  EXPECT_FALSE(v0->NodeExists(temp));
}

TEST_F(VersionStoreTest, PropertyHistoryPerVersion) {
  NodeId a = store_.AddNode("function");
  graph::KeyId key = store_.raw_store().InternKey("value");
  store_.SetNodeProperty(a, key, graph::Value::Int(1));
  store_.CommitVersion();  // v0: value=1
  store_.SetNodeProperty(a, key, graph::Value::Int(2));
  store_.CommitVersion();  // v1: value=2
  store_.CommitVersion();  // v2: unchanged
  store_.SetNodeProperty(a, key, graph::Value::Int(3));
  store_.CommitVersion();  // v3: value=3

  EXPECT_EQ((*store_.ViewAt(0))->GetNodeProperty(a, key).AsInt(), 1);
  EXPECT_EQ((*store_.ViewAt(1))->GetNodeProperty(a, key).AsInt(), 2);
  EXPECT_EQ((*store_.ViewAt(2))->GetNodeProperty(a, key).AsInt(), 2);
  EXPECT_EQ((*store_.ViewAt(3))->GetNodeProperty(a, key).AsInt(), 3);
}

TEST_F(VersionStoreTest, UnchangedNodesReadStoreProps) {
  NodeId a = store_.AddNode("function");
  graph::KeyId key = store_.raw_store().InternKey("short_name");
  store_.SetNodeProperty(a, key,
                         store_.raw_store().StringValue("stable"));
  store_.CommitVersion();
  store_.CommitVersion();
  auto v1 = *store_.ViewAt(1);
  EXPECT_EQ(v1->GetNodeString(a, key), "stable");
}

TEST_F(VersionStoreTest, EdgePropertyHistory) {
  NodeId a = store_.AddNode("n");
  NodeId b = store_.AddNode("n");
  EdgeId e = store_.AddEdge(a, b, "calls");
  graph::KeyId key = store_.raw_store().InternKey("use_start_line");
  store_.SetEdgeProperty(e, key, graph::Value::Int(100));
  store_.CommitVersion();
  store_.SetEdgeProperty(e, key, graph::Value::Int(200));
  store_.CommitVersion();
  EXPECT_EQ((*store_.ViewAt(0))->GetEdgeProperty(e, key).AsInt(), 100);
  EXPECT_EQ((*store_.ViewAt(1))->GetEdgeProperty(e, key).AsInt(), 200);
}

TEST_F(VersionStoreTest, TraversalWorksOnOldVersions) {
  // v0: a -> b -> c;  v1: b -> c removed, a -> c added.
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("function");
  NodeId c = store_.AddNode("function");
  graph::TypeId calls = store_.raw_store().InternEdgeType("calls");
  store_.AddEdge(a, b, calls);
  EdgeId bc = store_.AddEdge(b, c, calls);
  store_.CommitVersion();
  store_.RemoveEdge(bc);
  store_.AddEdge(a, c, calls);
  store_.CommitVersion();

  auto v0 = *store_.ViewAt(0);
  auto closure0 = graph::TransitiveClosure(*v0, a,
                                           graph::EdgeFilter::Of({calls}));
  EXPECT_EQ(closure0, (std::vector<NodeId>{b, c}));

  auto v1 = *store_.ViewAt(1);
  auto closure_b = graph::TransitiveClosure(*v1, b,
                                            graph::EdgeFilter::Of({calls}));
  EXPECT_TRUE(closure_b.empty());
  auto closure_a = graph::TransitiveClosure(*v1, a,
                                            graph::EdgeFilter::Of({calls}));
  EXPECT_EQ(closure_a, (std::vector<NodeId>{b, c}));
}

TEST_F(VersionStoreTest, ComputeDiff) {
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("function");
  EdgeId ab = store_.AddEdge(a, b, "calls");
  store_.CommitVersion();  // v0
  NodeId c = store_.AddNode("function");
  EdgeId ac = store_.AddEdge(a, c, "calls");
  store_.RemoveEdge(ab);
  graph::KeyId key = store_.raw_store().InternKey("value");
  store_.SetNodeProperty(b, key, graph::Value::Int(9));
  store_.CommitVersion();  // v1

  auto diff = store_.ComputeDiff(0, 1);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->added_nodes, std::vector<NodeId>{c});
  EXPECT_TRUE(diff->removed_nodes.empty());
  EXPECT_EQ(diff->added_edges, std::vector<EdgeId>{ac});
  EXPECT_EQ(diff->removed_edges, std::vector<EdgeId>{ab});
  EXPECT_EQ(diff->property_changed_nodes, std::vector<NodeId>{b});

  // Reverse diff swaps added/removed.
  auto reverse = store_.ComputeDiff(1, 0);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse->removed_nodes, std::vector<NodeId>{c});
  EXPECT_EQ(reverse->added_edges, std::vector<EdgeId>{ab});
}

TEST_F(VersionStoreTest, DiffSameVersionIsEmpty) {
  store_.AddNode("n");
  store_.CommitVersion();
  auto diff = store_.ComputeDiff(0, 0);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
}

TEST_F(VersionStoreTest, DeltaBeatsFullCopiesForSlowEvolution) {
  // Build a moderately sized graph, then commit 10 versions with ~1%
  // change each. The delta store must be far smaller than 10 full
  // snapshots (the Section 6.3 motivation).
  frappe::Rng rng(7);
  graph::TypeId nt = store_.raw_store().InternNodeType("function");
  graph::TypeId et = store_.raw_store().InternEdgeType("calls");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 2000; ++i) nodes.push_back(store_.AddNode(nt));
  for (int i = 0; i < 8000; ++i) {
    store_.AddEdge(nodes[rng.Uniform(nodes.size())],
                   nodes[rng.Uniform(nodes.size())], et);
  }
  store_.CommitVersion();
  for (int v = 0; v < 10; ++v) {
    for (int i = 0; i < 20; ++i) {
      store_.AddEdge(nodes[rng.Uniform(nodes.size())],
                     nodes[rng.Uniform(nodes.size())], et);
    }
    store_.CommitVersion();
  }
  // Per-version full copies would hold ~VersionCount times the final
  // in-memory graph; the delta store holds it once plus small interval
  // overhead. Compare like with like (resident bytes both sides).
  uint64_t one_copy = store_.raw_store().EstimateMemory().total();
  uint64_t naive_total = one_copy * store_.VersionCount();
  EXPECT_LT(store_.DeltaBytes(), naive_total / 5);
}

TEST_F(VersionStoreTest, ViewIsAFullGraphView) {
  // Stats and snapshot machinery run on a version view unchanged.
  NodeId a = store_.AddNode("function");
  NodeId b = store_.AddNode("file");
  store_.AddEdge(b, a, "file_contains");
  store_.CommitVersion();
  auto view = *store_.ViewAt(0);
  auto metrics = graph::ComputeMetrics(*view);
  EXPECT_EQ(metrics.node_count, 2u);
  EXPECT_EQ(metrics.edge_count, 1u);
  std::string blob;
  EXPECT_TRUE(graph::SerializeSnapshot(*view, &blob).ok());
}


TEST_F(VersionStoreTest, FqlQueriesRunAgainstOldVersions) {
  // The full declarative stack works point-in-time: build indexes over a
  // version view and run FQL against the codebase as it was.
  model::Schema schema = model::Schema::Install(&store_.raw_store());
  graph::TypeId fn = schema.node_type(model::NodeKind::kFunction);
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId name = schema.key(model::PropKey::kShortName);

  NodeId a = store_.AddNode(fn);
  store_.SetNodeProperty(a, name, store_.raw_store().StringValue("main"));
  NodeId b = store_.AddNode(fn);
  store_.SetNodeProperty(b, name,
                         store_.raw_store().StringValue("old_impl"));
  EdgeId ab = store_.AddEdge(a, b, calls);
  store_.CommitVersion();  // v0: main -> old_impl
  NodeId c = store_.AddNode(fn);
  store_.SetNodeProperty(c, name,
                         store_.raw_store().StringValue("new_impl"));
  store_.AddEdge(a, c, calls);
  store_.RemoveEdge(ab);
  store_.CommitVersion();  // v1: main -> new_impl

  for (Version v : {Version{0}, Version{1}}) {
    auto view = *store_.ViewAt(v);
    model::CodeGraph scratch;
    graph::NameIndex index =
        graph::NameIndex::Build(*view, scratch.IndexFields());
    graph::LabelIndex labels = graph::LabelIndex::Build(*view);
    query::Database db =
        query::MakeFrappeDatabase(*view, schema, &index, &labels);
    auto parsed = query::Parse(
        "START n=node:node_auto_index('short_name: main') "
        "MATCH n -[:calls]-> m RETURN m.short_name");
    ASSERT_TRUE(parsed.ok());
    auto result = query::Execute(db, *parsed);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->rows.size(), 1u);
    std::string_view callee = view->strings().Resolve(
        result->rows[0][0].value.AsString());
    EXPECT_EQ(callee, v == 0 ? "old_impl" : "new_impl");
  }
}

TEST_F(VersionStoreTest, SaveVersionRoundTrips) {
  graph::TypeId nt = store_.raw_store().InternNodeType("function");
  graph::KeyId key = store_.raw_store().InternKey("short_name");
  NodeId a = store_.AddNode(nt);
  store_.SetNodeProperty(a, key, store_.raw_store().StringValue("v0_name"));
  store_.CommitVersion();
  NodeId b = store_.AddNode(nt);
  store_.AddEdge(a, b, store_.raw_store().InternEdgeType("calls"));
  store_.RemoveNode(a);
  store_.CommitVersion();

  std::string path = ::testing::TempDir() + "/frappe_version_save.db";
  // Version 0: only node `a`, with its v0 property value.
  auto sizes = store_.SaveVersion(0, path);
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  auto loaded = graph::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->format_version, 2u);
  EXPECT_EQ(loaded->store->NodeCount(), 1u);
  EXPECT_EQ(loaded->store->EdgeCount(), 0u);
  EXPECT_EQ(loaded->store->GetNodeString(
                a, loaded->store->keys().Find("short_name")),
            "v0_name");

  // Version 1: `a` removed (tombstone keeps `b`'s id), edge gone with it.
  ASSERT_TRUE(store_.SaveVersion(1, path).ok());
  auto v1 = graph::LoadSnapshot(path);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_FALSE(v1->store->NodeExists(a));
  EXPECT_TRUE(v1->store->NodeExists(b));
  EXPECT_EQ(v1->store->EdgeCount(), 0u);

  std::remove(path.c_str());
}

TEST_F(VersionStoreTest, SaveVersionRejectsUncommitted) {
  std::string path = ::testing::TempDir() + "/frappe_version_bad.db";
  EXPECT_FALSE(store_.SaveVersion(0, path).ok());
}

TEST_F(VersionStoreTest, SavedVersionDetectsCorruption) {
  store_.AddNode(store_.raw_store().InternNodeType("function"));
  store_.CommitVersion();
  std::string path = ::testing::TempDir() + "/frappe_version_corrupt.db";
  ASSERT_TRUE(store_.SaveVersion(0, path).ok());

  std::string bytes;
  ASSERT_TRUE(common::ReadFile(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x08;
  ASSERT_TRUE(common::WriteFileDurable(path, bytes).ok());
  auto loaded = graph::LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frappe::temporal
