#include "model/code_graph.h"

#include <gtest/gtest.h>

namespace frappe::model {
namespace {

using graph::EdgeId;
using graph::NodeId;

class CodeGraphTest : public ::testing::Test {
 protected:
  CodeGraph cg_;
};

TEST_F(CodeGraphTest, AddNodeSetsTypeAndShortName) {
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "main");
  EXPECT_EQ(cg_.KindOf(fn), NodeKind::kFunction);
  EXPECT_EQ(cg_.ShortName(fn), "main");
}

TEST_F(CodeGraphTest, NamePropertiesIndependent) {
  NodeId field = cg_.AddNode(NodeKind::kField, "id");
  cg_.SetName(field, "message::id");
  cg_.SetLongName(field, "struct message::id");
  const auto& store = cg_.store();
  EXPECT_EQ(store.GetNodeString(field, cg_.key_id(PropKey::kShortName)), "id");
  EXPECT_EQ(store.GetNodeString(field, cg_.key_id(PropKey::kName)),
            "message::id");
  EXPECT_EQ(store.GetNodeString(field, cg_.key_id(PropKey::kLongName)),
            "struct message::id");
}

TEST_F(CodeGraphTest, FlagsAndEnumValue) {
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "printf_like");
  cg_.MarkVariadic(fn);
  cg_.MarkInMacro(fn);
  NodeId en = cg_.AddNode(NodeKind::kEnumerator, "RED");
  cg_.SetEnumValue(en, 3);
  const auto& store = cg_.store();
  EXPECT_TRUE(
      store.GetNodeProperty(fn, cg_.key_id(PropKey::kVariadic)).AsBool());
  EXPECT_TRUE(
      store.GetNodeProperty(fn, cg_.key_id(PropKey::kInMacro)).AsBool());
  EXPECT_FALSE(store.NodeProperties(fn).Has(cg_.key_id(PropKey::kVirtual)));
  EXPECT_EQ(store.GetNodeProperty(en, cg_.key_id(PropKey::kValue)).AsInt(), 3);
}

TEST_F(CodeGraphTest, PrimitiveNodesAreShared) {
  NodeId a = cg_.Primitive("int");
  NodeId b = cg_.Primitive("int");
  NodeId c = cg_.Primitive("char");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cg_.KindOf(a), NodeKind::kPrimitive);
}

TEST_F(CodeGraphTest, CheckedEdgeAcceptsValidEndpoints) {
  NodeId caller = cg_.AddNode(NodeKind::kFunction, "main");
  NodeId callee = cg_.AddNode(NodeKind::kFunction, "bar");
  auto e = cg_.AddEdge(EdgeKind::kCalls, caller, callee);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(cg_.EdgeKindOf(*e), EdgeKind::kCalls);
}

TEST_F(CodeGraphTest, CheckedEdgeRejectsInvalidEndpoints) {
  NodeId file = cg_.AddNode(NodeKind::kFile, "main.c");
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "main");
  auto bad = cg_.AddEdge(EdgeKind::kCalls, file, fn);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error message names the offending kinds.
  EXPECT_NE(bad.status().message().find("calls"), std::string::npos);
  EXPECT_NE(bad.status().message().find("file"), std::string::npos);
}

TEST_F(CodeGraphTest, CheckedEdgeRejectsDeadEndpoints) {
  NodeId caller = cg_.AddNode(NodeKind::kFunction, "main");
  auto bad = cg_.AddEdge(EdgeKind::kCalls, caller, 9999);
  EXPECT_FALSE(bad.ok());
}

TEST_F(CodeGraphTest, UncheckedEdgeBypassesValidation) {
  NodeId file = cg_.AddNode(NodeKind::kFile, "main.c");
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "main");
  EdgeId e = cg_.AddEdgeUnchecked(EdgeKind::kCalls, file, fn);
  EXPECT_NE(e, graph::kInvalidEdge);
}

TEST_F(CodeGraphTest, ValidationOffModeSkipsChecks) {
  CodeGraph loose(CodeGraph::Validation::kOff);
  NodeId file = loose.AddNode(NodeKind::kFile, "main.c");
  NodeId fn = loose.AddNode(NodeKind::kFunction, "main");
  auto e = loose.AddEdge(EdgeKind::kCalls, file, fn);
  EXPECT_TRUE(e.ok());
}

TEST_F(CodeGraphTest, SourceRangesRoundTrip) {
  NodeId caller = cg_.AddNode(NodeKind::kFunction, "sr_media_change");
  NodeId callee = cg_.AddNode(NodeKind::kFunction, "get_sectorsize");
  EdgeId e = *cg_.AddEdge(EdgeKind::kCalls, caller, callee);

  SourceRange use{/*file_id=*/12345, 236, 9, 236, 40};
  SourceRange name{12345, 236, 9, 236, 23};
  cg_.SetUseRange(e, use);
  cg_.SetNameRange(e, name);
  EXPECT_EQ(cg_.UseRange(e), use);
  EXPECT_EQ(cg_.NameRange(e), name);
}

TEST_F(CodeGraphTest, MissingRangeReadsAsInvalid) {
  NodeId a = cg_.AddNode(NodeKind::kFunction, "a");
  NodeId b = cg_.AddNode(NodeKind::kFunction, "b");
  EdgeId e = *cg_.AddEdge(EdgeKind::kCalls, a, b);
  EXPECT_FALSE(cg_.UseRange(e).valid());
  EXPECT_FALSE(cg_.NameRange(e).valid());
}

TEST_F(CodeGraphTest, IsaTypeQualifiers) {
  // Paper Figure 2: argv -isa_type-> char with QUALIFIER "**".
  NodeId argv = cg_.AddNode(NodeKind::kParameter, "argv");
  NodeId chr = cg_.Primitive("char");
  EdgeId e = *cg_.AddEdge(EdgeKind::kIsaType, argv, chr);
  cg_.SetQualifiers(e, "**");
  EXPECT_EQ(cg_.store().GetEdgeString(e, cg_.key_id(PropKey::kQualifiers)),
            "**");
}

TEST_F(CodeGraphTest, ParamIndexAndLinkOrder) {
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "main");
  NodeId argc = cg_.AddNode(NodeKind::kParameter, "argc");
  EdgeId hp = *cg_.AddEdge(EdgeKind::kHasParam, fn, argc);
  cg_.SetParamIndex(hp, 0);
  EXPECT_EQ(
      cg_.store().GetEdgeProperty(hp, cg_.key_id(PropKey::kIndex)).AsInt(), 0);

  NodeId prog = cg_.AddNode(NodeKind::kModule, "prog");
  NodeId obj = cg_.AddNode(NodeKind::kModule, "foo.o");
  EdgeId lf = *cg_.AddEdge(EdgeKind::kLinkedFrom, prog, obj);
  cg_.SetLinkOrder(lf, 1);
  EXPECT_EQ(
      cg_.store().GetEdgeProperty(lf, cg_.key_id(PropKey::kLinkOrder)).AsInt(),
      1);
}

TEST_F(CodeGraphTest, BuildNameIndexCoversAllFields) {
  NodeId fn = cg_.AddNode(NodeKind::kFunction, "pci_read_bases");
  cg_.SetName(fn, "pci_read_bases");
  cg_.SetLongName(fn, "drivers/pci/probe.c::pci_read_bases");
  auto index = cg_.BuildNameIndex();
  EXPECT_EQ(index.Lookup("short_name", "pci_read_bases"),
            std::vector<NodeId>{fn});
  EXPECT_EQ(index.Lookup("type", "function"), std::vector<NodeId>{fn});
  EXPECT_EQ(index.Lookup("long_name", "drivers/pci/probe.c::pci_read_bases"),
            std::vector<NodeId>{fn});
}

TEST_F(CodeGraphTest, EdgeKindOfNonSchemaEdgeIsCount) {
  NodeId a = cg_.AddNode(NodeKind::kFunction, "a");
  NodeId b = cg_.AddNode(NodeKind::kFunction, "b");
  graph::EdgeId e = cg_.store().AddEdge(a, b, "custom_edge");
  EXPECT_EQ(cg_.EdgeKindOf(e), EdgeKind::kCount);
}

}  // namespace
}  // namespace frappe::model
