#include "model/schema.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace frappe::model {
namespace {

TEST(SchemaNamesTest, AllNodeKindsHaveUniqueNames) {
  std::set<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(NodeKind::kCount); ++i) {
    std::string_view name = NodeKindName(static_cast<NodeKind>(i));
    EXPECT_FALSE(name.empty());
    names.insert(std::string(name));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(NodeKind::kCount));
}

TEST(SchemaNamesTest, AllEdgeKindsHaveUniqueNames) {
  std::set<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(EdgeKind::kCount); ++i) {
    std::string_view name = EdgeKindName(static_cast<EdgeKind>(i));
    EXPECT_FALSE(name.empty());
    names.insert(std::string(name));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(EdgeKind::kCount));
}

TEST(SchemaNamesTest, AllPropKeysHaveUniqueNames) {
  std::set<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(PropKey::kCount); ++i) {
    std::string_view name = PropKeyName(static_cast<PropKey>(i));
    EXPECT_FALSE(name.empty());
    names.insert(std::string(name));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(PropKey::kCount));
}

TEST(SchemaNamesTest, PaperTable1NodeTypesPresent) {
  // Spot-check the exact names from paper Table 1.
  for (const char* name :
       {"directory", "enum_def", "enumerator", "field", "file", "function",
        "function_decl", "function_type", "global", "global_decl", "local",
        "macro", "module", "parameter", "primitive", "static_local", "struct",
        "struct_decl", "typedef", "union", "union_decl"}) {
    EXPECT_NE(NodeKindFromName(name), NodeKind::kCount) << name;
  }
}

TEST(SchemaNamesTest, PaperTable1EdgeTypesPresent) {
  for (const char* name :
       {"calls", "casts_to", "compiled_from", "contains", "declares",
        "dereferences", "dereferences_member", "dir_contains", "expands_macro",
        "file_contains", "gets_align_of", "gets_size_of", "has_local",
        "has_param", "has_param_type", "has_ret_type", "includes",
        "interrogates_macro", "isa_type", "link_declares", "link_matches",
        "linked_from", "linked_from_lib", "reads", "reads_member",
        "takes_address_of", "takes_address_of_member", "uses_enumerator",
        "writes", "writes_member"}) {
    EXPECT_NE(EdgeKindFromName(name), EdgeKind::kCount) << name;
  }
}

TEST(SchemaNamesTest, RoundTripNames) {
  EXPECT_EQ(NodeKindFromName(NodeKindName(NodeKind::kStructDecl)),
            NodeKind::kStructDecl);
  EXPECT_EQ(EdgeKindFromName(EdgeKindName(EdgeKind::kWritesMember)),
            EdgeKind::kWritesMember);
  EXPECT_EQ(PropKeyFromName(PropKeyName(PropKey::kUseStartLine)),
            PropKey::kUseStartLine);
}

TEST(SchemaNamesTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(NodeKindFromName("FUNCTION"), NodeKind::kFunction);
  EXPECT_EQ(EdgeKindFromName("Calls"), EdgeKind::kCalls);
  EXPECT_EQ(PropKeyFromName("SHORT_NAME"), PropKey::kShortName);
}

TEST(SchemaNamesTest, UnknownNamesReturnCount) {
  EXPECT_EQ(NodeKindFromName("bogus"), NodeKind::kCount);
  EXPECT_EQ(EdgeKindFromName("bogus"), EdgeKind::kCount);
  EXPECT_EQ(PropKeyFromName("bogus"), PropKey::kCount);
  EXPECT_EQ(NodeGroupFromName("bogus"), NodeGroup::kCount);
  EXPECT_EQ(EdgeGroupFromName("bogus"), EdgeGroup::kCount);
}

TEST(SchemaNamesTest, CanonicalPropertyNameHandlesPaperAliases) {
  // Figure 4 uses NAME_START_COLUMN where Table 2 says NAME_START_COL.
  EXPECT_EQ(CanonicalPropertyName("NAME_START_COLUMN"), "name_start_col");
  EXPECT_EQ(CanonicalPropertyName("use_end_column"), "use_end_col");
  EXPECT_EQ(CanonicalPropertyName("USE_FILE_ID"), "use_file_id");
  EXPECT_EQ(PropKeyFromName("NAME_START_COLUMN"), PropKey::kNameStartCol);
}

TEST(SchemaGroupsTest, Table6GroupsResolve) {
  // Table 6: `(n:container:symbol {name: "foo"})` expands TYPE struct,
  // union, enum...: structs and unions must be in both groups.
  EXPECT_TRUE(InGroup(NodeKind::kStruct, NodeGroup::kContainer));
  EXPECT_TRUE(InGroup(NodeKind::kStruct, NodeGroup::kSymbol));
  EXPECT_TRUE(InGroup(NodeKind::kUnion, NodeGroup::kContainer));
  EXPECT_TRUE(InGroup(NodeKind::kEnumDef, NodeGroup::kContainer));
  EXPECT_FALSE(InGroup(NodeKind::kFunction, NodeGroup::kContainer));
  EXPECT_TRUE(InGroup(NodeKind::kFunction, NodeGroup::kSymbol));
  EXPECT_TRUE(InGroup(NodeKind::kPrimitive, NodeGroup::kType));
  EXPECT_FALSE(InGroup(NodeKind::kPrimitive, NodeGroup::kSymbol));
}

TEST(SchemaGroupsTest, EdgeGroupsPartitionSensibly) {
  EXPECT_TRUE(InGroup(EdgeKind::kLinkedFrom, EdgeGroup::kLink));
  EXPECT_TRUE(InGroup(EdgeKind::kCompiledFrom, EdgeGroup::kLink));
  EXPECT_TRUE(InGroup(EdgeKind::kIncludes, EdgeGroup::kPreprocessor));
  EXPECT_TRUE(InGroup(EdgeKind::kExpandsMacro, EdgeGroup::kPreprocessor));
  EXPECT_TRUE(InGroup(EdgeKind::kFileContains, EdgeGroup::kContainment));
  EXPECT_TRUE(InGroup(EdgeKind::kCalls, EdgeGroup::kReference));
  EXPECT_TRUE(InGroup(EdgeKind::kWrites, EdgeGroup::kReference));
  EXPECT_FALSE(InGroup(EdgeKind::kCalls, EdgeGroup::kLink));
}

TEST(SchemaGroupsTest, EveryEdgeKindHasExactlyOneGroup) {
  for (size_t i = 0; i < static_cast<size_t>(EdgeKind::kCount); ++i) {
    EdgeKind kind = static_cast<EdgeKind>(i);
    int groups = 0;
    for (size_t g = 0; g < static_cast<size_t>(EdgeGroup::kCount); ++g) {
      if (InGroup(kind, static_cast<EdgeGroup>(g))) ++groups;
    }
    EXPECT_EQ(groups, 1) << EdgeKindName(kind);
  }
}

TEST(SchemaGroupsTest, GroupMembersConsistentWithInGroup) {
  for (size_t g = 0; g < static_cast<size_t>(NodeGroup::kCount); ++g) {
    NodeGroup group = static_cast<NodeGroup>(g);
    auto members = GroupMembers(group);
    EXPECT_FALSE(members.empty());
    for (NodeKind kind : members) EXPECT_TRUE(InGroup(kind, group));
  }
}

TEST(SchemaValidationTest, CallsRequiresFunctionLikeEndpoints) {
  EXPECT_TRUE(
      ValidEndpoints(EdgeKind::kCalls, NodeKind::kFunction, NodeKind::kFunction));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kCalls, NodeKind::kFunction,
                             NodeKind::kFunctionDecl));
  EXPECT_FALSE(
      ValidEndpoints(EdgeKind::kCalls, NodeKind::kFile, NodeKind::kFunction));
  EXPECT_FALSE(
      ValidEndpoints(EdgeKind::kCalls, NodeKind::kFunction, NodeKind::kGlobal));
}

TEST(SchemaValidationTest, StructuralEdges) {
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kDirContains, NodeKind::kDirectory,
                             NodeKind::kFile));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kDirContains, NodeKind::kDirectory,
                             NodeKind::kDirectory));
  EXPECT_FALSE(ValidEndpoints(EdgeKind::kDirContains, NodeKind::kFile,
                              NodeKind::kFile));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kCompiledFrom, NodeKind::kModule,
                             NodeKind::kFile));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kLinkedFrom, NodeKind::kModule,
                             NodeKind::kModule));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kIncludes, NodeKind::kFile,
                             NodeKind::kFile));
  EXPECT_FALSE(ValidEndpoints(EdgeKind::kIncludes, NodeKind::kFile,
                              NodeKind::kFunction));
}

TEST(SchemaValidationTest, ReferenceEdges) {
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kWrites, NodeKind::kFunction,
                             NodeKind::kGlobal));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kWritesMember, NodeKind::kFunction,
                             NodeKind::kField));
  EXPECT_FALSE(ValidEndpoints(EdgeKind::kWritesMember, NodeKind::kFunction,
                              NodeKind::kGlobal));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kIsaType, NodeKind::kParameter,
                             NodeKind::kPrimitive));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kUsesEnumerator, NodeKind::kFunction,
                             NodeKind::kEnumerator));
}

TEST(SchemaValidationTest, LinkEdges) {
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kLinkMatches, NodeKind::kFunctionDecl,
                             NodeKind::kFunction));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kLinkMatches, NodeKind::kGlobalDecl,
                             NodeKind::kGlobal));
  EXPECT_FALSE(ValidEndpoints(EdgeKind::kLinkMatches, NodeKind::kFunction,
                              NodeKind::kFunctionDecl));
  EXPECT_TRUE(ValidEndpoints(EdgeKind::kLinkDeclares, NodeKind::kModule,
                             NodeKind::kFunctionDecl));
}

TEST(SchemaInstallTest, FreshStoreGetsIdentityIds) {
  graph::GraphStore store;
  Schema schema = Schema::Install(&store);
  for (size_t i = 0; i < static_cast<size_t>(NodeKind::kCount); ++i) {
    EXPECT_EQ(schema.node_type(static_cast<NodeKind>(i)), i);
  }
  EXPECT_EQ(store.node_types().size(),
            static_cast<size_t>(NodeKind::kCount));
  EXPECT_EQ(store.edge_types().size(),
            static_cast<size_t>(EdgeKind::kCount));
}

TEST(SchemaInstallTest, InstallOnPopulatedStoreStillMaps) {
  graph::GraphStore store;
  store.InternNodeType("custom_type");  // occupy id 0
  Schema schema = Schema::Install(&store);
  graph::TypeId fn = schema.node_type(NodeKind::kFunction);
  EXPECT_EQ(store.node_types().Name(fn), "function");
  EXPECT_EQ(schema.node_kind(fn), NodeKind::kFunction);
  EXPECT_EQ(schema.node_kind(store.node_types().Find("custom_type")),
            NodeKind::kCount);
}

TEST(SchemaInstallTest, InstallIsIdempotent) {
  graph::GraphStore store;
  Schema a = Schema::Install(&store);
  Schema b = Schema::Install(&store);
  EXPECT_EQ(a.node_type(NodeKind::kMacro), b.node_type(NodeKind::kMacro));
  EXPECT_EQ(store.node_types().size(),
            static_cast<size_t>(NodeKind::kCount));
}

}  // namespace
}  // namespace frappe::model
