#include "extractor/extract.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "extractor/build_model.h"
#include "extractor/c_parser.h"

namespace frappe::extractor {
namespace {

using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;

// Compiles `source` as t.c and returns the graph for inspection.
class ExtractTest : public ::testing::Test {
 protected:
  void Build(const std::string& source) {
    vfs_.AddFile("t.c", source);
    driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
    auto result = driver_->Compile("t.c", "t.o");
    ASSERT_TRUE(result.ok()) << result.status();
  }

  // Finds the unique node of `kind` with `short_name`.
  NodeId Find(NodeKind kind, std::string_view name) {
    NodeId found = graph::kInvalidNode;
    graph_.view().ForEachNode([&](NodeId id) {
      if (graph_.KindOf(id) == kind && graph_.ShortName(id) == name) {
        EXPECT_EQ(found, graph::kInvalidNode)
            << "duplicate " << name << " nodes";
        found = id;
      }
    });
    EXPECT_NE(found, graph::kInvalidNode)
        << "no " << model::NodeKindName(kind) << " named " << name;
    return found;
  }

  // Count of `kind` edges src -> dst.
  int EdgeCount(EdgeKind kind, NodeId src, NodeId dst) {
    int count = 0;
    graph_.store().ForEachEdge(
        src, graph::Direction::kOut, [&](graph::EdgeId e, NodeId target) {
          if (target == dst && graph_.EdgeKindOf(e) == kind) ++count;
          return true;
        });
    return count;
  }

  bool HasEdge(EdgeKind kind, NodeId src, NodeId dst) {
    return EdgeCount(kind, src, dst) > 0;
  }

  Vfs vfs_;
  model::CodeGraph graph_;
  std::unique_ptr<BuildDriver> driver_;
};

TEST_F(ExtractTest, CallsEdgeWithRanges) {
  Build("int callee(void) { return 1; }\n"
        "int caller(void) { return callee(); }\n");
  NodeId caller = Find(NodeKind::kFunction, "caller");
  NodeId callee = Find(NodeKind::kFunction, "callee");
  EXPECT_EQ(EdgeCount(EdgeKind::kCalls, caller, callee), 1);
  // The call edge carries use/name ranges on line 2.
  graph_.store().ForEachEdge(
      caller, graph::Direction::kOut, [&](graph::EdgeId e, NodeId) {
        if (graph_.EdgeKindOf(e) != EdgeKind::kCalls) return true;
        model::SourceRange use = graph_.UseRange(e);
        EXPECT_EQ(use.start_line, 2);
        model::SourceRange name = graph_.NameRange(e);
        EXPECT_EQ(name.start_line, 2);
        EXPECT_EQ(name.end_col - name.start_col + 1, 6);  // "callee"
        return true;
      });
}

TEST_F(ExtractTest, CallToPrototypeTargetsDecl) {
  Build("int ext(int);\nint f(void) { return ext(1); }\n");
  NodeId f = Find(NodeKind::kFunction, "f");
  NodeId decl = Find(NodeKind::kFunctionDecl, "ext");
  EXPECT_TRUE(HasEdge(EdgeKind::kCalls, f, decl));
}

TEST_F(ExtractTest, ImplicitDeclarationCreated) {
  Build("int f(void) { return mystery(); }\n");
  NodeId f = Find(NodeKind::kFunction, "f");
  NodeId decl = Find(NodeKind::kFunctionDecl, "mystery");
  EXPECT_TRUE(HasEdge(EdgeKind::kCalls, f, decl));
}

TEST_F(ExtractTest, DeclaresEdgeFromPrototypeToDefinition) {
  Build("int bar(int);\nint bar(int input) { return input; }\n");
  NodeId decl = Find(NodeKind::kFunctionDecl, "bar");
  NodeId def = Find(NodeKind::kFunction, "bar");
  EXPECT_TRUE(HasEdge(EdgeKind::kDeclares, decl, def));
}

TEST_F(ExtractTest, GlobalReadsAndWrites) {
  Build("int counter;\n"
        "void bump(void) { counter = counter + 1; }\n");
  NodeId fn = Find(NodeKind::kFunction, "bump");
  NodeId global = Find(NodeKind::kGlobal, "counter");
  EXPECT_EQ(EdgeCount(EdgeKind::kWrites, fn, global), 1);
  EXPECT_EQ(EdgeCount(EdgeKind::kReads, fn, global), 1);
}

TEST_F(ExtractTest, CompoundAssignReadsAndWrites) {
  Build("int counter;\nvoid bump(void) { counter += 2; }\n");
  NodeId fn = Find(NodeKind::kFunction, "bump");
  NodeId global = Find(NodeKind::kGlobal, "counter");
  EXPECT_EQ(EdgeCount(EdgeKind::kWrites, fn, global), 1);
  EXPECT_EQ(EdgeCount(EdgeKind::kReads, fn, global), 1);
}

TEST_F(ExtractTest, LocalsAndParamsModeled) {
  Build("int f(int input) { int local = input; static int s; return local; }\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  NodeId param = Find(NodeKind::kParameter, "input");
  NodeId local = Find(NodeKind::kLocal, "local");
  NodeId stat = Find(NodeKind::kStaticLocal, "s");
  EXPECT_TRUE(HasEdge(EdgeKind::kHasParam, fn, param));
  EXPECT_TRUE(HasEdge(EdgeKind::kHasLocal, fn, local));
  EXPECT_TRUE(HasEdge(EdgeKind::kHasLocal, fn, stat));
  EXPECT_TRUE(HasEdge(EdgeKind::kReads, fn, param));
  // Initialization counts as the first write.
  EXPECT_TRUE(HasEdge(EdgeKind::kWrites, fn, local));
}

TEST_F(ExtractTest, MemberAccessEdges) {
  Build("struct dev { int state; int id; };\n"
        "void poke(struct dev *d) {\n"
        "  d->state = d->id;\n"
        "}\n");
  NodeId fn = Find(NodeKind::kFunction, "poke");
  NodeId state = Find(NodeKind::kField, "state");
  NodeId id = Find(NodeKind::kField, "id");
  EXPECT_TRUE(HasEdge(EdgeKind::kWritesMember, fn, state));
  EXPECT_TRUE(HasEdge(EdgeKind::kReadsMember, fn, id));
  // `d->` also reads and dereferences the pointer parameter.
  NodeId d = Find(NodeKind::kParameter, "d");
  EXPECT_TRUE(HasEdge(EdgeKind::kReads, fn, d));
  EXPECT_TRUE(HasEdge(EdgeKind::kDereferences, fn, d));
}

TEST_F(ExtractTest, FieldResolutionThroughTypedef) {
  Build("struct page { int flags; };\n"
        "typedef struct page page_t;\n"
        "int get(page_t *p) { return p->flags; }\n");
  NodeId fn = Find(NodeKind::kFunction, "get");
  NodeId flags = Find(NodeKind::kField, "flags");
  EXPECT_TRUE(HasEdge(EdgeKind::kReadsMember, fn, flags));
}

TEST_F(ExtractTest, AddressOfEdges) {
  Build("struct dev { int state; };\n"
        "int g;\n"
        "void f(struct dev *d) { int *p = &g; int *q = &d->state; }\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  EXPECT_TRUE(HasEdge(EdgeKind::kTakesAddressOf, fn,
                      Find(NodeKind::kGlobal, "g")));
  EXPECT_TRUE(HasEdge(EdgeKind::kTakesAddressOfMember, fn,
                      Find(NodeKind::kField, "state")));
}

TEST_F(ExtractTest, FunctionReferenceIsAddressOf) {
  Build("int handler(void) { return 0; }\n"
        "int (*table)(void) = 0;\n"
        "void init(void) { table = handler; }\n");
  NodeId init = Find(NodeKind::kFunction, "init");
  NodeId handler = Find(NodeKind::kFunction, "handler");
  EXPECT_TRUE(HasEdge(EdgeKind::kTakesAddressOf, init, handler));
}

TEST_F(ExtractTest, DereferenceEdge) {
  Build("void f(int *p) { *p = 1; }\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  NodeId p = Find(NodeKind::kParameter, "p");
  EXPECT_TRUE(HasEdge(EdgeKind::kDereferences, fn, p));
}

TEST_F(ExtractTest, CastAndSizeofEdges) {
  Build("struct page { int flags; };\n"
        "unsigned long f(void *v) {\n"
        "  struct page *p = (struct page *)v;\n"
        "  return sizeof(struct page) + _Alignof(struct page);\n"
        "}\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  NodeId page = Find(NodeKind::kStruct, "page");
  EXPECT_TRUE(HasEdge(EdgeKind::kCastsTo, fn, page));
  EXPECT_TRUE(HasEdge(EdgeKind::kGetsSizeOf, fn, page));
  EXPECT_TRUE(HasEdge(EdgeKind::kGetsAlignOf, fn, page));
}

TEST_F(ExtractTest, EnumeratorUseAndValue) {
  Build("enum state { IDLE, BUSY = 4 };\n"
        "int f(void) { return BUSY; }\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  NodeId busy = Find(NodeKind::kEnumerator, "BUSY");
  EXPECT_TRUE(HasEdge(EdgeKind::kUsesEnumerator, fn, busy));
  EXPECT_EQ(graph_.store()
                .GetNodeProperty(busy, graph_.key_id(model::PropKey::kValue))
                .AsInt(),
            4);
  NodeId en = Find(NodeKind::kEnumDef, "state");
  EXPECT_TRUE(HasEdge(EdgeKind::kContains, en, busy));
}

TEST_F(ExtractTest, IsaTypeWithQualifiersAndArrays) {
  Build("const char *names[4];\n");
  NodeId global = Find(NodeKind::kGlobal, "names");
  NodeId chr = Find(NodeKind::kPrimitive, "char");
  graph_.store().ForEachEdge(
      global, graph::Direction::kOut, [&](graph::EdgeId e, NodeId target) {
        if (graph_.EdgeKindOf(e) != EdgeKind::kIsaType) return true;
        EXPECT_EQ(target, chr);
        EXPECT_EQ(graph_.store().GetEdgeString(
                      e, graph_.key_id(model::PropKey::kQualifiers)),
                  "]*c");
        EXPECT_EQ(graph_.store().GetEdgeString(
                      e, graph_.key_id(model::PropKey::kArrayLengths)),
                  "4");
        return true;
      });
}

TEST_F(ExtractTest, BitWidthOnContains) {
  Build("struct flags { int ro : 1; };\n");
  NodeId record = Find(NodeKind::kStruct, "flags");
  NodeId field = Find(NodeKind::kField, "ro");
  graph_.store().ForEachEdge(
      record, graph::Direction::kOut, [&](graph::EdgeId e, NodeId target) {
        if (target == field && graph_.EdgeKindOf(e) == EdgeKind::kContains) {
          EXPECT_EQ(graph_.store()
                        .GetEdgeProperty(
                            e, graph_.key_id(model::PropKey::kBitWidth))
                        .AsInt(),
                    1);
        }
        return true;
      });
}

TEST_F(ExtractTest, MacroExpansionAttributedToFunction) {
  Build("#define LIMIT 64\n"
        "int f(void) {\n"
        "  return LIMIT;\n"
        "}\n");
  NodeId fn = Find(NodeKind::kFunction, "f");
  NodeId macro = Find(NodeKind::kMacro, "LIMIT");
  EXPECT_TRUE(HasEdge(EdgeKind::kExpandsMacro, fn, macro));
}

TEST_F(ExtractTest, MacroInterrogationAttributedToFile) {
  Build("#ifdef CONFIG_SMP\nint smp;\n#endif\nint x;\n");
  NodeId macro = Find(NodeKind::kMacro, "CONFIG_SMP");
  NodeId file = Find(NodeKind::kFile, "t.c");
  EXPECT_TRUE(HasEdge(EdgeKind::kInterrogatesMacro, file, macro));
}

TEST_F(ExtractTest, VariadicFlagSet) {
  Build("int printk(const char *fmt, ...);\n");
  NodeId decl = Find(NodeKind::kFunctionDecl, "printk");
  EXPECT_TRUE(graph_.store()
                  .GetNodeProperty(decl,
                                   graph_.key_id(model::PropKey::kVariadic))
                  .AsBool());
}

TEST_F(ExtractTest, InMacroFlagOnGeneratedFunction) {
  Build("#define DEFINE_GETTER(n) int get_##n(void) { return 0; }\n"
        "DEFINE_GETTER(id)\n");
  NodeId fn = Find(NodeKind::kFunction, "get_id");
  EXPECT_TRUE(graph_.store()
                  .GetNodeProperty(fn,
                                   graph_.key_id(model::PropKey::kInMacro))
                  .AsBool());
}

TEST_F(ExtractTest, DirectoryChainBuilt) {
  vfs_.AddFile("drivers/scsi/sr.c", "int sr_init(void) { return 0; }\n");
  driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
  ASSERT_TRUE(driver_->Compile("drivers/scsi/sr.c", "sr.o").ok());
  NodeId drivers = Find(NodeKind::kDirectory, "drivers");
  NodeId scsi = Find(NodeKind::kDirectory, "scsi");
  NodeId file = Find(NodeKind::kFile, "sr.c");
  EXPECT_TRUE(HasEdge(EdgeKind::kDirContains, drivers, scsi));
  EXPECT_TRUE(HasEdge(EdgeKind::kDirContains, scsi, file));
  NodeId fn = Find(NodeKind::kFunction, "sr_init");
  EXPECT_TRUE(HasEdge(EdgeKind::kFileContains, file, fn));
}

TEST_F(ExtractTest, SharedHeaderEntitiesDeduplicated) {
  vfs_.AddFile("common.h", "int shared(void);\nstruct s { int x; };\n");
  vfs_.AddFile("a.c", "#include \"common.h\"\nint a(void) { return shared(); }\n");
  vfs_.AddFile("b.c", "#include \"common.h\"\nint b(void) { return shared(); }\n");
  driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
  ASSERT_TRUE(driver_->Compile("a.c", "a.o").ok());
  ASSERT_TRUE(driver_->Compile("b.c", "b.o").ok());
  // Find() asserts uniqueness: only one decl node despite two units.
  NodeId decl = Find(NodeKind::kFunctionDecl, "shared");
  NodeId a = Find(NodeKind::kFunction, "a");
  NodeId b = Find(NodeKind::kFunction, "b");
  EXPECT_TRUE(HasEdge(EdgeKind::kCalls, a, decl));
  EXPECT_TRUE(HasEdge(EdgeKind::kCalls, b, decl));
  Find(NodeKind::kStruct, "s");  // asserts single struct node
}

TEST_F(ExtractTest, LinkResolvesAcrossUnits) {
  vfs_.AddFile("api.h", "int impl(void);\n");
  vfs_.AddFile("user.c", "#include \"api.h\"\nint use(void) { return impl(); }\n");
  vfs_.AddFile("impl.c", "#include \"api.h\"\nint impl(void) { return 7; }\n");
  driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
  ASSERT_TRUE(driver_->Run("gcc user.c -c -o user.o").ok());
  ASSERT_TRUE(driver_->Run("gcc impl.c -c -o impl.o").ok());
  ASSERT_TRUE(driver_->Run("gcc user.o impl.o -o prog").ok());

  NodeId prog = *driver_->ModuleFor("prog");
  NodeId decl = Find(NodeKind::kFunctionDecl, "impl");
  NodeId def = Find(NodeKind::kFunction, "impl");
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkDeclares, prog, decl));
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkMatches, decl, def));
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkedFrom, prog,
                      *driver_->ModuleFor("user.o")));
  EXPECT_EQ(driver_->stats().symbols_unresolved, 0u);
  EXPECT_GE(driver_->stats().symbols_resolved, 1u);
}

TEST_F(ExtractTest, IncludesEdgeEmitted) {
  vfs_.AddFile("h.h", "int decl(void);\n");
  vfs_.AddFile("m.c", "#include \"h.h\"\n");
  driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
  ASSERT_TRUE(driver_->Compile("m.c", "m.o").ok());
  EXPECT_TRUE(HasEdge(EdgeKind::kIncludes, Find(NodeKind::kFile, "m.c"),
                      Find(NodeKind::kFile, "h.h")));
}

}  // namespace
}  // namespace frappe::extractor
