// End-to-end validation of the paper's Figure 2: the three-file example
// program, compiled with the paper's exact command lines, must produce the
// dependency graph the paper draws.

#include <gtest/gtest.h>

#include "extractor/build_model.h"
#include "model/code_graph.h"

namespace frappe::extractor {
namespace {

using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;
using model::PropKey;

class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    vfs_.AddFile("foo.h", "int bar(int);\n");
    vfs_.AddFile("foo.c",
                 "#include \"foo.h\"\n"
                 "int bar(int input) {\n"
                 "  return input;\n"
                 "}\n");
    vfs_.AddFile("main.c",
                 "#include \"foo.h\"\n"
                 "int main(int argc, char **argv) {\n"
                 "  return bar(argc);\n"
                 "}\n");
    driver_ = std::make_unique<BuildDriver>(&vfs_, &graph_);
    // The paper's build (Figure 2): gcc foo.c -c -o foo.o
    //                               gcc main.c foo.o -o prog
    ASSERT_TRUE(driver_->Run("gcc foo.c -c -o foo.o").ok());
    ASSERT_TRUE(driver_->Run("gcc main.c foo.o -o prog").ok());
  }

  NodeId Find(NodeKind kind, std::string_view name) {
    NodeId found = graph::kInvalidNode;
    graph_.view().ForEachNode([&](NodeId id) {
      if (graph_.KindOf(id) == kind && graph_.ShortName(id) == name) {
        found = id;
      }
    });
    EXPECT_NE(found, graph::kInvalidNode)
        << model::NodeKindName(kind) << " " << name;
    return found;
  }

  bool HasEdge(EdgeKind kind, NodeId src, NodeId dst) {
    bool found = false;
    graph_.store().ForEachEdge(
        src, graph::Direction::kOut, [&](graph::EdgeId e, NodeId target) {
          if (target == dst && graph_.EdgeKindOf(e) == kind) found = true;
          return true;
        });
    return found;
  }

  Vfs vfs_;
  model::CodeGraph graph_;
  std::unique_ptr<BuildDriver> driver_;
};

TEST_F(Figure2Test, AllPaperNodesExist) {
  // "The nodes of this graph are the executable program prog, object file
  //  foo.o, source files main.c, foo.h and foo.c, function main and bar,
  //  formal parameters argv, argc and input, and their types char and int."
  Find(NodeKind::kModule, "prog");
  Find(NodeKind::kModule, "foo.o");
  Find(NodeKind::kFile, "main.c");
  Find(NodeKind::kFile, "foo.h");
  Find(NodeKind::kFile, "foo.c");
  Find(NodeKind::kFunction, "main");
  Find(NodeKind::kFunction, "bar");
  Find(NodeKind::kParameter, "argv");
  Find(NodeKind::kParameter, "argc");
  Find(NodeKind::kParameter, "input");
  Find(NodeKind::kPrimitive, "char");
  Find(NodeKind::kPrimitive, "int");
}

TEST_F(Figure2Test, BuildEdges) {
  NodeId prog = Find(NodeKind::kModule, "prog");
  NodeId foo_o = Find(NodeKind::kModule, "foo.o");
  EXPECT_TRUE(HasEdge(EdgeKind::kCompiledFrom, foo_o,
                      Find(NodeKind::kFile, "foo.c")));
  EXPECT_TRUE(HasEdge(EdgeKind::kCompiledFrom, prog,
                      Find(NodeKind::kFile, "main.c")));
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkedFrom, prog, foo_o));
}

TEST_F(Figure2Test, IncludeEdges) {
  NodeId foo_h = Find(NodeKind::kFile, "foo.h");
  EXPECT_TRUE(HasEdge(EdgeKind::kIncludes, Find(NodeKind::kFile, "foo.c"),
                      foo_h));
  EXPECT_TRUE(HasEdge(EdgeKind::kIncludes, Find(NodeKind::kFile, "main.c"),
                      foo_h));
}

TEST_F(Figure2Test, FileContainsEdges) {
  EXPECT_TRUE(HasEdge(EdgeKind::kFileContains,
                      Find(NodeKind::kFile, "main.c"),
                      Find(NodeKind::kFunction, "main")));
  EXPECT_TRUE(HasEdge(EdgeKind::kFileContains,
                      Find(NodeKind::kFile, "foo.c"),
                      Find(NodeKind::kFunction, "bar")));
  EXPECT_TRUE(HasEdge(EdgeKind::kFileContains,
                      Find(NodeKind::kFile, "foo.h"),
                      Find(NodeKind::kFunctionDecl, "bar")));
}

TEST_F(Figure2Test, CallResolvesThroughHeaderDeclarationAndLink) {
  NodeId main_fn = Find(NodeKind::kFunction, "main");
  NodeId bar_decl = Find(NodeKind::kFunctionDecl, "bar");
  NodeId bar_def = Find(NodeKind::kFunction, "bar");
  // main calls the declaration visible in its unit...
  EXPECT_TRUE(HasEdge(EdgeKind::kCalls, main_fn, bar_decl));
  // ...which the unit (foo.c) and the linker tie to the definition.
  EXPECT_TRUE(HasEdge(EdgeKind::kDeclares, bar_decl, bar_def));
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkMatches, bar_decl, bar_def));
  EXPECT_TRUE(HasEdge(EdgeKind::kLinkDeclares,
                      Find(NodeKind::kModule, "prog"), bar_decl));
}

TEST_F(Figure2Test, ParameterEdgesAndTypes) {
  NodeId main_fn = Find(NodeKind::kFunction, "main");
  NodeId argc = Find(NodeKind::kParameter, "argc");
  NodeId argv = Find(NodeKind::kParameter, "argv");
  EXPECT_TRUE(HasEdge(EdgeKind::kHasParam, main_fn, argc));
  EXPECT_TRUE(HasEdge(EdgeKind::kHasParam, main_fn, argv));
  EXPECT_TRUE(HasEdge(EdgeKind::kIsaType, argc,
                      Find(NodeKind::kPrimitive, "int")));
  EXPECT_TRUE(HasEdge(EdgeKind::kIsaType, argv,
                      Find(NodeKind::kPrimitive, "char")));
  // main reads argc when passing it to bar.
  EXPECT_TRUE(HasEdge(EdgeKind::kReads, main_fn, argc));
  // bar returns its input.
  EXPECT_TRUE(HasEdge(EdgeKind::kReads, Find(NodeKind::kFunction, "bar"),
                      Find(NodeKind::kParameter, "input")));
}

TEST_F(Figure2Test, ArgvQualifierIsDoublePointer) {
  // "the edge isa_type from argv to char makes use of the QUALIFIER ** to
  //  denote the correct signature for argv."
  NodeId argv = Find(NodeKind::kParameter, "argv");
  bool checked = false;
  graph_.store().ForEachEdge(
      argv, graph::Direction::kOut, [&](graph::EdgeId e, NodeId) {
        if (graph_.EdgeKindOf(e) != EdgeKind::kIsaType) return true;
        EXPECT_EQ(graph_.store().GetEdgeString(
                      e, graph_.key_id(PropKey::kQualifiers)),
                  "**");
        checked = true;
        return true;
      });
  EXPECT_TRUE(checked);
}

TEST_F(Figure2Test, ReturnTypes) {
  EXPECT_TRUE(HasEdge(EdgeKind::kHasRetType,
                      Find(NodeKind::kFunction, "main"),
                      Find(NodeKind::kPrimitive, "int")));
  EXPECT_TRUE(HasEdge(EdgeKind::kHasRetType,
                      Find(NodeKind::kFunction, "bar"),
                      Find(NodeKind::kPrimitive, "int")));
}

}  // namespace
}  // namespace frappe::extractor
