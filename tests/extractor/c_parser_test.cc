#include "extractor/c_parser.h"

#include <gtest/gtest.h>

namespace frappe::extractor {
namespace {

TranslationUnit MustParse(const std::string& source) {
  Vfs vfs;
  vfs.AddFile("t.c", source);
  auto pp = Preprocess(vfs, "t.c");
  EXPECT_TRUE(pp.ok()) << pp.status();
  auto unit = ParseUnit(*pp);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return unit.ok() ? std::move(*unit) : TranslationUnit{};
}

TEST(CParserTest, FunctionDefinitionAndPrototype) {
  auto unit = MustParse("int bar(int);\n"
                        "int bar(int input) { return input; }\n");
  ASSERT_EQ(unit.functions.size(), 2u);
  EXPECT_EQ(unit.functions[0].name, "bar");
  EXPECT_FALSE(unit.functions[0].is_definition);
  EXPECT_TRUE(unit.functions[1].is_definition);
  ASSERT_EQ(unit.functions[1].params.size(), 1u);
  EXPECT_EQ(unit.functions[1].params[0].name, "input");
  EXPECT_EQ(unit.functions[1].params[0].type.name, "int");
}

TEST(CParserTest, StaticAndVariadic) {
  auto unit = MustParse("static int log_it(const char *fmt, ...) { return 0; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_TRUE(unit.functions[0].is_static);
  EXPECT_TRUE(unit.functions[0].variadic);
  EXPECT_TRUE(unit.functions[0].params[0].type.is_const);
  EXPECT_EQ(unit.functions[0].params[0].type.pointer_depth, 1);
}

TEST(CParserTest, VoidParameterList) {
  auto unit = MustParse("int f(void) { return 1; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_TRUE(unit.functions[0].params.empty());
}

TEST(CParserTest, GlobalsWithQualifiersAndArrays) {
  auto unit = MustParse("static unsigned long counters[8];\n"
                        "extern int debug_level;\n"
                        "char *volatile p, buf[4][2];\n");
  ASSERT_EQ(unit.globals.size(), 4u);
  EXPECT_TRUE(unit.globals[0].is_static);
  EXPECT_EQ(unit.globals[0].decl.type.name, "unsigned long");
  EXPECT_EQ(unit.globals[0].decl.type.array_dims,
            std::vector<int64_t>{8});
  EXPECT_TRUE(unit.globals[1].is_extern);
  EXPECT_EQ(unit.globals[2].decl.name, "p");
  EXPECT_TRUE(unit.globals[2].decl.type.is_volatile);
  EXPECT_EQ(unit.globals[2].decl.type.pointer_depth, 1);
  EXPECT_EQ(unit.globals[3].decl.name, "buf");
  EXPECT_EQ(unit.globals[3].decl.type.array_dims,
            (std::vector<int64_t>{4, 2}));
}

TEST(CParserTest, StructWithBitfieldsAndNestedPointer) {
  auto unit = MustParse(
      "struct packet_command {\n"
      "  unsigned char cmd[12];\n"
      "  int quiet : 1;\n"
      "  struct packet_command *next;\n"
      "};\n");
  ASSERT_EQ(unit.records.size(), 1u);
  const RecordDecl& record = unit.records[0];
  EXPECT_EQ(record.tag, "packet_command");
  EXPECT_FALSE(record.is_union);
  ASSERT_EQ(record.fields.size(), 3u);
  EXPECT_EQ(record.fields[0].name, "cmd");
  EXPECT_EQ(record.fields[0].type.array_dims, std::vector<int64_t>{12});
  EXPECT_EQ(record.fields[1].bit_width, 1);
  EXPECT_EQ(record.fields[2].type.pointer_depth, 1);
  EXPECT_EQ(record.fields[2].type.base, TypeName::Base::kStruct);
}

TEST(CParserTest, UnionAndAnonymousStruct) {
  auto unit = MustParse("union u { int i; float f; };\n"
                        "struct { int x; } instance;\n");
  ASSERT_EQ(unit.records.size(), 2u);
  EXPECT_TRUE(unit.records[0].is_union);
  EXPECT_FALSE(unit.records[1].tag.empty());  // generated anonymous tag
  ASSERT_EQ(unit.globals.size(), 1u);
  EXPECT_EQ(unit.globals[0].decl.name, "instance");
}

TEST(CParserTest, EnumValues) {
  auto unit = MustParse("enum state { IDLE, BUSY = 5, DEAD, GONE = -2 };\n");
  ASSERT_EQ(unit.enums.size(), 1u);
  const EnumDecl& decl = unit.enums[0];
  ASSERT_EQ(decl.enumerators.size(), 4u);
  EXPECT_EQ(decl.enumerators[0].value, 0);
  EXPECT_EQ(decl.enumerators[1].value, 5);
  EXPECT_EQ(decl.enumerators[2].value, 6);
  EXPECT_EQ(decl.enumerators[3].value, -2);
}

TEST(CParserTest, TypedefAndUseAsDeclaration) {
  auto unit = MustParse("typedef unsigned int u32;\n"
                        "typedef struct page *page_ptr;\n"
                        "u32 counter;\n"
                        "int f(void) { u32 local = 1; return local; }\n");
  ASSERT_EQ(unit.typedefs.size(), 2u);
  EXPECT_EQ(unit.typedefs[0].name, "u32");
  EXPECT_EQ(unit.typedefs[1].underlying.pointer_depth, 1);
  ASSERT_EQ(unit.globals.size(), 1u);
  EXPECT_EQ(unit.globals[0].decl.type.base, TypeName::Base::kTypedefName);
  // `u32 local` inside the body parses as a declaration.
  const Stmt& body = *unit.functions[0].body;
  EXPECT_EQ(body.children[0]->kind, StmtKind::kDecl);
}

TEST(CParserTest, FunctionPointerDeclarator) {
  auto unit = MustParse("int (*handler)(int, char *);\n");
  ASSERT_EQ(unit.globals.size(), 1u);
  EXPECT_EQ(unit.globals[0].decl.name, "handler");
  EXPECT_TRUE(unit.globals[0].decl.type.function_pointer);
}

TEST(CParserTest, StatementsAll) {
  auto unit = MustParse(
      "int f(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; i++) { acc += i; }\n"
      "  while (acc > 100) acc -= 10;\n"
      "  do { acc++; } while (acc < 5);\n"
      "  switch (n) { case 1: break; default: acc = 0; }\n"
      "  if (acc) return acc; else return -1;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Stmt& body = *unit.functions[0].body;
  ASSERT_EQ(body.children.size(), 6u);
  EXPECT_EQ(body.children[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(body.children[1]->kind, StmtKind::kFor);
  EXPECT_EQ(body.children[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body.children[3]->kind, StmtKind::kDoWhile);
  EXPECT_EQ(body.children[4]->kind, StmtKind::kSwitch);
  EXPECT_EQ(body.children[5]->kind, StmtKind::kIf);
}

TEST(CParserTest, GotoAndLabels) {
  auto unit = MustParse("int f(void) { goto out; out: return 0; }\n");
  const Stmt& body = *unit.functions[0].body;
  EXPECT_EQ(body.children[0]->kind, StmtKind::kGoto);
  EXPECT_EQ(body.children[0]->label, "out");
  EXPECT_EQ(body.children[1]->kind, StmtKind::kLabel);
}

TEST(CParserTest, ExpressionShapes) {
  auto unit = MustParse(
      "int f(struct s *p, int a[]) {\n"
      "  p->count = a[0] + sizeof(struct s);\n"
      "  int x = (int)p->flags;\n"
      "  return *p->next ? -x : x++;\n"
      "}\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Stmt& body = *unit.functions[0].body;
  ASSERT_EQ(body.children.size(), 3u);
  const Expr& assign = *body.children[0]->expr;
  EXPECT_EQ(assign.kind, ExprKind::kBinary);
  EXPECT_EQ(assign.text, "=");
  EXPECT_EQ(assign.lhs->kind, ExprKind::kMember);
  EXPECT_TRUE(assign.lhs->arrow);
}

TEST(CParserTest, CallWithArguments) {
  auto unit = MustParse("int g(int); int f(void) { return g(g(1) + 2); }\n");
  const Stmt& ret = *unit.functions[1].body->children[0];
  EXPECT_EQ(ret.kind, StmtKind::kReturn);
  EXPECT_EQ(ret.expr->kind, ExprKind::kCall);
  ASSERT_EQ(ret.expr->args.size(), 1u);
  EXPECT_EQ(ret.expr->args[0]->kind, ExprKind::kBinary);
}

TEST(CParserTest, InitializerListsWithDesignators) {
  auto unit = MustParse(
      "struct ops { int (*open)(void); int id; };\n"
      "int my_open(void);\n"
      "struct ops table = { .open = my_open, .id = 3 };\n"
      "int arr[3] = {1, 2, 3};\n");
  ASSERT_EQ(unit.globals.size(), 2u);
  EXPECT_EQ(unit.globals[0].decl.init->kind, ExprKind::kInitList);
  EXPECT_EQ(unit.globals[1].decl.init->args.size(), 3u);
}

TEST(CParserTest, AttributesSkipped) {
  auto unit = MustParse(
      "static int __attribute__((unused)) helper(void) { return 0; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].name, "helper");
}

TEST(CParserTest, SyntaxErrorReported) {
  Vfs vfs;
  vfs.AddFile("t.c", "int f( { }\n");
  auto pp = Preprocess(vfs, "t.c");
  ASSERT_TRUE(pp.ok());
  EXPECT_FALSE(ParseUnit(*pp).ok());
}


TEST(CParserTest, GnuElvisOperator) {
  auto unit = MustParse("int f(int a) { return a ?: -1; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  const Stmt& ret = *unit.functions[0].body->children[0];
  EXPECT_EQ(ret.expr->kind, ExprKind::kTernary);
}

TEST(CParserTest, GnuStatementExpressionIsOpaque) {
  auto unit = MustParse(
      "#define min(a, b) ({ int _x = (a); int _y = (b); _x < _y ? _x : _y; })\n"
      "int f(int p, int q) { return min(p, q) + 1; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].body->children[0]->kind, StmtKind::kReturn);
}

TEST(CParserTest, NestedTernaries) {
  auto unit = MustParse("int f(int a) { return a > 0 ? 1 : a < 0 ? -1 : 0; }\n");
  const Stmt& ret = *unit.functions[0].body->children[0];
  EXPECT_EQ(ret.expr->kind, ExprKind::kTernary);
  EXPECT_EQ(ret.expr->third->kind, ExprKind::kTernary);
}

TEST(CParserTest, CommaExpression) {
  auto unit = MustParse("int f(int a) { int b; b = (a++, a + 1); return b; }\n");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].body->children.size(), 3u);
}

TEST(CParserTest, MultiDeclaratorLocals) {
  auto unit = MustParse("void f(void) { int a = 1, *b = 0, c[3]; }\n");
  const Stmt& decl = *unit.functions[0].body->children[0];
  ASSERT_EQ(decl.decls.size(), 3u);
  EXPECT_EQ(decl.decls[1].type.pointer_depth, 1);
  EXPECT_EQ(decl.decls[2].type.array_dims, std::vector<int64_t>{3});
}

}  // namespace
}  // namespace frappe::extractor
