#include "extractor/vfs.h"

#include <gtest/gtest.h>

namespace frappe::extractor {
namespace {

TEST(PathTest, Normalize) {
  EXPECT_EQ(NormalizePath("a/b/c.h"), "a/b/c.h");
  EXPECT_EQ(NormalizePath("a//b/./c.h"), "a/b/c.h");
  EXPECT_EQ(NormalizePath("a/x/../b/c.h"), "a/b/c.h");
  EXPECT_EQ(NormalizePath("./c.h"), "c.h");
  EXPECT_EQ(NormalizePath("../c.h"), "c.h");  // clamped at root
  EXPECT_EQ(NormalizePath(""), "");
}

TEST(PathTest, DirAndBase) {
  EXPECT_EQ(DirName("a/b/c.h"), "a/b");
  EXPECT_EQ(DirName("c.h"), "");
  EXPECT_EQ(BaseName("a/b/c.h"), "c.h");
  EXPECT_EQ(BaseName("c.h"), "c.h");
}

TEST(VfsTest, AddReadExists) {
  Vfs vfs;
  vfs.AddFile("src/main.c", "int main;");
  EXPECT_TRUE(vfs.Exists("src/main.c"));
  EXPECT_TRUE(vfs.Exists("src//main.c"));  // normalized
  EXPECT_FALSE(vfs.Exists("src/other.c"));
  auto content = vfs.Read("src/main.c");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "int main;");
  EXPECT_FALSE(vfs.Read("nope.c").ok());
}

TEST(VfsTest, OverwriteReplaces) {
  Vfs vfs;
  vfs.AddFile("a.c", "old");
  vfs.AddFile("a.c", "new");
  EXPECT_EQ(*vfs.Read("a.c"), "new");
  EXPECT_EQ(vfs.FileCount(), 1u);
}

TEST(VfsTest, DirectoriesImplied) {
  Vfs vfs;
  vfs.AddFile("drivers/pci/probe.c", "x");
  vfs.AddFile("drivers/scsi/sr.c", "y");
  vfs.AddFile("top.c", "z");
  auto dirs = vfs.Directories();
  EXPECT_EQ(dirs, (std::vector<std::string>{"drivers", "drivers/pci",
                                            "drivers/scsi"}));
}

TEST(VfsTest, ResolveIncludeQuoteSearchesIncluderDirFirst) {
  Vfs vfs;
  vfs.AddFile("drivers/pci/local.h", "a");
  vfs.AddFile("include/local.h", "b");
  auto resolved = vfs.ResolveInclude("local.h", "drivers/pci/probe.c",
                                     /*angled=*/false, {"include"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "drivers/pci/local.h");
}

TEST(VfsTest, ResolveIncludeAngledSkipsIncluderDir) {
  Vfs vfs;
  vfs.AddFile("drivers/pci/local.h", "a");
  vfs.AddFile("include/local.h", "b");
  auto resolved = vfs.ResolveInclude("local.h", "drivers/pci/probe.c",
                                     /*angled=*/true, {"include"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "include/local.h");
}

TEST(VfsTest, ResolveIncludeRelativePath) {
  Vfs vfs;
  vfs.AddFile("include/linux/pci.h", "a");
  auto resolved = vfs.ResolveInclude("linux/pci.h", "drivers/pci/probe.c",
                                     true, {"include"});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "include/linux/pci.h");
}

TEST(VfsTest, ResolveIncludeMissing) {
  Vfs vfs;
  EXPECT_FALSE(
      vfs.ResolveInclude("gone.h", "a.c", false, {"include"}).ok());
}

TEST(VfsTest, TotalLinesCountsUnterminatedLastLine) {
  Vfs vfs;
  vfs.AddFile("a.c", "one\ntwo\n");
  vfs.AddFile("b.c", "one\ntwo");
  EXPECT_EQ(vfs.TotalLines(), 4u);
  EXPECT_EQ(vfs.TotalBytes(), 15u);
}

}  // namespace
}  // namespace frappe::extractor
