#include <gtest/gtest.h>

#include "extractor/c_token.h"

namespace frappe::extractor {
namespace {

std::vector<TokenLine> MustLex(std::string_view src) {
  auto result = LexCFile(src, 0);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : std::vector<TokenLine>{};
}

TEST(CLexerTest, IdentifiersAndNumbers) {
  auto lines = MustLex("int x42 = 0x1F;");
  ASSERT_EQ(lines.size(), 1u);
  const auto& toks = lines[0].tokens;
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "x42");
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, CToken::Kind::kNumber);
  EXPECT_EQ(toks[3].text, "0x1F");
  EXPECT_EQ(toks[4].text, ";");
}

TEST(CLexerTest, LocationsAreOneBased) {
  auto lines = MustLex("ab cd\n  ef");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].tokens[0].loc.line, 1);
  EXPECT_EQ(lines[0].tokens[0].loc.col, 1);
  EXPECT_EQ(lines[0].tokens[1].loc.col, 4);
  EXPECT_EQ(lines[1].tokens[0].loc.line, 2);
  EXPECT_EQ(lines[1].tokens[0].loc.col, 3);
}

TEST(CLexerTest, MultiCharPunctuators) {
  auto lines = MustLex("a->b >>= c ... ##");
  const auto& toks = lines[0].tokens;
  EXPECT_EQ(toks[1].text, "->");
  EXPECT_EQ(toks[3].text, ">>=");
  EXPECT_EQ(toks[5].text, "...");
  EXPECT_EQ(toks[6].text, "##");
}

TEST(CLexerTest, CommentsAreSkipped) {
  auto lines = MustLex("a // line comment\nb /* block */ c\n/* multi\nline */ d");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].tokens.size(), 1u);
  EXPECT_EQ(lines[1].tokens.size(), 2u);
  EXPECT_EQ(lines[2].tokens[0].text, "d");
  EXPECT_EQ(lines[2].tokens[0].loc.line, 4);
}

TEST(CLexerTest, StringAndCharLiterals) {
  auto lines = MustLex(R"(x = "hello \"world\"" + 'a';)");
  const auto& toks = lines[0].tokens;
  EXPECT_EQ(toks[2].kind, CToken::Kind::kString);
  EXPECT_EQ(toks[4].kind, CToken::Kind::kCharLit);
}

TEST(CLexerTest, UnterminatedLiteralFails) {
  EXPECT_FALSE(LexCFile("\"oops\n", 0).ok());
  EXPECT_FALSE(LexCFile("/* oops", 0).ok());
}

TEST(CLexerTest, LineContinuation) {
  auto lines = MustLex("#define A \\\n 1\nb");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].is_directive);
  ASSERT_EQ(lines[0].tokens.size(), 3u);  // define A 1
  EXPECT_EQ(lines[0].tokens[2].text, "1");
  // Continuation advances the physical line counter.
  EXPECT_EQ(lines[1].tokens[0].loc.line, 3);
}

TEST(CLexerTest, DirectiveDetection) {
  auto lines = MustLex("  #include \"a.h\"\nx # y");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].is_directive);
  EXPECT_EQ(lines[0].tokens[0].text, "include");
  // '#' mid-line is not a directive.
  EXPECT_FALSE(lines[1].is_directive);
}

TEST(CLexerTest, PpNumberWithExponent) {
  auto lines = MustLex("x = 1.5e-3;");
  EXPECT_EQ(lines[0].tokens[2].text, "1.5e-3");
}

}  // namespace
}  // namespace frappe::extractor
