#include "extractor/preprocessor.h"

#include <gtest/gtest.h>

#include <string>

namespace frappe::extractor {
namespace {

std::string Render(const PreprocessedUnit& unit) {
  std::string out;
  for (const CToken& t : unit.tokens) {
    if (t.IsEof()) break;
    if (!out.empty()) out += " ";
    out += t.text;
  }
  return out;
}

PreprocessedUnit MustPp(Vfs& vfs, const std::string& main,
                        PreprocessOptions options = {}) {
  auto result = Preprocess(vfs, main, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(*result) : PreprocessedUnit{};
}

TEST(PreprocessorTest, PassThrough) {
  Vfs vfs;
  vfs.AddFile("a.c", "int x = 1;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int x = 1 ;");
}

TEST(PreprocessorTest, ObjectMacroExpansion) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define N 16\nint a[N];\n");
  auto unit = MustPp(vfs, "a.c");
  EXPECT_EQ(Render(unit), "int a [ 16 ] ;");
  ASSERT_EQ(unit.macros.size(), 1u);
  EXPECT_EQ(unit.macros[0].name, "N");
  ASSERT_EQ(unit.events.size(), 1u);
  EXPECT_EQ(unit.events[0].kind, MacroEvent::Kind::kExpansion);
  EXPECT_EQ(unit.events[0].use.line, 2);
}

TEST(PreprocessorTest, ExpandedTokensCarryInMacro) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define N 16\nint a = N;\n");
  auto unit = MustPp(vfs, "a.c");
  // Token "16" is macro-produced and located at the expansion site.
  const CToken& sixteen = unit.tokens[3];
  EXPECT_EQ(sixteen.text, "16");
  EXPECT_TRUE(sixteen.in_macro);
  EXPECT_EQ(sixteen.macro, "N");
  EXPECT_EQ(sixteen.loc.line, 2);
}

TEST(PreprocessorTest, FunctionMacro) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define MAX(a, b) ((a) > (b) ? (a) : (b))\n"
                     "int m = MAX(x, y + 1);\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")),
            "int m = ( ( x ) > ( y + 1 ) ? ( x ) : ( y + 1 ) ) ;");
}

TEST(PreprocessorTest, FunctionMacroNeedsParens) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define F(x) x\nint F = 3;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int F = 3 ;");
}

TEST(PreprocessorTest, NestedExpansion) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define A B\n#define B 7\nint x = A;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int x = 7 ;");
}

TEST(PreprocessorTest, RecursiveMacroDoesNotLoop) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define X X\nint X;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int X ;");
}

TEST(PreprocessorTest, VariadicMacro) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#define LOG(fmt, ...) printk(fmt, __VA_ARGS__)\n"
              "void f(void) { LOG(\"%d %d\", a, b); }\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")),
            "void f ( void ) { printk ( \"%d %d\" , a , b ) ; }");
}

TEST(PreprocessorTest, TokenPasting) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define GLUE(a, b) a##b\nint GLUE(foo, bar);\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int foobar ;");
}

TEST(PreprocessorTest, Stringize) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define STR(x) #x\nchar *s = STR(hello);\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "char * s = \"hello\" ;");
}

TEST(PreprocessorTest, UndefStopsExpansion) {
  Vfs vfs;
  vfs.AddFile("a.c", "#define N 1\n#undef N\nint x = N;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int x = N ;");
}

TEST(PreprocessorTest, IfdefActiveAndInactive) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#define CONFIG_A 1\n"
              "#ifdef CONFIG_A\nint a;\n#endif\n"
              "#ifdef CONFIG_B\nint b;\n#endif\n");
  auto unit = MustPp(vfs, "a.c");
  EXPECT_EQ(Render(unit), "int a ;");
  // Both #ifdefs are interrogations, including the undefined one.
  int interrogations = 0;
  for (const auto& e : unit.events) {
    if (e.kind == MacroEvent::Kind::kInterrogation) ++interrogations;
  }
  EXPECT_EQ(interrogations, 2);
}

TEST(PreprocessorTest, IfndefElse) {
  Vfs vfs;
  vfs.AddFile("a.c", "#ifndef X\nint no_x;\n#else\nint has_x;\n#endif\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int no_x ;");
}

TEST(PreprocessorTest, IfExpression) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#define VER 3\n"
              "#if VER >= 2 && defined(VER)\nint modern;\n"
              "#elif VER == 1\nint legacy;\n#else\nint none;\n#endif\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int modern ;");
}

TEST(PreprocessorTest, ElifChain) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#define V 2\n"
              "#if V == 1\nint one;\n#elif V == 2\nint two;\n"
              "#elif V == 2\nint dup;\n#else\nint other;\n#endif\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int two ;");
}

TEST(PreprocessorTest, NestedConditionals) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#if 1\n#if 0\nint dead;\n#else\nint live;\n#endif\n#endif\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int live ;");
}

TEST(PreprocessorTest, InactiveRegionsIgnoreDirectives) {
  Vfs vfs;
  vfs.AddFile("a.c",
              "#if 0\n#define HIDDEN 1\n#error should not fire\n#endif\n"
              "#ifdef HIDDEN\nint hidden;\n#endif\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "");
}

TEST(PreprocessorTest, ErrorDirectiveFails) {
  Vfs vfs;
  vfs.AddFile("a.c", "#error boom\n");
  EXPECT_FALSE(Preprocess(vfs, "a.c").ok());
}

TEST(PreprocessorTest, IncludeQuote) {
  Vfs vfs;
  vfs.AddFile("foo.h", "int bar(int);\n");
  vfs.AddFile("foo.c", "#include \"foo.h\"\nint bar(int input) { return input; }\n");
  auto unit = MustPp(vfs, "foo.c");
  ASSERT_EQ(unit.files.size(), 2u);
  EXPECT_EQ(unit.files[0], "foo.c");
  EXPECT_EQ(unit.files[1], "foo.h");
  ASSERT_EQ(unit.includes.size(), 1u);
  EXPECT_EQ(unit.includes[0].from_file, 0);
  EXPECT_EQ(unit.includes[0].to_file, 1);
}

TEST(PreprocessorTest, IncludeGuardsWork) {
  Vfs vfs;
  vfs.AddFile("g.h", "#ifndef G_H\n#define G_H\nint g;\n#endif\n");
  vfs.AddFile("a.c", "#include \"g.h\"\n#include \"g.h\"\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int g ;");
}

TEST(PreprocessorTest, MissingAngledIncludeSkipped) {
  Vfs vfs;
  vfs.AddFile("a.c", "#include <stdio.h>\nint x;\n");
  EXPECT_EQ(Render(MustPp(vfs, "a.c")), "int x ;");
}

TEST(PreprocessorTest, MissingQuotedIncludeFails) {
  Vfs vfs;
  vfs.AddFile("a.c", "#include \"gone.h\"\n");
  EXPECT_FALSE(Preprocess(vfs, "a.c").ok());
}

TEST(PreprocessorTest, IncludeCycleHitsDepthLimit) {
  Vfs vfs;
  vfs.AddFile("a.h", "#include \"b.h\"\n");
  vfs.AddFile("b.h", "#include \"a.h\"\n");
  vfs.AddFile("a.c", "#include \"a.h\"\n");
  EXPECT_FALSE(Preprocess(vfs, "a.c").ok());
}

TEST(PreprocessorTest, PredefinedMacros) {
  Vfs vfs;
  vfs.AddFile("a.c", "#ifdef CONFIG_SMP\nint smp;\n#endif\nint n = NCPU;\n");
  PreprocessOptions options;
  options.defines["CONFIG_SMP"] = "1";
  options.defines["NCPU"] = "8";
  EXPECT_EQ(Render(MustPp(vfs, "a.c", options)), "int smp ; int n = 8 ;");
}

}  // namespace
}  // namespace frappe::extractor
