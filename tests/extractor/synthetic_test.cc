#include "extractor/synthetic.h"

#include <gtest/gtest.h>

#include "extractor/build_model.h"
#include "graph/stats.h"

namespace frappe::extractor {
namespace {

TEST(SyntheticGraphTest, ScalesToRequestedSize) {
  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  GraphScale scale;
  scale.factor = 0.01;  // ~5 K nodes
  GraphReport report = GenerateKernelGraph(scale, &graph);
  EXPECT_EQ(report.nodes, graph.store().NodeCount());
  EXPECT_EQ(report.edges, graph.store().EdgeCount());
  EXPECT_GT(report.nodes, 3000u);
  EXPECT_LT(report.nodes, 9000u);
  // Edge:node ratio near the paper's 1:8.
  double ratio = static_cast<double>(report.edges) /
                 static_cast<double>(report.nodes);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 11.0);
}

TEST(SyntheticGraphTest, DeterministicForSeed) {
  model::CodeGraph a(model::CodeGraph::Validation::kOff);
  model::CodeGraph b(model::CodeGraph::Validation::kOff);
  GraphScale scale;
  scale.factor = 0.005;
  GraphReport ra = GenerateKernelGraph(scale, &a);
  GraphReport rb = GenerateKernelGraph(scale, &b);
  EXPECT_EQ(ra.nodes, rb.nodes);
  EXPECT_EQ(ra.edges, rb.edges);
}

TEST(SyntheticGraphTest, IntAndNullAreHubs) {
  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  GraphScale scale;
  scale.factor = 0.02;
  GraphReport report = GenerateKernelGraph(scale, &graph);
  auto hubs = graph::TopDegreeNodes(
      graph.view(), 10, graph.key_id(model::PropKey::kShortName));
  ASSERT_FALSE(hubs.empty());
  // `int` is the top hub, as in paper Figure 7 (degree 79K at full scale).
  EXPECT_EQ(hubs[0].id, report.int_primitive);
  EXPECT_EQ(hubs[0].short_name, "int");
  // NULL appears among the top hubs.
  bool null_in_top = false;
  for (const auto& hub : hubs) {
    if (hub.id == report.null_macro) null_in_top = true;
  }
  EXPECT_TRUE(null_in_top);
}

TEST(SyntheticGraphTest, DegreeDistributionIsHeavyTailed) {
  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  GraphScale scale;
  scale.factor = 0.02;
  GenerateKernelGraph(scale, &graph);
  auto bins = graph::LogBinnedDegrees(graph.view());
  ASSERT_GE(bins.size(), 5u);
  // Majority of nodes in low-degree bins; tail sparsely populated —
  // the Figure 7 shape.
  uint64_t total = 0, low = 0, high = 0;
  for (const auto& bin : bins) {
    total += bin.node_count;
    if (bin.max_degree <= 15) low += bin.node_count;
    if (bin.min_degree >= 128) high += bin.node_count;
  }
  // Most nodes have small degree, yet the tail reaches far (Figure 7).
  EXPECT_GT(low, total * 6 / 10);
  EXPECT_GT(high, 0u);
  EXPECT_LT(high, total / 50);
}

TEST(SyntheticGraphTest, AllSchemaConstraintsRespected) {
  // Regenerate with validation ON: every edge must satisfy Table 1
  // endpoint rules.
  model::CodeGraph graph(model::CodeGraph::Validation::kStrict);
  GraphScale scale;
  scale.factor = 0.005;
  GenerateKernelGraph(scale, &graph);
  const auto& store = graph.store();
  size_t violations = 0;
  store.ForEachEdgeGlobal([&](graph::EdgeId e) {
    graph::Edge edge = store.GetEdge(e);
    model::EdgeKind kind = graph.EdgeKindOf(e);
    if (kind == model::EdgeKind::kCount) return;
    if (!model::ValidEndpoints(kind, graph.KindOf(edge.src),
                               graph.KindOf(edge.dst))) {
      ++violations;
    }
  });
  EXPECT_EQ(violations, 0u);
}

TEST(SyntheticSourceTest, GeneratesCompilableTree) {
  Vfs vfs;
  SourceScale scale;
  scale.subsystems = 2;
  scale.files_per_subsystem = 3;
  scale.functions_per_file = 4;
  SourceKernel kernel = GenerateKernelSource(scale, &vfs);
  EXPECT_GT(kernel.total_lines, 50u);
  ASSERT_FALSE(kernel.build_commands.empty());

  model::CodeGraph graph;
  BuildDriver driver(&vfs, &graph);
  for (const std::string& command : kernel.build_commands) {
    ASSERT_TRUE(driver.Run(command).ok()) << command;
  }
  EXPECT_EQ(driver.stats().units_compiled, 6u);
  EXPECT_EQ(driver.stats().modules_linked, 2u);
  EXPECT_EQ(driver.stats().symbols_unresolved, 0u);
  // Real structure came out: functions, structs, calls.
  auto node_hist = graph::NodeTypeHistogram(graph.view());
  EXPECT_GE(node_hist["function"], 24u);
  EXPECT_GE(node_hist["struct"], 6u);
  auto edge_hist = graph::EdgeTypeHistogram(graph.view());
  EXPECT_GT(edge_hist["calls"], 0u);
  EXPECT_GT(edge_hist["writes_member"], 0u);
  EXPECT_GT(edge_hist["expands_macro"], 0u);
}

TEST(SyntheticSourceTest, DeterministicCommands) {
  Vfs a, b;
  SourceScale scale;
  scale.subsystems = 1;
  SourceKernel ka = GenerateKernelSource(scale, &a);
  SourceKernel kb = GenerateKernelSource(scale, &b);
  EXPECT_EQ(ka.build_commands, kb.build_commands);
  EXPECT_EQ(ka.total_lines, kb.total_lines);
}

}  // namespace
}  // namespace frappe::extractor
