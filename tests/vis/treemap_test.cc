#include "vis/treemap.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace frappe::vis {
namespace {

TEST(TreemapTest, SingleItemFillsBounds) {
  Rect bounds{0, 0, 100, 50};
  auto rects = SquarifiedLayout(bounds, {7.0});
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_DOUBLE_EQ(rects[0].area(), 5000.0);
}

TEST(TreemapTest, AreasProportionalToWeights) {
  Rect bounds{0, 0, 100, 100};
  auto rects = SquarifiedLayout(bounds, {1.0, 2.0, 1.0});
  ASSERT_EQ(rects.size(), 3u);
  EXPECT_NEAR(rects[0].area(), 2500.0, 1e-6);
  EXPECT_NEAR(rects[1].area(), 5000.0, 1e-6);
  EXPECT_NEAR(rects[2].area(), 2500.0, 1e-6);
}

TEST(TreemapTest, ZeroWeightsGetEmptyRects) {
  Rect bounds{0, 0, 10, 10};
  auto rects = SquarifiedLayout(bounds, {1.0, 0.0, 1.0});
  EXPECT_GT(rects[0].area(), 0.0);
  EXPECT_DOUBLE_EQ(rects[1].area(), 0.0);
  EXPECT_GT(rects[2].area(), 0.0);
}

TEST(TreemapTest, EmptyInput) {
  EXPECT_TRUE(SquarifiedLayout(Rect{0, 0, 10, 10}, {}).empty());
}

TEST(TreemapTest, AllZeroWeights) {
  auto rects = SquarifiedLayout(Rect{0, 0, 10, 10}, {0.0, 0.0});
  for (const Rect& r : rects) EXPECT_DOUBLE_EQ(r.area(), 0.0);
}

TEST(TreemapTest, SquarifiedBeatsStripsOnAspectRatio) {
  // Eight equal weights in a square: squarified layout should produce
  // roughly square cells (aspect < 3), where naive strips would give 8:1.
  Rect bounds{0, 0, 80, 80};
  auto rects = SquarifiedLayout(bounds, std::vector<double>(8, 1.0));
  for (const Rect& r : rects) {
    double aspect = std::max(r.w / r.h, r.h / r.w);
    EXPECT_LT(aspect, 3.0);
  }
}

// Property sweep: for random weights, rectangles tile the bounds — areas
// sum to the bounds area, no pairwise overlap, all within bounds.
class TreemapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreemapPropertyTest, TilesTheBounds) {
  frappe::Rng rng(GetParam());
  size_t n = 2 + rng.Uniform(20);
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    weights.push_back(rng.Bernoulli(0.1) ? 0.0 : 1.0 + rng.NextDouble() * 50);
  }
  Rect bounds{5, 7, 200, 120};
  auto rects = SquarifiedLayout(bounds, weights);
  ASSERT_EQ(rects.size(), weights.size());

  double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  double total_area = 0;
  for (size_t i = 0; i < rects.size(); ++i) {
    const Rect& r = rects[i];
    total_area += r.area();
    if (weights[i] <= 0) continue;
    // Within bounds (small numeric tolerance).
    EXPECT_GE(r.x, bounds.x - 1e-6);
    EXPECT_GE(r.y, bounds.y - 1e-6);
    EXPECT_LE(r.x + r.w, bounds.x + bounds.w + 1e-6);
    EXPECT_LE(r.y + r.h, bounds.y + bounds.h + 1e-6);
    // Area proportional to weight.
    EXPECT_NEAR(r.area(), bounds.area() * weights[i] / total_weight,
                bounds.area() * 1e-9);
  }
  EXPECT_NEAR(total_area, bounds.area(), bounds.area() * 1e-9);

  // No pairwise overlap (shrink slightly to avoid boundary contact).
  for (size_t i = 0; i < rects.size(); ++i) {
    if (rects[i].area() <= 0) continue;
    for (size_t j = i + 1; j < rects.size(); ++j) {
      if (rects[j].area() <= 0) continue;
      Rect a = rects[i];
      a.x += 1e-6;
      a.y += 1e-6;
      a.w -= 2e-6;
      a.h -= 2e-6;
      EXPECT_FALSE(a.Overlaps(rects[j]))
          << "rects " << i << " and " << j << " overlap";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreemapPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace frappe::vis
