#include "vis/code_map.h"

#include <gtest/gtest.h>

#include "extractor/build_model.h"
#include "tests/query/fixture.h"

namespace frappe::vis {
namespace {

using graph::NodeId;
using query::testing::PaperFixture;

// Builds a map from a real extracted tree (directories + files +
// functions).
class CodeMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vfs_.AddFile("drivers/scsi/sr.c",
                 "int sr_init(void) { return sr_probe(); }\n"
                 "int sr_probe(void) { return 0; }\n");
    vfs_.AddFile("drivers/net/e1000.c", "int e1000_up(void) { return 1; }\n");
    vfs_.AddFile("kernel/sched.c", "int schedule(void) { return 0; }\n");
    driver_ = std::make_unique<extractor::BuildDriver>(&vfs_, &graph_);
    ASSERT_TRUE(driver_->Run("gcc drivers/scsi/sr.c -c -o sr.o").ok());
    ASSERT_TRUE(driver_->Run("gcc drivers/net/e1000.c -c -o e1000.o").ok());
    ASSERT_TRUE(driver_->Run("gcc kernel/sched.c -c -o sched.o").ok());
    map_ = std::make_unique<CodeMap>(
        CodeMap::Build(graph_.view(), graph_.schema(), 800, 600));
  }

  NodeId Find(model::NodeKind kind, std::string_view name) {
    NodeId found = graph::kInvalidNode;
    graph_.view().ForEachNode([&](NodeId id) {
      if (graph_.KindOf(id) == kind && graph_.ShortName(id) == name) {
        found = id;
      }
    });
    return found;
  }

  extractor::Vfs vfs_;
  model::CodeGraph graph_;
  std::unique_ptr<extractor::BuildDriver> driver_;
  std::unique_ptr<CodeMap> map_;
};

TEST_F(CodeMapTest, HierarchyMirrorsDirectories) {
  const MapRegion& root = map_->root();
  // Top level: drivers/ and kernel/.
  ASSERT_EQ(root.children.size(), 2u);
  std::set<std::string> names;
  for (const auto& child : root.children) names.insert(child.name);
  EXPECT_EQ(names, (std::set<std::string>{"drivers", "kernel"}));
}

TEST_F(CodeMapTest, RegionsExistForFilesAndFunctions) {
  EXPECT_NE(map_->Find(Find(model::NodeKind::kFile, "sr.c")), nullptr);
  EXPECT_NE(map_->Find(Find(model::NodeKind::kFunction, "sr_init")),
            nullptr);
  EXPECT_NE(map_->Find(Find(model::NodeKind::kFunction, "schedule")),
            nullptr);
  EXPECT_GE(map_->RegionCount(), 10u);  // 4 dirs + 3 files + 4 functions
}

TEST_F(CodeMapTest, NestingIsGeometric) {
  const MapRegion* file = map_->Find(Find(model::NodeKind::kFile, "sr.c"));
  const MapRegion* fn =
      map_->Find(Find(model::NodeKind::kFunction, "sr_init"));
  ASSERT_NE(file, nullptr);
  ASSERT_NE(fn, nullptr);
  // Function rect sits inside its file rect.
  EXPECT_GE(fn->rect.x, file->rect.x - 1e-6);
  EXPECT_GE(fn->rect.y, file->rect.y - 1e-6);
  EXPECT_LE(fn->rect.x + fn->rect.w, file->rect.x + file->rect.w + 1e-6);
  EXPECT_LE(fn->rect.y + fn->rect.h, file->rect.y + file->rect.h + 1e-6);
}

TEST_F(CodeMapTest, SiblingRegionsDoNotOverlap) {
  const MapRegion& root = map_->root();
  const MapRegion& a = root.children[0];
  const MapRegion& b = root.children[1];
  Rect shrunk = a.rect;
  shrunk.x += 1e-6;
  shrunk.y += 1e-6;
  shrunk.w -= 2e-6;
  shrunk.h -= 2e-6;
  EXPECT_FALSE(shrunk.Overlaps(b.rect));
}

TEST_F(CodeMapTest, SvgContainsRegionsAndHighlight) {
  NodeId sr_init = Find(model::NodeKind::kFunction, "sr_init");
  CodeMap::Overlay overlay;
  overlay.highlights.push_back(sr_init);
  std::string svg = map_->ToSvg(overlay);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("sr_init"), std::string::npos);
  EXPECT_NE(svg.find("#e4572e"), std::string::npos);  // highlight colour
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST_F(CodeMapTest, SvgPathOverlay) {
  CodeMap::Overlay overlay;
  overlay.paths.push_back({Find(model::NodeKind::kFunction, "sr_init"),
                           Find(model::NodeKind::kFunction, "sr_probe")});
  std::string svg = map_->ToSvg(overlay);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST_F(CodeMapTest, JsonIsWellFormedish) {
  std::string json = map_->ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(CodeMapTest, OverlayOnPaperFixture) {
  // Query results over a code map: highlight the Figure 6 closure.
  PaperFixture fixture;
  CodeMap map = CodeMap::Build(fixture.graph.view(), fixture.graph.schema(),
                               400, 300);
  CodeMap::Overlay overlay;
  overlay.highlights = {fixture.helper_a, fixture.helper_b,
                        fixture.get_sectorsize, fixture.sr_do_ioctl};
  std::string svg = map.ToSvg(overlay);
  EXPECT_NE(svg.find("helper_a"), std::string::npos);
}

}  // namespace
}  // namespace frappe::vis
